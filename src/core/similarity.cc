#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "storage/value.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace courserank::flexrecs {

using storage::ValueType;

namespace {

Status TypeError(const char* fn, const char* want, const Value& got) {
  return Status::InvalidArgument(std::string(fn) + " expects " + want +
                                 ", got " + ValueTypeName(got.type()));
}

/// Sparse vector decoded from a pair-list: (key, weight) entries sorted
/// ascending by key, keys unique. A flat sorted vector instead of a
/// node-based std::map keeps the recommend scoring loop — which decodes two
/// of these per (input, reference) pair — allocation-light and
/// cache-friendly, and lets the similarity kernels below run as linear
/// merge walks.
using PairVec = std::vector<std::pair<Value, double>>;

/// Key equivalence under the same strict weak order std::map used, so the
/// flat representation keeps exactly the old map semantics.
bool KeyEquiv(const Value& a, const Value& b) { return !(a < b) && !(b < a); }

/// Decodes a LIST of [key, number] pairs into a sorted sparse vector. A
/// LIST of scalars decodes as key→1.0 (set semantics). A duplicated key
/// keeps its last weight, matching the previous map-assignment behavior.
Result<PairVec> DecodePairs(const char* fn, const Value& v) {
  if (v.type() != ValueType::kList) return TypeError(fn, "a LIST", v);
  PairVec out;
  out.reserve(v.AsList().size());
  for (const Value& item : v.AsList()) {
    if (item.type() == ValueType::kList) {
      const Value::List& pair = item.AsList();
      if (pair.size() != 2) {
        return Status::InvalidArgument(std::string(fn) +
                                       ": pair element must have 2 entries");
      }
      // A NULL number means "unknown"; the key cannot contribute.
      if (pair[1].is_null()) continue;
      CR_ASSIGN_OR_RETURN(double num, pair[1].ToDouble());
      out.emplace_back(pair[0], num);
    } else {
      out.emplace_back(item, 1.0);
    }
  }
  // Stable sort keeps duplicates in arrival order; compaction then takes
  // the last entry of each equal-key run (last wins).
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t w = 0;
  for (size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && KeyEquiv(out[w - 1].first, out[r].first)) {
      out[w - 1].second = out[r].second;
    } else {
      out[w++] = std::move(out[r]);
    }
  }
  out.resize(w);
  return out;
}

/// Decodes a LIST into a sorted, deduplicated vector of values (a flat
/// set).
Result<std::vector<Value>> DecodeSet(const char* fn, const Value& v) {
  if (v.type() != ValueType::kList) return TypeError(fn, "a LIST", v);
  std::vector<Value> out;
  out.reserve(v.AsList().size());
  for (const Value& item : v.AsList()) {
    // Pair-lists degrade to their key set.
    if (item.type() == ValueType::kList && item.AsList().size() == 2) {
      out.push_back(item.AsList()[0]);
    } else {
      out.push_back(item);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(), KeyEquiv), out.end());
  return out;
}

size_t IntersectionSize(const std::vector<Value>& a,
                        const std::vector<Value>& b) {
  size_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// All-int64-key sparse vector: the common case for FlexRecs operands
/// (CourseID keys). Sorting and merge-walking int64 keys skips the
/// type-dispatching Value::operator< per comparison and the Value copy per
/// decoded entry, which dominate the recommend scoring loop's per-row cost.
using IntPairVec = std::vector<std::pair<int64_t, double>>;

/// Attempts to decode a pair-list whose keys are all kInt64 into `out`
/// (capacity reused across rows). Returns false — leaving semantics to the
/// generic DecodePairs — on any non-int64 key, malformed entry, or failed
/// weight conversion, so errors and mixed-type keys take exactly the
/// generic path. A successful decode is equivalent to DecodePairs: int64
/// keys order and compare identically under Value::operator<, so the
/// sorted sequence, last-wins compaction, and merge-walk accumulation
/// order are the same.
bool TryDecodeIntPairsInto(const Value& v, IntPairVec* out) {
  if (v.type() != ValueType::kList) return false;
  out->clear();
  out->reserve(v.AsList().size());
  for (const Value& item : v.AsList()) {
    if (item.type() == ValueType::kList) {
      const Value::List& pair = item.AsList();
      if (pair.size() != 2) return false;
      if (pair[0].type() != ValueType::kInt) return false;
      if (pair[1].is_null()) continue;
      Result<double> num = pair[1].ToDouble();
      if (!num.ok()) return false;
      out->emplace_back(pair[0].AsInt(), num.value());
    } else {
      if (item.type() != ValueType::kInt) return false;
      out->emplace_back(item.AsInt(), 1.0);
    }
  }
  // Stable insertion sort for the typical ~20-element list (no temp-buffer
  // allocation); stable_sort above that. Last-wins compaction as in
  // DecodePairs.
  if (out->size() <= 32) {
    for (size_t i = 1; i < out->size(); ++i) {
      std::pair<int64_t, double> key = (*out)[i];
      size_t j = i;
      while (j > 0 && key.first < (*out)[j - 1].first) {
        (*out)[j] = (*out)[j - 1];
        --j;
      }
      (*out)[j] = key;
    }
  } else {
    std::stable_sort(
        out->begin(), out->end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  size_t w = 0;
  for (size_t r = 0; r < out->size(); ++r) {
    if (w > 0 && (*out)[w - 1].first == (*out)[r].first) {
      (*out)[w - 1].second = (*out)[r].second;
    } else {
      (*out)[w++] = (*out)[r];
    }
  }
  out->resize(w);
  return true;
}

/// Rebuilds the generic PairVec form of an int-decoded operand (already
/// sorted; int64 Value order matches int64 order) for pairs whose other
/// operand decoded generically.
PairVec PromoteIntPairs(const IntPairVec& v) {
  PairVec out;
  out.reserve(v.size());
  for (const auto& [k, num] : v) out.emplace_back(Value(k), num);
  return out;
}

/// Binary-searches a sorted IntPairVec; nullptr when the key is absent.
const double* FindKey(const IntPairVec& v, int64_t key) {
  auto it = std::lower_bound(
      v.begin(), v.end(), key,
      [](const std::pair<int64_t, double>& p, int64_t k) {
        return p.first < k;
      });
  if (it == v.end() || key < it->first) return nullptr;
  return &it->second;
}

/// Binary-searches a sorted PairVec; nullptr when the key is absent.
const double* FindKey(const PairVec& v, const Value& key) {
  auto it = std::lower_bound(
      v.begin(), v.end(), key,
      [](const std::pair<Value, double>& p, const Value& k) {
        return p.first < k;
      });
  if (it == v.end() || key < it->first) return nullptr;
  return &it->second;
}

Result<std::string> DecodeString(const char* fn, const Value& v) {
  if (v.type() != ValueType::kString) return TypeError(fn, "a STRING", v);
  return v.AsString();
}

// ---- comparison math over decoded operands -------------------------------
//
// Each built-in is decode + one of these compute halves. The PairwiseScorer
// memoizes the decodes and calls the same compute half per pair, so both
// paths share one implementation of the math.

std::optional<double> JaccardFrom(const std::vector<Value>& sa,
                                  const std::vector<Value>& sb) {
  if (sa.empty() && sb.empty()) return std::nullopt;
  size_t inter = IntersectionSize(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::optional<double> DiceFrom(const std::vector<Value>& sa,
                               const std::vector<Value>& sb) {
  if (sa.empty() && sb.empty()) return std::nullopt;
  size_t inter = IntersectionSize(sa, sb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size());
}

std::optional<double> OverlapFrom(const std::vector<Value>& sa,
                                  const std::vector<Value>& sb) {
  if (sa.empty() || sb.empty()) return std::nullopt;
  size_t inter = IntersectionSize(sa, sb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

// The pair merge walks are templated over the decoded vector type so the
// IntPairVec fast path and the generic PairVec path share one
// implementation (key comparison is `.first < .first` in both; the
// accumulation order is identical because the key orders coincide).
template <typename V>
std::optional<double> CosineFrom(const V& pa, const V& pb) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  // Merge walk over the two key-sorted vectors: dot product over common
  // keys, norms over each full vector.
  for (size_t i = 0, j = 0; i < pa.size() || j < pb.size();) {
    if (j == pb.size() || (i < pa.size() && pa[i].first < pb[j].first)) {
      na += pa[i].second * pa[i].second;
      ++i;
    } else if (i == pa.size() || pb[j].first < pa[i].first) {
      nb += pb[j].second * pb[j].second;
      ++j;
    } else {
      dot += pa[i].second * pb[j].second;
      na += pa[i].second * pa[i].second;
      nb += pb[j].second * pb[j].second;
      ++i;
      ++j;
    }
  }
  if (na <= 0.0 || nb <= 0.0) return std::nullopt;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

template <typename V>
std::optional<double> PearsonFrom(const V& pa, const V& pb) {
  std::vector<std::pair<double, double>> common;
  for (size_t i = 0, j = 0; i < pa.size() && j < pb.size();) {
    if (pa[i].first < pb[j].first) {
      ++i;
    } else if (pb[j].first < pa[i].first) {
      ++j;
    } else {
      common.emplace_back(pa[i].second, pb[j].second);
      ++i;
      ++j;
    }
  }
  if (common.size() < 2) return std::nullopt;
  double ma = 0.0;
  double mb = 0.0;
  for (const auto& [x, y] : common) {
    ma += x;
    mb += y;
  }
  ma /= common.size();
  mb /= common.size();
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (const auto& [x, y] : common) {
    cov += (x - ma) * (y - mb);
    va += (x - ma) * (x - ma);
    vb += (y - mb) * (y - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return std::nullopt;
  return cov / (std::sqrt(va) * std::sqrt(vb));
}

template <typename V>
std::optional<double> InverseDistanceFrom(const V& pa, const V& pb,
                                          bool euclidean) {
  double acc = 0.0;
  size_t common = 0;
  for (size_t i = 0, j = 0; i < pa.size() && j < pb.size();) {
    if (pa[i].first < pb[j].first) {
      ++i;
    } else if (pb[j].first < pa[i].first) {
      ++j;
    } else {
      ++common;
      double d = pa[i].second - pb[j].second;
      acc += euclidean ? d * d : std::fabs(d);
      ++i;
      ++j;
    }
  }
  if (common == 0) return std::nullopt;
  double dist = euclidean ? std::sqrt(acc) : acc;
  return 1.0 / (1.0 + dist);
}

/// Lowercase non-stopword word set; the decoded form of a token_jaccard
/// operand. Tokenization never fails.
std::set<std::string> TokenSet(const std::string& s) {
  std::set<std::string> out;
  for (std::string& t : text::Tokenize(s)) {
    if (!text::IsStopword(t)) out.insert(std::move(t));
  }
  return out;
}

std::optional<double> TokenJaccardFrom(const std::set<std::string>& ta,
                                       const std::set<std::string>& tb) {
  if (ta.empty() && tb.empty()) return std::nullopt;
  size_t inter = 0;
  for (const std::string& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Padded lowercase character trigram set of a trigram operand.
std::set<std::string> GramSet(const std::string& s) {
  std::set<std::string> out;
  std::string low = "  " + ToLower(s) + "  ";
  for (size_t i = 0; i + 3 <= low.size(); ++i) out.insert(low.substr(i, 3));
  return out;
}

std::optional<double> TrigramFrom(const std::set<std::string>& ga,
                                  const std::set<std::string>& gb) {
  if (ga.empty() && gb.empty()) return std::nullopt;
  size_t inter = 0;
  for (const std::string& g : ga) inter += gb.count(g);
  size_t uni = ga.size() + gb.size() - inter;
  if (uni == 0) return std::nullopt;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::optional<double> LevenshteinFromLower(const std::string& la,
                                           const std::string& lb) {
  if (la.empty() && lb.empty()) return 1.0;
  size_t n = la.size();
  size_t m = lb.size();
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = la[i - 1] == lb[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  double dist = static_cast<double>(prev[m]);
  double maxlen = static_cast<double>(std::max(n, m));
  return 1.0 - dist / maxlen;
}

}  // namespace

Result<std::optional<double>> JaccardSets(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(std::vector<Value> sa, DecodeSet("jaccard", a));
  CR_ASSIGN_OR_RETURN(std::vector<Value> sb, DecodeSet("jaccard", b));
  return JaccardFrom(sa, sb);
}

Result<std::optional<double>> DiceSets(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(std::vector<Value> sa, DecodeSet("dice", a));
  CR_ASSIGN_OR_RETURN(std::vector<Value> sb, DecodeSet("dice", b));
  return DiceFrom(sa, sb);
}

Result<std::optional<double>> OverlapSets(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(std::vector<Value> sa, DecodeSet("overlap", a));
  CR_ASSIGN_OR_RETURN(std::vector<Value> sb, DecodeSet("overlap", b));
  return OverlapFrom(sa, sb);
}

Result<std::optional<double>> CosinePairs(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(auto pa, DecodePairs("cosine", a));
  CR_ASSIGN_OR_RETURN(auto pb, DecodePairs("cosine", b));
  return CosineFrom(pa, pb);
}

Result<std::optional<double>> PearsonPairs(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(auto pa, DecodePairs("pearson", a));
  CR_ASSIGN_OR_RETURN(auto pb, DecodePairs("pearson", b));
  return PearsonFrom(pa, pb);
}

namespace {

Result<std::optional<double>> InverseDistance(const char* fn, const Value& a,
                                              const Value& b, bool euclidean) {
  CR_ASSIGN_OR_RETURN(auto pa, DecodePairs(fn, a));
  CR_ASSIGN_OR_RETURN(auto pb, DecodePairs(fn, b));
  return InverseDistanceFrom(pa, pb, euclidean);
}

}  // namespace

Result<std::optional<double>> InverseEuclideanPairs(const Value& a,
                                                    const Value& b) {
  return InverseDistance("inv_euclidean", a, b, /*euclidean=*/true);
}

Result<std::optional<double>> InverseManhattanPairs(const Value& a,
                                                    const Value& b) {
  return InverseDistance("inv_manhattan", a, b, /*euclidean=*/false);
}

Result<std::optional<double>> TokenJaccard(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(std::string sa, DecodeString("token_jaccard", a));
  CR_ASSIGN_OR_RETURN(std::string sb, DecodeString("token_jaccard", b));
  // Stopwords are dropped (in TokenSet) so "Introduction to X" and
  // "Introduction to Y" differ by more than one function word.
  return TokenJaccardFrom(TokenSet(sa), TokenSet(sb));
}

Result<std::optional<double>> TrigramSimilarity(const Value& a,
                                                const Value& b) {
  CR_ASSIGN_OR_RETURN(std::string sa, DecodeString("trigram", a));
  CR_ASSIGN_OR_RETURN(std::string sb, DecodeString("trigram", b));
  return TrigramFrom(GramSet(sa), GramSet(sb));
}

Result<std::optional<double>> LevenshteinRatio(const Value& a, const Value& b) {
  CR_ASSIGN_OR_RETURN(std::string sa, DecodeString("levenshtein", a));
  CR_ASSIGN_OR_RETURN(std::string sb, DecodeString("levenshtein", b));
  return LevenshteinFromLower(ToLower(sa), ToLower(sb));
}

Result<std::optional<double>> NumericProximity(const Value& a,
                                               const Value& b) {
  if (a.is_null() || b.is_null()) return std::optional<double>();
  CR_ASSIGN_OR_RETURN(double x, a.ToDouble());
  CR_ASSIGN_OR_RETURN(double y, b.ToDouble());
  return std::optional<double>(1.0 / (1.0 + std::fabs(x - y)));
}

Result<std::optional<double>> ExactMatch(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::optional<double>();
  return std::optional<double>(a == b ? 1.0 : 0.0);
}

Result<std::optional<double>> RatingOf(const Value& a, const Value& b) {
  if (a.is_null()) return std::optional<double>();
  CR_ASSIGN_OR_RETURN(auto pairs, DecodePairs("rating_of", b));
  const double* found = FindKey(pairs, a);
  if (found == nullptr) return std::optional<double>();
  return std::optional<double>(*found);
}

const char* SimArgKindName(SimArgKind kind) {
  switch (kind) {
    case SimArgKind::kAny:
      return "any";
    case SimArgKind::kString:
      return "string";
    case SimArgKind::kNumber:
      return "number";
    case SimArgKind::kSet:
      return "set";
    case SimArgKind::kPairs:
      return "pairs";
    case SimArgKind::kScalar:
      return "scalar";
  }
  return "?";
}

SimilarityLibrary::SimilarityLibrary() {
  const SimilaritySignature sets{SimArgKind::kSet, SimArgKind::kSet};
  const SimilaritySignature pairs{SimArgKind::kPairs, SimArgKind::kPairs};
  const SimilaritySignature strings{SimArgKind::kString, SimArgKind::kString};
  RegisterBuiltin("jaccard", JaccardSets, sets, SimKernel::kJaccard);
  RegisterBuiltin("dice", DiceSets, sets, SimKernel::kDice);
  RegisterBuiltin("overlap", OverlapSets, sets, SimKernel::kOverlap);
  RegisterBuiltin("cosine", CosinePairs, pairs, SimKernel::kCosine);
  RegisterBuiltin("pearson", PearsonPairs, pairs, SimKernel::kPearson);
  RegisterBuiltin("inv_euclidean", InverseEuclideanPairs, pairs,
                  SimKernel::kInvEuclidean);
  RegisterBuiltin("inv_manhattan", InverseManhattanPairs, pairs,
                  SimKernel::kInvManhattan);
  RegisterBuiltin("token_jaccard", TokenJaccard, strings,
                  SimKernel::kTokenJaccard);
  RegisterBuiltin("trigram", TrigramSimilarity, strings, SimKernel::kTrigram);
  RegisterBuiltin("levenshtein", LevenshteinRatio, strings,
                  SimKernel::kLevenshtein);
  RegisterBuiltin("numeric_proximity", NumericProximity,
                  {SimArgKind::kNumber, SimArgKind::kNumber},
                  SimKernel::kNumericProximity);
  RegisterBuiltin("exact", ExactMatch, SimilaritySignature{},
                  SimKernel::kExact);
  RegisterBuiltin("rating_of", RatingOf,
                  {SimArgKind::kScalar, SimArgKind::kPairs},
                  SimKernel::kRatingOf);
}

void SimilarityLibrary::Register(const std::string& name, SimilarityFn fn) {
  Register(name, std::move(fn), SimilaritySignature{});
}

void SimilarityLibrary::Register(const std::string& name, SimilarityFn fn,
                                 SimilaritySignature signature) {
  // Deliberately resets the kernel tag: re-registering over a built-in name
  // installs an arbitrary user function, so the scorer must stop assuming
  // the built-in's decode structure.
  fns_[ToLower(name)] = Entry{std::move(fn), signature, SimKernel::kCustom};
}

void SimilarityLibrary::RegisterBuiltin(const std::string& name,
                                        SimilarityFn fn,
                                        SimilaritySignature signature,
                                        SimKernel kernel) {
  fns_[ToLower(name)] = Entry{std::move(fn), signature, kernel};
}

SimKernel SimilarityLibrary::GetKernel(const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) return SimKernel::kCustom;
  return it->second.kernel;
}

Result<SimilarityFn> SimilarityLibrary::Get(const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) {
    return Status::NotFound("no similarity function '" + name + "'");
  }
  return it->second.fn;
}

bool SimilarityLibrary::Has(const std::string& name) const {
  return fns_.count(ToLower(name)) > 0;
}

std::optional<SimilaritySignature> SimilarityLibrary::GetSignature(
    const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) return std::nullopt;
  return it->second.signature;
}

std::vector<std::string> SimilarityLibrary::Names() const {
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Registered name of a built-in kernel, for byte-identical error messages.
const char* KernelFnName(SimKernel k) {
  switch (k) {
    case SimKernel::kJaccard:
      return "jaccard";
    case SimKernel::kDice:
      return "dice";
    case SimKernel::kOverlap:
      return "overlap";
    case SimKernel::kCosine:
      return "cosine";
    case SimKernel::kPearson:
      return "pearson";
    case SimKernel::kInvEuclidean:
      return "inv_euclidean";
    case SimKernel::kInvManhattan:
      return "inv_manhattan";
    case SimKernel::kTokenJaccard:
      return "token_jaccard";
    case SimKernel::kTrigram:
      return "trigram";
    case SimKernel::kLevenshtein:
      return "levenshtein";
    case SimKernel::kNumericProximity:
      return "numeric_proximity";
    case SimKernel::kExact:
      return "exact";
    case SimKernel::kRatingOf:
      return "rating_of";
    case SimKernel::kCustom:
      break;
  }
  return "custom";
}

}  // namespace

struct PairwiseScorer::Impl {
  SimKernel kernel;
  SimilarityFn fn;
  std::vector<const Value*> refs;

  // Current input operand and its lazily decoded form. `a_ready` is reset
  // per BeginRow; decode happens at the first ScorePair so a row with no
  // reference pairs never surfaces a decode error (same as the per-pair
  // loop, which would not run at all).
  const Value* a = nullptr;
  bool a_ready = false;
  std::vector<Value> a_set;
  PairVec a_pairs;
  std::set<std::string> a_tokens;  // token or trigram set
  std::string a_str;               // lowered, for levenshtein
  double a_num = 0.0;

  // Pair kernels decode all-int64-key operands (the FlexRecs common case:
  // CourseID keys) into IntPairVec and run the merge walk on raw int64
  // comparisons. `a_int` / `b_int[j]` mark which representation holds the
  // decoded operand; a mixed (int, generic) pair promotes the int side to
  // its equivalent PairVec once (`a_promoted` / b_int[j] == 2).
  bool a_int = false;
  bool a_promoted = false;
  IntPairVec a_ipairs;
  std::vector<uint8_t> b_int;  // 0=generic, 1=int, 2=int+promoted
  std::vector<IntPairVec> b_ipairs;

  // Per-reference memos, filled on first *successful* decode — a failing
  // decode is retried (and re-fails identically) so the first error the
  // caller sees matches the per-pair path.
  std::vector<uint8_t> b_ready;
  std::vector<std::vector<Value>> b_sets;
  std::vector<PairVec> b_pairs;
  std::vector<std::set<std::string>> b_tokens;
  std::vector<std::string> b_strs;
  std::vector<double> b_nums;

  Impl(SimKernel k, SimilarityFn f, std::vector<const Value*> r)
      : kernel(k), fn(std::move(f)), refs(std::move(r)) {
    size_t m = refs.size();
    switch (kernel) {
      case SimKernel::kJaccard:
      case SimKernel::kDice:
      case SimKernel::kOverlap:
        b_ready.assign(m, 0);
        b_sets.resize(m);
        break;
      case SimKernel::kCosine:
      case SimKernel::kPearson:
      case SimKernel::kInvEuclidean:
      case SimKernel::kInvManhattan:
      case SimKernel::kRatingOf:
        b_ready.assign(m, 0);
        b_int.assign(m, 0);
        b_pairs.resize(m);
        b_ipairs.resize(m);
        break;
      case SimKernel::kTokenJaccard:
      case SimKernel::kTrigram:
        b_ready.assign(m, 0);
        b_tokens.resize(m);
        break;
      case SimKernel::kLevenshtein:
        b_ready.assign(m, 0);
        b_strs.resize(m);
        break;
      case SimKernel::kNumericProximity:
        b_ready.assign(m, 0);
        b_nums.assign(m, 0.0);
        break;
      case SimKernel::kExact:
      case SimKernel::kCustom:
        break;  // forwarded per pair, nothing to memoize
    }
  }
};

PairwiseScorer::PairwiseScorer(SimKernel kernel, SimilarityFn fn,
                               std::vector<const Value*> reference)
    : impl_(std::make_unique<Impl>(kernel, std::move(fn),
                                   std::move(reference))) {}

PairwiseScorer::~PairwiseScorer() = default;

void PairwiseScorer::BeginRow(const Value& input) {
  impl_->a = &input;
  impl_->a_ready = false;
  impl_->a_int = false;
  impl_->a_promoted = false;
}

Result<std::optional<double>> PairwiseScorer::ScorePair(size_t j) {
  Impl& im = *impl_;
  const Value& b = *im.refs[j];
  const char* name = KernelFnName(im.kernel);
  switch (im.kernel) {
    case SimKernel::kJaccard:
    case SimKernel::kDice:
    case SimKernel::kOverlap: {
      if (!im.a_ready) {
        CR_ASSIGN_OR_RETURN(im.a_set, DecodeSet(name, *im.a));
        im.a_ready = true;
      }
      if (im.b_ready[j] == 0) {
        CR_ASSIGN_OR_RETURN(im.b_sets[j], DecodeSet(name, b));
        im.b_ready[j] = 1;
      }
      if (im.kernel == SimKernel::kJaccard) {
        return JaccardFrom(im.a_set, im.b_sets[j]);
      }
      if (im.kernel == SimKernel::kDice) {
        return DiceFrom(im.a_set, im.b_sets[j]);
      }
      return OverlapFrom(im.a_set, im.b_sets[j]);
    }
    case SimKernel::kCosine:
    case SimKernel::kPearson:
    case SimKernel::kInvEuclidean:
    case SimKernel::kInvManhattan: {
      // Int-key fast path: a TryDecode never fails — a bail falls through
      // to the generic decode, so errors surface in the same order as the
      // per-pair path (input operand first, then the reference).
      if (!im.a_ready) {
        im.a_int = TryDecodeIntPairsInto(*im.a, &im.a_ipairs);
        if (!im.a_int) {
          CR_ASSIGN_OR_RETURN(im.a_pairs, DecodePairs(name, *im.a));
        }
        im.a_ready = true;
      }
      if (im.b_ready[j] == 0) {
        if (TryDecodeIntPairsInto(b, &im.b_ipairs[j])) {
          im.b_int[j] = 1;
        } else {
          CR_ASSIGN_OR_RETURN(im.b_pairs[j], DecodePairs(name, b));
          im.b_int[j] = 0;
        }
        im.b_ready[j] = 1;
      }
      const bool both_int = im.a_int && im.b_int[j] != 0;
      if (!both_int) {
        // Mixed representations: promote the int side to its equivalent
        // PairVec once and score generically.
        if (im.a_int && !im.a_promoted) {
          im.a_pairs = PromoteIntPairs(im.a_ipairs);
          im.a_promoted = true;
        }
        if (im.b_int[j] == 1) {
          im.b_pairs[j] = PromoteIntPairs(im.b_ipairs[j]);
          im.b_int[j] = 2;
        }
      }
      if (im.kernel == SimKernel::kCosine) {
        return both_int ? CosineFrom(im.a_ipairs, im.b_ipairs[j])
                        : CosineFrom(im.a_pairs, im.b_pairs[j]);
      }
      if (im.kernel == SimKernel::kPearson) {
        return both_int ? PearsonFrom(im.a_ipairs, im.b_ipairs[j])
                        : PearsonFrom(im.a_pairs, im.b_pairs[j]);
      }
      const bool euclid = im.kernel == SimKernel::kInvEuclidean;
      return both_int ? InverseDistanceFrom(im.a_ipairs, im.b_ipairs[j], euclid)
                      : InverseDistanceFrom(im.a_pairs, im.b_pairs[j], euclid);
    }
    case SimKernel::kTokenJaccard:
    case SimKernel::kTrigram: {
      // The per-pair built-in decodes both strings before tokenizing;
      // tokenizing never fails, so folding it into the memo step keeps the
      // same first error.
      if (!im.a_ready) {
        CR_ASSIGN_OR_RETURN(std::string sa, DecodeString(name, *im.a));
        im.a_tokens = im.kernel == SimKernel::kTokenJaccard ? TokenSet(sa)
                                                            : GramSet(sa);
        im.a_ready = true;
      }
      if (im.b_ready[j] == 0) {
        CR_ASSIGN_OR_RETURN(std::string sb, DecodeString(name, b));
        im.b_tokens[j] = im.kernel == SimKernel::kTokenJaccard ? TokenSet(sb)
                                                               : GramSet(sb);
        im.b_ready[j] = 1;
      }
      if (im.kernel == SimKernel::kTokenJaccard) {
        return TokenJaccardFrom(im.a_tokens, im.b_tokens[j]);
      }
      return TrigramFrom(im.a_tokens, im.b_tokens[j]);
    }
    case SimKernel::kLevenshtein: {
      if (!im.a_ready) {
        CR_ASSIGN_OR_RETURN(std::string sa, DecodeString(name, *im.a));
        im.a_str = ToLower(sa);
        im.a_ready = true;
      }
      if (im.b_ready[j] == 0) {
        CR_ASSIGN_OR_RETURN(std::string sb, DecodeString(name, b));
        im.b_strs[j] = ToLower(sb);
        im.b_ready[j] = 1;
      }
      return LevenshteinFromLower(im.a_str, im.b_strs[j]);
    }
    case SimKernel::kNumericProximity: {
      // Null checks come before either conversion, exactly as in
      // NumericProximity, so a null operand never surfaces the other
      // side's conversion error.
      if (im.a->is_null() || b.is_null()) return std::optional<double>();
      if (!im.a_ready) {
        CR_ASSIGN_OR_RETURN(im.a_num, im.a->ToDouble());
        im.a_ready = true;
      }
      if (im.b_ready[j] == 0) {
        CR_ASSIGN_OR_RETURN(im.b_nums[j], b.ToDouble());
        im.b_ready[j] = 1;
      }
      return std::optional<double>(1.0 /
                                   (1.0 + std::fabs(im.a_num - im.b_nums[j])));
    }
    case SimKernel::kRatingOf: {
      if (im.a->is_null()) return std::optional<double>();
      if (im.b_ready[j] == 0) {
        if (TryDecodeIntPairsInto(b, &im.b_ipairs[j])) {
          im.b_int[j] = 1;
        } else {
          CR_ASSIGN_OR_RETURN(im.b_pairs[j], DecodePairs(name, b));
          im.b_int[j] = 0;
        }
        im.b_ready[j] = 1;
      }
      const double* found;
      if (im.b_int[j] != 0 && im.a->type() == ValueType::kInt) {
        found = FindKey(im.b_ipairs[j], im.a->AsInt());
      } else {
        // A non-int64 probe key needs Value comparison semantics
        // (cross-type numeric equality); promote once and search the
        // generic form.
        if (im.b_int[j] == 1) {
          im.b_pairs[j] = PromoteIntPairs(im.b_ipairs[j]);
          im.b_int[j] = 2;
        }
        found = FindKey(im.b_pairs[j], *im.a);
      }
      if (found == nullptr) return std::optional<double>();
      return std::optional<double>(*found);
    }
    case SimKernel::kExact:
    case SimKernel::kCustom:
      return im.fn(*im.a, b);
  }
  return im.fn(*im.a, b);
}

}  // namespace courserank::flexrecs
