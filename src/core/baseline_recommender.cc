#include "core/baseline_recommender.h"

#include <algorithm>
#include <cmath>

namespace courserank::flexrecs {

using storage::Row;
using storage::RowId;
using storage::Table;

Result<HardcodedCf> HardcodedCf::Build(const storage::Database& db,
                                       Options options) {
  HardcodedCf cf(options);
  CR_ASSIGN_OR_RETURN(const Table* ratings, db.GetTable("Ratings"));
  CR_ASSIGN_OR_RETURN(size_t su, ratings->schema().ColumnIndex("SuID"));
  CR_ASSIGN_OR_RETURN(size_t co, ratings->schema().ColumnIndex("CourseID"));
  CR_ASSIGN_OR_RETURN(size_t sc, ratings->schema().ColumnIndex("Score"));
  Status bad = Status::OK();
  ratings->Scan([&](RowId, const Row& row) {
    if (!bad.ok()) return;
    if (row[su].is_null() || row[co].is_null() || row[sc].is_null()) return;
    auto score = row[sc].ToDouble();
    if (!score.ok()) {
      bad = score.status();
      return;
    }
    cf.profiles_[row[su].AsInt()][row[co].AsInt()] = *score;
  });
  CR_RETURN_IF_ERROR(bad);
  return cf;
}

Result<std::vector<std::pair<int64_t, double>>> HardcodedCf::Neighbors(
    int64_t student) const {
  auto it = profiles_.find(student);
  if (it == profiles_.end()) {
    return Status::NotFound("student " + std::to_string(student) +
                            " has no ratings");
  }
  const auto& mine = it->second;
  std::vector<std::pair<int64_t, double>> sims;
  for (const auto& [other, theirs] : profiles_) {
    if (other == student) continue;
    double acc = 0.0;
    size_t common = 0;
    for (const auto& [course, score] : mine) {
      auto jt = theirs.find(course);
      if (jt == theirs.end()) continue;
      ++common;
      double d = score - jt->second;
      acc += d * d;
    }
    if (common == 0) continue;
    sims.emplace_back(other, 1.0 / (1.0 + std::sqrt(acc)));
  }
  std::sort(sims.begin(), sims.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (sims.size() > options_.neighborhood) {
    sims.resize(options_.neighborhood);
  }
  return sims;
}

Result<std::vector<HardcodedCf::Recommendation>> HardcodedCf::RecommendFor(
    int64_t student) const {
  CR_ASSIGN_OR_RETURN(auto neighbors, Neighbors(student));
  const auto& mine = profiles_.at(student);

  std::unordered_map<int64_t, std::pair<double, size_t>> acc;  // sum, count
  for (const auto& [other, sim] : neighbors) {
    for (const auto& [course, score] : profiles_.at(other)) {
      if (mine.count(course) > 0) continue;  // already rated
      auto& slot = acc[course];
      slot.first += score;
      slot.second += 1;
    }
  }
  std::vector<Recommendation> recs;
  recs.reserve(acc.size());
  for (const auto& [course, sums] : acc) {
    recs.push_back(
        {course, sums.first / static_cast<double>(sums.second)});
  }
  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.course_id < b.course_id;
            });
  if (recs.size() > options_.top_k) recs.resize(options_.top_k);
  return recs;
}

}  // namespace courserank::flexrecs
