#ifndef COURSERANK_CORE_SIMILARITY_H_
#define COURSERANK_CORE_SIMILARITY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace courserank::flexrecs {

using storage::Value;

/// A comparison function from the FlexRecs library (paper §3.2: "functions
/// in a library that implement common tasks for recommendations, such as
/// computing the Jaccard or Pearson similarity of two sets of objects").
///
/// Returns nullopt when the pair is not comparable (e.g. no overlapping
/// rated items); the recommend operator skips such pairs rather than
/// scoring them zero. Errors are reserved for type misuse.
///
/// Reentrancy contract: the morsel-parallel recommend scoring loop
/// (DESIGN.md §11) invokes one SimilarityFn concurrently from multiple
/// worker threads over disjoint row ranges. Implementations must be
/// reentrant — pure functions of their two operands with no unsynchronized
/// mutable state (every built-in below qualifies). Registration is NOT
/// synchronized with execution: install custom functions before running
/// workflows, never while one executes.
using SimilarityFn =
    std::function<Result<std::optional<double>>(const Value&, const Value&)>;

/// What a comparison function expects each operand to be. The static
/// analyzer checks the recommend operator's resolved attribute types against
/// this; functions registered without a signature accept anything.
enum class SimArgKind {
  kAny,     ///< no constraint
  kString,  ///< STRING
  kNumber,  ///< INT or DOUBLE
  kSet,     ///< LIST treated as a set of values
  kPairs,   ///< LIST of [key, number] two-element lists (sparse vector)
  kScalar,  ///< any non-LIST value (a lookup key)
};

/// Returns "any", "string", "number", "set", "pairs", or "scalar".
const char* SimArgKindName(SimArgKind kind);

/// Declared operand expectations of one comparison function: the input
/// tuple's attribute and the reference tuple's attribute.
struct SimilaritySignature {
  SimArgKind input = SimArgKind::kAny;
  SimArgKind reference = SimArgKind::kAny;
};

/// Which built-in comparison kernel a registered name resolves to. The
/// recommend operator uses this to route scoring through the
/// decode-memoizing PairwiseScorer below; kCustom (user-registered
/// functions, or a built-in name the application overrode) stays on the
/// opaque per-pair SimilarityFn call.
enum class SimKernel {
  kCustom,
  kJaccard,
  kDice,
  kOverlap,
  kCosine,
  kPearson,
  kInvEuclidean,
  kInvManhattan,
  kTokenJaccard,
  kTrigram,
  kLevenshtein,
  kNumericProximity,
  kExact,
  kRatingOf,
};

/// Named registry of comparison functions. Construction installs the
/// built-ins below; applications may Register additional ones — this is the
/// paper's extensibility story for new recommendation semantics.
class SimilarityLibrary {
 public:
  SimilarityLibrary();

  /// Registers (or replaces) a function under `name` (case-insensitive).
  /// The two-argument form registers an unconstrained {kAny, kAny}
  /// signature.
  void Register(const std::string& name, SimilarityFn fn);
  void Register(const std::string& name, SimilarityFn fn,
                SimilaritySignature signature);

  /// NotFound when the name is unknown.
  Result<SimilarityFn> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Declared signature; nullopt when the name is unknown.
  std::optional<SimilaritySignature> GetSignature(
      const std::string& name) const;

  /// Kernel tag of `name`; kCustom for unknown names, user registrations,
  /// and built-in names the application re-registered over.
  SimKernel GetKernel(const std::string& name) const;

  /// Names of all registered functions, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    SimilarityFn fn;
    SimilaritySignature signature;
    SimKernel kernel = SimKernel::kCustom;
  };

  void RegisterBuiltin(const std::string& name, SimilarityFn fn,
                       SimilaritySignature signature, SimKernel kernel);

  std::unordered_map<std::string, Entry> fns_;
};

/// Decode-memoizing scorer for the recommend operator's O(N×M) loop.
///
/// The per-pair built-ins above re-decode both LIST/STRING operands on
/// every call, which makes recommend scoring O(N×M) *decodes*. This scorer
/// decodes each reference operand once per instance and each input operand
/// once per row, then runs only the comparison math per pair — the decode
/// work drops to O(N+M).
///
/// Byte-identity with the per-pair path: decoding is pure, so memoizing
/// successful decodes cannot change any result; the input operand is
/// decoded lazily at the *first* ScorePair (not in BeginRow), and each
/// kernel replicates its built-in's exact null-check/decode order, so the
/// first error surfaced is the same one the per-pair loop would hit.
/// kCustom and kExact kernels forward every pair to `fn` unmemoized.
///
/// Not thread-safe; the morsel-parallel recommend loop creates one scorer
/// per morsel.
class PairwiseScorer {
 public:
  /// `reference[j]` is the reference operand of pair index j. The pointed-to
  /// values must outlive the scorer.
  PairwiseScorer(SimKernel kernel, SimilarityFn fn,
                 std::vector<const Value*> reference);
  ~PairwiseScorer();
  PairwiseScorer(const PairwiseScorer&) = delete;
  PairwiseScorer& operator=(const PairwiseScorer&) = delete;

  /// Starts scoring a new input row. `input` must stay valid until the next
  /// BeginRow; it is decoded lazily at the first ScorePair.
  void BeginRow(const Value& input);

  /// Scores the current input against reference operand `j`.
  Result<std::optional<double>> ScorePair(size_t j);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- built-in comparison math, exposed for direct use and testing ----
//
// "Pairs" arguments are sparse vectors encoded as LIST values of [key,
// number] two-element lists — exactly what the ε-extend operator produces
// when collecting (CourseID, Rating) per student.

/// Jaccard |A∩B| / |A∪B| over LIST values treated as sets.
Result<std::optional<double>> JaccardSets(const Value& a, const Value& b);

/// Dice 2|A∩B| / (|A|+|B|) over LIST sets.
Result<std::optional<double>> DiceSets(const Value& a, const Value& b);

/// Overlap |A∩B| / min(|A|,|B|) over LIST sets.
Result<std::optional<double>> OverlapSets(const Value& a, const Value& b);

/// Cosine similarity over sparse pair-lists (common keys only in the dot
/// product, norms over each full vector). nullopt when either norm is 0.
Result<std::optional<double>> CosinePairs(const Value& a, const Value& b);

/// Pearson correlation over the co-rated keys; nullopt with fewer than two
/// common keys or zero variance.
Result<std::optional<double>> PearsonPairs(const Value& a, const Value& b);

/// 1 / (1 + euclidean distance over common keys) — the paper's Fig. 5(b)
/// "inverse Euclidean distance of their ratings". nullopt when no common
/// keys exist.
Result<std::optional<double>> InverseEuclideanPairs(const Value& a,
                                                    const Value& b);

/// 1 / (1 + manhattan distance over common keys).
Result<std::optional<double>> InverseManhattanPairs(const Value& a,
                                                    const Value& b);

/// Jaccard over lowercase word sets of two strings ("title similarity" for
/// Fig. 5(a)'s related-course workflow).
Result<std::optional<double>> TokenJaccard(const Value& a, const Value& b);

/// Jaccard over character trigrams of two strings; tolerant of morphology
/// ("programming" vs "programs").
Result<std::optional<double>> TrigramSimilarity(const Value& a,
                                                const Value& b);

/// 1 - levenshtein(a,b)/max(|a|,|b|).
Result<std::optional<double>> LevenshteinRatio(const Value& a, const Value& b);

/// Absolute-difference proximity of two numbers mapped to (0,1]:
/// 1 / (1 + |a-b|). Used for "students with similar grades/GPA".
Result<std::optional<double>> NumericProximity(const Value& a, const Value& b);

/// Exact-match indicator: 1.0 when equal, 0.0 otherwise.
Result<std::optional<double>> ExactMatch(const Value& a, const Value& b);

/// Lookup function, not a similarity: `a` is a key, `b` a pair-list; yields
/// the number paired with that key, or nullopt when absent. Lets a
/// recommend operator score courses by "the ratings given by the similar
/// students" (Fig. 5(b) upper operator).
Result<std::optional<double>> RatingOf(const Value& a, const Value& b);

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_SIMILARITY_H_
