#include "core/workflow_optimizer.h"

#include <cctype>

#include "common/strings.h"

namespace courserank::flexrecs {

namespace {

/// True when `text` contains `ident` as a standalone identifier
/// (case-insensitive, word boundaries). Used to decide conservatively
/// whether a predicate references the recommend score column.
bool MentionsIdentifier(const std::string& text, const std::string& ident) {
  if (ident.empty()) return false;
  std::string low_text = ToLower(text);
  std::string low_ident = ToLower(ident);
  size_t pos = 0;
  while ((pos = low_text.find(low_ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                                    low_text[pos - 1])) &&
                                low_text[pos - 1] != '_' &&
                                low_text[pos - 1] != '.');
    size_t end = pos + low_ident.size();
    bool right_ok =
        end == low_text.size() ||
        (!std::isalnum(static_cast<unsigned char>(low_text[end])) &&
         low_text[end] != '_');
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// One bottom-up rewrite pass; returns true when any rule fired.
bool RewriteOnce(NodePtr& node, OptimizerStats* stats, std::string* trace) {
  bool changed = false;
  for (NodePtr& child : node->children) {
    changed |= RewriteOnce(child, stats, trace);
  }

  // Rule 3: Select(Select(x)) -> Select(x) with AND-merged predicate.
  if (node->kind == NodeKind::kSelect &&
      node->children[0]->kind == NodeKind::kSelect) {
    NodePtr inner = std::move(node->children[0]);
    node->predicate =
        query::MakeBinary(query::BinaryOp::kAnd, std::move(inner->predicate),
                          std::move(node->predicate));
    node->children[0] = std::move(inner->children[0]);
    ++stats->selects_merged;
    if (trace != nullptr) *trace += "merged adjacent Selects\n";
    return true;
  }

  // Rule 1: TopK(score DESC, k) over Recommend(score) -> fused top_k.
  if (node->kind == NodeKind::kTopK && node->descending &&
      node->children[0]->kind == NodeKind::kRecommend &&
      EqualsIgnoreCase(node->order_column,
                       node->children[0]->recommend.score_column)) {
    NodePtr rec = std::move(node->children[0]);
    size_t k = node->k;
    rec->recommend.top_k = rec->recommend.top_k == 0
                               ? k
                               : std::min(rec->recommend.top_k, k);
    node = std::move(rec);
    ++stats->topk_fused;
    if (trace != nullptr) *trace += "fused TopK into Recommend\n";
    return true;
  }

  // Rule 2: Select over Recommend pushes below when the predicate ignores
  // the score column and the operator has no top_k (a top-k cut before vs
  // after a filter is not equivalent).
  if (node->kind == NodeKind::kSelect &&
      node->children[0]->kind == NodeKind::kRecommend &&
      node->children[0]->recommend.top_k == 0 &&
      !MentionsIdentifier(node->predicate->ToString(),
                          node->children[0]->recommend.score_column)) {
    NodePtr rec = std::move(node->children[0]);
    NodePtr select = std::move(node);
    // select becomes the recommend's input child.
    select->children[0] = std::move(rec->children[0]);
    rec->children[0] = std::move(select);
    node = std::move(rec);
    ++stats->selects_pushed;
    if (trace != nullptr) *trace += "pushed Select below Recommend\n";
    return true;
  }

  // Rule 4: Select over Extend pushes below when the predicate ignores the
  // extend's collected list column — σ_p(ε(x, src)) = ε(σ_p(x), src) since
  // ε only appends a column and never drops or reorders child rows. This
  // exposes Select-over-Table subtrees to the SQL compiler, whose WHERE
  // then becomes a scan pushdown.
  if (node->kind == NodeKind::kSelect &&
      node->children[0]->kind == NodeKind::kExtend &&
      !MentionsIdentifier(node->predicate->ToString(),
                          node->children[0]->column_name)) {
    NodePtr ext = std::move(node->children[0]);
    NodePtr select = std::move(node);
    select->children[0] = std::move(ext->children[0]);
    ext->children[0] = std::move(select);
    node = std::move(ext);
    ++stats->selects_pushed_below_extend;
    if (trace != nullptr) *trace += "pushed Select below Extend\n";
    return true;
  }

  // Rule 5: TopK over Extend pushes below when the order column is not the
  // extend's collected list column — ε emits exactly one output row per
  // child row in child order, so a top-k cut on a child column selects the
  // same rows before or after it, and the TopK row-index tiebreak keeps the
  // output byte-identical. The extend then builds groups for k rows instead
  // of the whole child, and the rewrite can expose rule 1 (TopK-into-
  // Recommend) further down the spine.
  if (node->kind == NodeKind::kTopK &&
      node->children[0]->kind == NodeKind::kExtend &&
      !EqualsIgnoreCase(node->order_column,
                        node->children[0]->column_name)) {
    NodePtr ext = std::move(node->children[0]);
    NodePtr topk = std::move(node);
    topk->children[0] = std::move(ext->children[0]);
    ext->children[0] = std::move(topk);
    node = std::move(ext);
    ++stats->topk_pushed_below_extend;
    if (trace != nullptr) *trace += "pushed TopK below Extend\n";
    return true;
  }

  return changed;
}

}  // namespace

NodePtr OptimizeWorkflow(NodePtr root, OptimizerStats* stats,
                         std::string* trace) {
  OptimizerStats local;
  if (stats == nullptr) stats = &local;
  // Iterate to a fixpoint; the rule set strictly shrinks/fuses nodes so a
  // small bound suffices.
  for (int round = 0; round < 16; ++round) {
    if (!RewriteOnce(root, stats, trace)) break;
  }
  return root;
}

NodePtr OptimizeWorkflow(NodePtr root, std::string* trace) {
  return OptimizeWorkflow(std::move(root), nullptr, trace);
}

}  // namespace courserank::flexrecs
