#ifndef COURSERANK_CORE_STRATEGIES_H_
#define COURSERANK_CORE_STRATEGIES_H_

#include <string>

#include "common/status.h"
#include "core/flexrecs_engine.h"

namespace courserank::flexrecs::strategies {

/// The canned CourseRank recommendation strategies. Each is authored in the
/// workflow DSL (the same path a site administrator uses) and registered
/// under the name given below. Parameters are bound per request.
///
///   related_courses   ($title, $year)  — Fig. 5(a): courses offered in
///       $year whose titles are similar to the course titled $title.
///   user_cf           ($student)       — Fig. 5(b): students similar to
///       $student by inverse Euclidean distance of ratings (via ε-extend),
///       then courses ranked by the average rating of the similar students;
///       courses the student already rated are excluded.
///   weighted_user_cf  ($student)       — user_cf with ratings weighted by
///       each neighbor's similarity (ablation variant).
///   grade_cf          ($student)       — neighbors chosen by similarity of
///       grades rather than ratings ("people with similar grades", §3).
///   major_popular     ($major)         — best-rated courses among students
///       of one major.
///   recommend_major   ($student)       — departments ranked by overlap
///       between their course set and the student's completed courses (for
///       students that have not declared a major, §3.2).
///   best_quarter      ($course)        — quarters ranked by historical
///       average grade in the course ("what is the best quarter to take a
///       calculus course", §3).

/// DSL source text of each strategy (exposed for tests and docs).
std::string RelatedCoursesDsl();
std::string UserCfDsl();
std::string WeightedUserCfDsl();
std::string GradeCfDsl();
std::string MajorPopularDsl();
std::string RecommendMajorDsl();
std::string BestQuarterDsl();

/// Parses and registers all of the above under their names.
Status RegisterDefaults(FlexRecsEngine& engine);

}  // namespace courserank::flexrecs::strategies

#endif  // COURSERANK_CORE_STRATEGIES_H_
