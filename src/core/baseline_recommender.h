#ifndef COURSERANK_CORE_BASELINE_RECOMMENDER_H_
#define COURSERANK_CORE_BASELINE_RECOMMENDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace courserank::flexrecs {

/// The recommendation engine the paper argues against: user-based
/// collaborative filtering with the algorithm "embedded in the system code"
/// — fixed neighborhood, fixed similarity, no customization. Exists as the
/// comparison baseline for DESIGN.md E6: the FlexRecs `user_cf` strategy
/// must reproduce its output, and the bench measures the latency cost of
/// FlexRecs' declarative indirection.
class HardcodedCf {
 public:
  struct Options {
    size_t neighborhood = 25;  ///< top similar users consulted
    size_t top_k = 10;         ///< recommendations returned
  };

  struct Recommendation {
    int64_t course_id;
    double score;
  };

  /// Snapshots the Ratings table (SuID, CourseID, Score) into in-memory
  /// profile maps. Rebuild after data changes.
  static Result<HardcodedCf> Build(const storage::Database& db,
                                   Options options);
  static Result<HardcodedCf> Build(const storage::Database& db) {
    return Build(db, Options());
  }

  /// Top-k courses for `student`, excluding courses already rated, scored
  /// by the mean rating among the neighborhood (inverse Euclidean
  /// similarity over co-rated courses).
  Result<std::vector<Recommendation>> RecommendFor(int64_t student) const;

  /// Neighbors and similarities for `student` (exposed for tests).
  Result<std::vector<std::pair<int64_t, double>>> Neighbors(
      int64_t student) const;

 private:
  explicit HardcodedCf(Options options) : options_(options) {}

  Options options_;
  std::unordered_map<int64_t, std::unordered_map<int64_t, double>> profiles_;
};

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_BASELINE_RECOMMENDER_H_
