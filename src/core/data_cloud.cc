#include "core/data_cloud.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace courserank::cloud {

using search::kNoTerm;

namespace {

/// Cloud-path metrics, resolved once per process. `terms_touched` is the
/// number of distinct accumulator slots a build dirtied — the dense
/// aggregation's unit of work (and of the O(touched) clear).
struct CloudMetrics {
  obs::Histogram* build_ns;
  obs::Histogram* topk_ns;
  obs::Histogram* cached_build_ns;
  obs::Counter* builds;
  obs::Counter* terms_touched;
  obs::Counter* hits_accumulated;
};

const CloudMetrics& Metrics() {
  static const CloudMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return CloudMetrics{reg.GetHistogram("cr_cloud_build_ns"),
                        reg.GetHistogram("cr_cloud_topk_ns"),
                        reg.GetHistogram("cr_cloud_cached_build_ns"),
                        reg.GetCounter("cr_cloud_builds_total"),
                        reg.GetCounter("cr_cloud_terms_touched_total"),
                        reg.GetCounter("cr_cloud_hits_accumulated_total")};
  }();
  return m;
}

/// Minimum hits per accumulation shard; below this, sharding overhead
/// beats the parallelism. The shard count is a pure function of the hit
/// count (see ThreadPool::NumChunks), never of the worker count.
constexpr size_t kMinShardHits = 256;

/// Query terms (and their components) never appear in the cloud — clicking
/// them would be a no-op refinement.
std::set<std::string> ExcludedTerms(const ResultSet& results) {
  std::set<std::string> excluded;
  for (const std::string& q : results.terms) {
    excluded.insert(q);
    size_t space = q.find(' ');
    if (space != std::string::npos) {
      excluded.insert(q.substr(0, space));
      excluded.insert(q.substr(space + 1));
    }
  }
  return excluded;
}

}  // namespace

bool DataCloud::Contains(const std::string& display_or_term) const {
  for (const CloudTerm& t : terms) {
    if (EqualsIgnoreCase(t.display, display_or_term) ||
        EqualsIgnoreCase(t.term, display_or_term)) {
      return true;
    }
  }
  return false;
}

std::string DataCloud::ToString() const {
  // Tag clouds render alphabetically with size encoding significance.
  std::vector<const CloudTerm*> sorted;
  sorted.reserve(terms.size());
  for (const CloudTerm& t : terms) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const CloudTerm* a, const CloudTerm* b) {
              return a->display < b->display;
            });
  std::string out;
  for (const CloudTerm* t : sorted) {
    if (!out.empty()) out += "  ";
    out += t->display + "(" + std::to_string(t->font_bucket) + ")";
  }
  return out;
}

// ------------------------------------------------------------ accumulators

void CloudBuilder::Accumulator::EnsureSize(size_t num_terms) {
  if (agg.size() < num_terms) agg.resize(num_terms);
}

void CloudBuilder::Accumulator::Clear() {
  for (TermId tid : touched_unigrams) agg[tid] = TermAgg{};
  for (TermId tid : touched_bigrams) agg[tid] = TermAgg{};
  touched_unigrams.clear();
  touched_bigrams.clear();
}

std::unique_ptr<CloudBuilder::Accumulator> CloudBuilder::TakeScratch() const {
  std::unique_ptr<Accumulator> acc;
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_.empty()) {
      acc = std::move(scratch_.back());
      scratch_.pop_back();
    }
  }
  if (!acc) acc = std::make_unique<Accumulator>();
  acc->EnsureSize(index_->num_terms());
  return acc;
}

void CloudBuilder::ReturnScratch(std::unique_ptr<Accumulator> acc) const {
  acc->Clear();
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_.size() < ThreadPool::kMaxChunks + 1) {
    scratch_.push_back(std::move(acc));
  }
}

void CloudBuilder::AccumulateRange(const ResultSet& results, size_t begin,
                                   size_t end, Accumulator* acc) const {
  for (size_t h = begin; h < end; ++h) {
    const search::SearchHit& hit = results.hits[h];
    if (!index_->IsLive(hit.doc)) continue;
    const search::DocTermVector& vec = index_->doc_terms(hit.doc);
    for (const auto& [tid, tf] : vec.unigrams) {
      TermAgg& agg = acc->agg[tid];
      if (agg.doc_count == 0) acc->touched_unigrams.push_back(tid);
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
    if (options_.include_bigrams) {
      for (const auto& [tid, tf] : vec.bigrams) {
        TermAgg& agg = acc->agg[tid];
        if (agg.doc_count == 0) acc->touched_bigrams.push_back(tid);
        agg.total_tf += tf;
        agg.doc_count += 1;
        agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
      }
    }
  }
}

void CloudBuilder::MergeInto(const Accumulator& shard, Accumulator* main) {
  // Worst case (disjoint term sets) adds every shard entry; reserving it
  // keeps the merge loop free of reallocation.
  main->touched_unigrams.reserve(main->touched_unigrams.size() +
                                 shard.touched_unigrams.size());
  main->touched_bigrams.reserve(main->touched_bigrams.size() +
                                shard.touched_bigrams.size());
  for (TermId tid : shard.touched_unigrams) {
    TermAgg& agg = main->agg[tid];
    if (agg.doc_count == 0) main->touched_unigrams.push_back(tid);
    const TermAgg& s = shard.agg[tid];
    agg.total_tf += s.total_tf;
    agg.doc_count += s.doc_count;
    agg.sum_log_tf += s.sum_log_tf;
  }
  for (TermId tid : shard.touched_bigrams) {
    TermAgg& agg = main->agg[tid];
    if (agg.doc_count == 0) main->touched_bigrams.push_back(tid);
    const TermAgg& s = shard.agg[tid];
    agg.total_tf += s.total_tf;
    agg.doc_count += s.doc_count;
    agg.sum_log_tf += s.sum_log_tf;
  }
}

DataCloud CloudBuilder::Build(const ResultSet& results) const {
  const CloudMetrics& m = Metrics();
  obs::ScopedSpan span(obs::stage::kCloudBuild, m.build_ns);
  m.builds->Add();
  m.hits_accumulated->Add(results.hits.size());
  std::unique_ptr<Accumulator> main = TakeScratch();

  {
    obs::ScopedSpan accumulate(obs::stage::kCloudAccumulate);
    size_t shards = ThreadPool::NumChunks(results.hits.size(), kMinShardHits);
    if (shards <= 1) {
      AccumulateRange(results, 0, results.hits.size(), main.get());
    } else {
      // Per-shard partials merged in shard order: the floating-point
      // addition tree depends only on the (hit-count-determined) partition,
      // so any pool size — including inline — produces identical bytes.
      std::vector<std::unique_ptr<Accumulator>> parts(shards);
      pool_->ParallelFor(
          results.hits.size(), kMinShardHits,
          [&](size_t shard, size_t begin, size_t end) {
            parts[shard] = TakeScratch();
            AccumulateRange(results, begin, end, parts[shard].get());
          });
      for (size_t s = 0; s < shards; ++s) {
        MergeInto(*parts[s], main.get());
        ReturnScratch(std::move(parts[s]));
      }
    }
  }
  m.terms_touched->Add(main->touched_unigrams.size() +
                       main->touched_bigrams.size());

  DataCloud cloud = AssembleDense(*main, results);
  ReturnScratch(std::move(main));
  return cloud;
}

DataCloud CloudBuilder::BuildByReanalysis(const ResultSet& results) const {
  AggMap unigrams;
  AggMap bigrams;
  const text::Analyzer& analyzer = index_->analyzer();
  for (const search::SearchHit& hit : results.hits) {
    if (!index_->IsLive(hit.doc)) continue;
    const search::EntityDocument& doc = index_->doc(hit.doc);
    std::map<std::string, uint32_t> uni;
    std::map<std::string, uint32_t> bi;
    for (const std::string& field : doc.field_texts) {
      std::vector<text::AnalyzedToken> tokens = analyzer.Analyze(field);
      for (const text::AnalyzedToken& t : tokens) ++uni[t.term];
      if (options_.include_bigrams) {
        for (const text::AnalyzedToken& bg : text::Analyzer::Bigrams(tokens)) {
          ++bi[bg.term];
        }
      }
    }
    for (const auto& [term, tf] : uni) {
      TermAgg& agg = unigrams[term];
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
    for (const auto& [term, tf] : bi) {
      TermAgg& agg = bigrams[term];
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
  }
  return Assemble(unigrams, bigrams, results);
}

// --------------------------------------------------------------- assembly

double CloudBuilder::ScoreOf(const TermAgg& agg, double idf) const {
  switch (options_.scoring) {
    case TermScoring::kTf:
      return static_cast<double>(agg.total_tf);
    case TermScoring::kPopularity:
      return static_cast<double>(agg.doc_count);
    case TermScoring::kTfIdf:
      return agg.sum_log_tf * idf;
  }
  return 0.0;
}

DataCloud CloudBuilder::AssembleDense(const Accumulator& acc,
                                      const ResultSet& results) const {
  std::set<std::string> excluded = ExcludedTerms(results);
  std::vector<CloudTerm> candidates;
  candidates.reserve(acc.touched_unigrams.size() +
                     acc.touched_bigrams.size());

  for (TermId tid : acc.touched_unigrams) {
    const TermAgg& agg = acc.agg[tid];
    if (agg.doc_count < options_.min_doc_count) continue;
    const std::string& term = index_->TermString(tid);
    if (term.size() < 2) continue;
    if (excluded.count(term) > 0) continue;
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = ScoreOf(agg, index_->Idf(tid));
    ct.is_phrase = false;
    candidates.push_back(std::move(ct));
  }
  for (TermId tid : acc.touched_bigrams) {
    const TermAgg& agg = acc.agg[tid];
    if (agg.doc_count < options_.min_doc_count) continue;
    const std::string& term = index_->TermString(tid);
    if (excluded.count(term) > 0) continue;
    // A bigram both of whose components are query terms adds nothing.
    size_t space = term.find(' ');
    std::string first = term.substr(0, space);
    std::string second = term.substr(space + 1);
    if (excluded.count(first) > 0 && excluded.count(second) > 0) continue;
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = ScoreOf(agg, index_->BigramIdf(tid)) * options_.bigram_boost;
    ct.is_phrase = true;
    candidates.push_back(std::move(ct));
  }
  return SelectTopTerms(std::move(candidates));
}

DataCloud CloudBuilder::Assemble(const AggMap& unigrams, const AggMap& bigrams,
                                 const ResultSet& results) const {
  std::set<std::string> excluded = ExcludedTerms(results);
  std::vector<CloudTerm> candidates;

  for (const auto& [term, agg] : unigrams) {
    if (agg.doc_count < options_.min_doc_count) continue;
    if (excluded.count(term) > 0) continue;
    if (term.size() < 2) continue;
    TermId tid = index_->LookupTerm(term);
    double idf = tid == kNoTerm ? 0.0 : index_->Idf(tid);
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = ScoreOf(agg, idf);
    ct.is_phrase = false;
    candidates.push_back(std::move(ct));
  }
  for (const auto& [term, agg] : bigrams) {
    if (agg.doc_count < options_.min_doc_count) continue;
    if (excluded.count(term) > 0) continue;
    // A bigram both of whose components are query terms adds nothing.
    size_t space = term.find(' ');
    std::string first = term.substr(0, space);
    std::string second = term.substr(space + 1);
    if (excluded.count(first) > 0 && excluded.count(second) > 0) continue;
    TermId tid = index_->LookupTerm(term);
    double idf = tid == kNoTerm ? 0.0 : index_->BigramIdf(tid);
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = ScoreOf(agg, idf) * options_.bigram_boost;
    ct.is_phrase = true;
    candidates.push_back(std::move(ct));
  }
  return SelectTopTerms(std::move(candidates));
}

DataCloud CloudBuilder::SelectTopTerms(
    std::vector<CloudTerm> candidates) const {
  obs::ScopedSpan span(obs::stage::kCloudTopK, Metrics().topk_ns);
  std::sort(candidates.begin(), candidates.end(),
            [](const CloudTerm& a, const CloudTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });

  DataCloud cloud;
  std::set<std::string> picked_bigram_components;
  for (CloudTerm& ct : candidates) {
    if (cloud.terms.size() >= options_.max_terms) break;
    if (!ct.is_phrase && options_.dedup_subsumed_unigrams &&
        picked_bigram_components.count(ct.term) > 0) {
      // A stronger phrase containing this word is already in the cloud;
      // keep the unigram only when it brings substantially more documents.
      bool subsumed = false;
      for (const CloudTerm& p : cloud.terms) {
        if (!p.is_phrase) continue;
        size_t space = p.term.find(' ');
        if (p.term.substr(0, space) == ct.term ||
            p.term.substr(space + 1) == ct.term) {
          if (static_cast<double>(ct.doc_count) <=
              1.25 * static_cast<double>(p.doc_count)) {
            subsumed = true;
            break;
          }
        }
      }
      if (subsumed) continue;
    }
    if (ct.is_phrase) {
      size_t space = ct.term.find(' ');
      picked_bigram_components.insert(ct.term.substr(0, space));
      picked_bigram_components.insert(ct.term.substr(space + 1));
    }
    cloud.terms.push_back(std::move(ct));
  }

  // Font buckets by linear interpolation over the selected score range.
  if (!cloud.terms.empty()) {
    double lo = cloud.terms.back().score;
    double hi = cloud.terms.front().score;
    double span = hi - lo;
    for (CloudTerm& ct : cloud.terms) {
      if (span <= 0.0) {
        ct.font_bucket = options_.font_buckets;
      } else {
        double rel = (ct.score - lo) / span;
        ct.font_bucket =
            1 + static_cast<int>(rel * (options_.font_buckets - 1) + 0.5);
      }
    }
  }
  return cloud;
}

// ---------------------------------------------------------------- caching

std::string CachingCloudBuilder::CloudKey(const ResultSet& results) const {
  std::string key;
  for (const std::string& t : search::NormalizedTerms(results.terms)) {
    key += t;
    key += '\x1f';
  }
  // Distinguish differently-truncated result sets that share a term set
  // (callers with max_results): size plus boundary doc ids.
  key += '|';
  key += std::to_string(results.hits.size());
  if (!results.hits.empty()) {
    key += ',';
    key += std::to_string(results.hits.front().doc);
    key += ',';
    key += std::to_string(results.hits.back().doc);
  }
  const CloudOptions& o = builder_.options();
  key += '|';
  key += std::to_string(o.max_terms);
  key += static_cast<char>('0' + static_cast<int>(o.scoring));
  key += o.include_bigrams ? 'B' : '-';
  key += std::to_string(o.bigram_boost);
  key += ',';
  key += std::to_string(o.min_doc_count);
  key += ',';
  key += std::to_string(o.font_buckets);
  key += o.dedup_subsumed_unigrams ? 'D' : '-';
  return key;
}

std::shared_ptr<const DataCloud> CachingCloudBuilder::Build(
    const ResultSet& results) const {
  obs::ScopedSpan span(obs::stage::kCloudCachedBuild,
                       Metrics().cached_build_ns);
  uint64_t epoch = index_->epoch();
  if (results.epoch != epoch) {
    // A stale result set's cloud must not be cached as current.
    return std::make_shared<const DataCloud>(builder_.Build(results));
  }
  std::string key = CloudKey(results);
  // The warm hit path is ~330ns, so the probe span — a few ns even
  // unsampled — is only constructed when this query is being traced.
  if (obs::ScopedSpan::active()) {
    obs::ScopedSpan probe(obs::stage::kCloudCacheProbe);
    if (std::shared_ptr<const DataCloud> hit = cache_.Get(key, epoch)) {
      return hit;
    }
  } else if (std::shared_ptr<const DataCloud> hit = cache_.Get(key, epoch)) {
    return hit;
  }
  return cache_.Put(key, epoch, builder_.Build(results));
}

}  // namespace courserank::cloud
