#include "core/data_cloud.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"

namespace courserank::cloud {

using search::kNoTerm;
using search::TermId;

bool DataCloud::Contains(const std::string& display_or_term) const {
  for (const CloudTerm& t : terms) {
    if (EqualsIgnoreCase(t.display, display_or_term) ||
        EqualsIgnoreCase(t.term, display_or_term)) {
      return true;
    }
  }
  return false;
}

std::string DataCloud::ToString() const {
  // Tag clouds render alphabetically with size encoding significance.
  std::vector<const CloudTerm*> sorted;
  sorted.reserve(terms.size());
  for (const CloudTerm& t : terms) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const CloudTerm* a, const CloudTerm* b) {
              return a->display < b->display;
            });
  std::string out;
  for (const CloudTerm* t : sorted) {
    if (!out.empty()) out += "  ";
    out += t->display + "(" + std::to_string(t->font_bucket) + ")";
  }
  return out;
}

DataCloud CloudBuilder::Build(const ResultSet& results) const {
  AggMap unigrams;
  AggMap bigrams;
  for (const search::SearchHit& hit : results.hits) {
    if (!index_->IsLive(hit.doc)) continue;
    const search::DocTermVector& vec = index_->doc_terms(hit.doc);
    for (const auto& [tid, tf] : vec.unigrams) {
      TermAgg& agg = unigrams[index_->TermString(tid)];
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
    if (options_.include_bigrams) {
      for (const auto& [tid, tf] : vec.bigrams) {
        TermAgg& agg = bigrams[index_->TermString(tid)];
        agg.total_tf += tf;
        agg.doc_count += 1;
        agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
      }
    }
  }
  return Assemble(unigrams, bigrams, results);
}

DataCloud CloudBuilder::BuildByReanalysis(const ResultSet& results) const {
  AggMap unigrams;
  AggMap bigrams;
  const text::Analyzer& analyzer = index_->analyzer();
  for (const search::SearchHit& hit : results.hits) {
    if (!index_->IsLive(hit.doc)) continue;
    const search::EntityDocument& doc = index_->doc(hit.doc);
    std::map<std::string, uint32_t> uni;
    std::map<std::string, uint32_t> bi;
    for (const std::string& field : doc.field_texts) {
      std::vector<text::AnalyzedToken> tokens = analyzer.Analyze(field);
      for (const text::AnalyzedToken& t : tokens) ++uni[t.term];
      if (options_.include_bigrams) {
        for (const text::AnalyzedToken& bg : text::Analyzer::Bigrams(tokens)) {
          ++bi[bg.term];
        }
      }
    }
    for (const auto& [term, tf] : uni) {
      TermAgg& agg = unigrams[term];
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
    for (const auto& [term, tf] : bi) {
      TermAgg& agg = bigrams[term];
      agg.total_tf += tf;
      agg.doc_count += 1;
      agg.sum_log_tf += 1.0 + std::log(static_cast<double>(tf));
    }
  }
  return Assemble(unigrams, bigrams, results);
}

DataCloud CloudBuilder::Assemble(const AggMap& unigrams, const AggMap& bigrams,
                                 const ResultSet& results) const {
  // Terms already in the query (and their components) never appear in the
  // cloud — clicking them would be a no-op refinement.
  std::set<std::string> excluded;
  for (const std::string& q : results.terms) {
    excluded.insert(q);
    size_t space = q.find(' ');
    if (space != std::string::npos) {
      excluded.insert(q.substr(0, space));
      excluded.insert(q.substr(space + 1));
    }
  }

  struct Candidate {
    CloudTerm term;
  };
  std::vector<CloudTerm> candidates;

  auto score_of = [&](const TermAgg& agg, double idf) {
    switch (options_.scoring) {
      case TermScoring::kTf:
        return static_cast<double>(agg.total_tf);
      case TermScoring::kPopularity:
        return static_cast<double>(agg.doc_count);
      case TermScoring::kTfIdf:
        return agg.sum_log_tf * idf;
    }
    return 0.0;
  };

  for (const auto& [term, agg] : unigrams) {
    if (agg.doc_count < options_.min_doc_count) continue;
    if (excluded.count(term) > 0) continue;
    if (term.size() < 2) continue;
    TermId tid = index_->LookupTerm(term);
    double idf = tid == kNoTerm ? 0.0 : index_->Idf(tid);
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = score_of(agg, idf);
    ct.is_phrase = false;
    candidates.push_back(std::move(ct));
  }
  for (const auto& [term, agg] : bigrams) {
    if (agg.doc_count < options_.min_doc_count) continue;
    if (excluded.count(term) > 0) continue;
    // A bigram both of whose components are query terms adds nothing.
    size_t space = term.find(' ');
    std::string first = term.substr(0, space);
    std::string second = term.substr(space + 1);
    if (excluded.count(first) > 0 && excluded.count(second) > 0) continue;
    TermId tid = index_->LookupTerm(term);
    double idf = tid == kNoTerm ? 0.0 : index_->BigramIdf(tid);
    CloudTerm ct;
    ct.term = term;
    ct.display = index_->DisplayForm(term);
    ct.total_tf = agg.total_tf;
    ct.doc_count = agg.doc_count;
    ct.score = score_of(agg, idf) * options_.bigram_boost;
    ct.is_phrase = true;
    candidates.push_back(std::move(ct));
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const CloudTerm& a, const CloudTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });

  DataCloud cloud;
  std::set<std::string> picked_bigram_components;
  for (CloudTerm& ct : candidates) {
    if (cloud.terms.size() >= options_.max_terms) break;
    if (!ct.is_phrase && options_.dedup_subsumed_unigrams &&
        picked_bigram_components.count(ct.term) > 0) {
      // A stronger phrase containing this word is already in the cloud;
      // keep the unigram only when it brings substantially more documents.
      bool subsumed = false;
      for (const CloudTerm& p : cloud.terms) {
        if (!p.is_phrase) continue;
        size_t space = p.term.find(' ');
        if (p.term.substr(0, space) == ct.term ||
            p.term.substr(space + 1) == ct.term) {
          if (static_cast<double>(ct.doc_count) <=
              1.25 * static_cast<double>(p.doc_count)) {
            subsumed = true;
            break;
          }
        }
      }
      if (subsumed) continue;
    }
    if (ct.is_phrase) {
      size_t space = ct.term.find(' ');
      picked_bigram_components.insert(ct.term.substr(0, space));
      picked_bigram_components.insert(ct.term.substr(space + 1));
    }
    cloud.terms.push_back(std::move(ct));
  }

  // Font buckets by linear interpolation over the selected score range.
  if (!cloud.terms.empty()) {
    double lo = cloud.terms.back().score;
    double hi = cloud.terms.front().score;
    double span = hi - lo;
    for (CloudTerm& ct : cloud.terms) {
      if (span <= 0.0) {
        ct.font_bucket = options_.font_buckets;
      } else {
        double rel = (ct.score - lo) / span;
        ct.font_bucket =
            1 + static_cast<int>(rel * (options_.font_buckets - 1) + 0.5);
      }
    }
  }
  return cloud;
}

}  // namespace courserank::cloud
