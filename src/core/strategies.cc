#include "core/strategies.h"

#include "core/workflow_parser.h"

namespace courserank::flexrecs::strategies {

std::string RelatedCoursesDsl() {
  return R"(# Fig. 5(a): related courses by title similarity
offered = SQL SELECT DISTINCT c.CourseID AS CourseID, c.Title AS Title FROM Courses c JOIN Offerings o ON c.CourseID = o.CourseID WHERE o.Year = $year
target  = SQL SELECT CourseID, Title FROM Courses WHERE Title = $title
ranked  = RECOMMEND offered AGAINST target USING token_jaccard(Title, Title) AGG max SCORE score MIN 0.05
others  = EXCEPT ranked ON CourseID = CourseID FROM target
top     = TOPK others BY score DESC LIMIT 10
RETURN top
)";
}

std::string UserCfDsl() {
  return R"(# Fig. 5(b): user-based collaborative filtering
students = TABLE Students
ratings  = TABLE Ratings
ext      = EXTEND students WITH ratings ON SuID = SuID COLLECT CourseID, Score AS ratings
target   = SELECT ext WHERE SuID = $student
others   = SELECT ext WHERE SuID <> $student
similar  = RECOMMEND others AGAINST target USING inv_euclidean(ratings, ratings) AGG max SCORE sim TOP 25
courses  = TABLE Courses
scored   = RECOMMEND courses AGAINST similar USING rating_of(CourseID, ratings) AGG avg SCORE score
mine     = SELECT ratings WHERE SuID = $student
fresh    = EXCEPT scored ON CourseID = CourseID FROM mine
top      = TOPK fresh BY score DESC LIMIT 10
RETURN top
)";
}

std::string WeightedUserCfDsl() {
  return R"(# user_cf with neighbors weighted by similarity
students = TABLE Students
ratings  = TABLE Ratings
ext      = EXTEND students WITH ratings ON SuID = SuID COLLECT CourseID, Score AS ratings
target   = SELECT ext WHERE SuID = $student
others   = SELECT ext WHERE SuID <> $student
similar  = RECOMMEND others AGAINST target USING inv_euclidean(ratings, ratings) AGG max SCORE sim TOP 25
courses  = TABLE Courses
scored   = RECOMMEND courses AGAINST similar USING rating_of(CourseID, ratings) AGG weighted sim SCORE score
mine     = SELECT ratings WHERE SuID = $student
fresh    = EXCEPT scored ON CourseID = CourseID FROM mine
top      = TOPK fresh BY score DESC LIMIT 10
RETURN top
)";
}

std::string GradeCfDsl() {
  return R"(# neighbors by similarity of grades instead of ratings
students = TABLE Students
reported = SQL SELECT SuID, CourseID, Grade FROM Enrollment WHERE Grade IS NOT NULL
ext      = EXTEND students WITH reported ON SuID = SuID COLLECT CourseID, Grade AS grades
target   = SELECT ext WHERE SuID = $student
others   = SELECT ext WHERE SuID <> $student
similar  = RECOMMEND others AGAINST target USING inv_euclidean(grades, grades) AGG max SCORE sim TOP 25
ratings  = TABLE Ratings
extsim   = EXTEND similar WITH ratings ON SuID = SuID COLLECT CourseID, Score AS ratings
courses  = TABLE Courses
scored   = RECOMMEND courses AGAINST extsim USING rating_of(CourseID, ratings) AGG avg SCORE score
enrolled = TABLE Enrollment
mine     = SELECT enrolled WHERE SuID = $student
fresh    = EXCEPT scored ON CourseID = CourseID FROM mine
top      = TOPK fresh BY score DESC LIMIT 10
RETURN top
)";
}

std::string MajorPopularDsl() {
  return R"(# best-rated courses among students of one major
scored = SQL SELECT r.CourseID AS CourseID, AVG(r.Score) AS score, COUNT(*) AS n FROM Ratings r JOIN Students s ON r.SuID = s.SuID WHERE s.Major = $major GROUP BY r.CourseID HAVING n >= 3
top    = TOPK scored BY score DESC LIMIT 10
RETURN top
)";
}

std::string RecommendMajorDsl() {
  return R"(# majors whose courses overlap the student's history (paper: recommended majors)
depts     = TABLE Departments
courses   = TABLE Courses
dept_ext  = EXTEND depts WITH courses ON DepID = DepID COLLECT CourseID AS dept_courses
students  = TABLE Students
enrolled  = TABLE Enrollment
stu_ext   = EXTEND students WITH enrolled ON SuID = SuID COLLECT CourseID AS taken
target    = SELECT stu_ext WHERE SuID = $student
ranked    = RECOMMEND dept_ext AGAINST target USING overlap(dept_courses, taken) AGG max SCORE score
top       = TOPK ranked BY score DESC LIMIT 5
RETURN top
)";
}

std::string BestQuarterDsl() {
  return R"(# quarters ranked by historical average grade in the course
by_term = SQL SELECT e.Term AS Term, AVG(e.Grade) AS avg_grade, COUNT(*) AS n FROM Enrollment e WHERE e.CourseID = $course GROUP BY e.Term
top     = TOPK by_term BY avg_grade DESC LIMIT 4
RETURN top
)";
}

Status RegisterDefaults(FlexRecsEngine& engine) {
  struct Entry {
    const char* name;
    std::string dsl;
  };
  const Entry entries[] = {
      {"related_courses", RelatedCoursesDsl()},
      {"user_cf", UserCfDsl()},
      {"weighted_user_cf", WeightedUserCfDsl()},
      {"grade_cf", GradeCfDsl()},
      {"major_popular", MajorPopularDsl()},
      {"recommend_major", RecommendMajorDsl()},
      {"best_quarter", BestQuarterDsl()},
  };
  for (const Entry& e : entries) {
    CR_ASSIGN_OR_RETURN(NodePtr wf, ParseWorkflow(e.dsl));
    CR_RETURN_IF_ERROR(engine.RegisterStrategy(e.name, std::move(wf)));
  }
  return Status::OK();
}

}  // namespace courserank::flexrecs::strategies
