#ifndef COURSERANK_CORE_WORKFLOW_H_
#define COURSERANK_CORE_WORKFLOW_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/source_span.h"
#include "query/expr.h"
#include "query/plan.h"
#include "query/relation.h"

namespace courserank::flexrecs {

using query::ExprPtr;
using query::Relation;

/// Node kinds of a FlexRecs workflow (paper §3.2, Fig. 5). The recommend
/// and extend operators are FlexRecs-specific; the rest are classical
/// relational operators that the compiler turns into SQL.
enum class NodeKind {
  kTable,      ///< base relation
  kSql,        ///< escape hatch: a raw SELECT statement
  kValues,     ///< inline literal relation
  kSelect,     ///< σ predicate
  kProject,    ///< π items
  kJoin,       ///< ⋈ condition
  kExtend,     ///< ε: nest related tuples into a LIST attribute
  kRecommend,  ///< ▷: rank input tuples against reference tuples
  kAntiJoin,   ///< input minus rows whose key appears in the source
  kTopK,       ///< order by one column, keep k
};

/// Score aggregation of the recommend operator over the reference set.
enum class RecommendAgg {
  kMax,          ///< best match ("most similar course")
  kAvg,          ///< mean over comparable references (Fig. 5(b): average of
                 ///< the ratings given by the similar students)
  kSum,
  kWeightedAvg,  ///< Σ w·v / Σ w with w from `weight_attr` of the reference
};

/// Configuration of one recommend operator.
struct RecommendSpec {
  std::string similarity;      ///< library function name
  std::string input_attr;      ///< compared attribute of the input tuple
  std::string reference_attr;  ///< compared attribute of the reference tuple
  RecommendAgg agg = RecommendAgg::kMax;
  std::string weight_attr;     ///< reference attr for kWeightedAvg
  std::string score_column = "score";
  size_t top_k = 0;            ///< 0 = keep all
  double min_score = -std::numeric_limits<double>::infinity();
};

struct WorkflowNode;
using NodePtr = std::unique_ptr<WorkflowNode>;

/// One workflow operator. A workflow is a tree of these, executed by
/// FlexRecsEngine after compilation.
struct WorkflowNode {
  NodeKind kind;

  // kTable
  std::string table;

  // kSql
  std::string sql;

  // kValues
  Relation values;

  // kSelect / kJoin condition
  ExprPtr predicate;

  // kProject
  std::vector<query::ProjectItem> items;

  // kExtend: child ⟵ collect from source
  ExprPtr child_key;
  ExprPtr source_key;
  std::vector<ExprPtr> collect;
  std::string column_name;

  // kRecommend
  RecommendSpec recommend;

  // kAntiJoin reuses child_key / source_key.

  // kTopK
  std::string order_column;
  bool descending = true;
  size_t k = 0;

  std::vector<NodePtr> children;

  /// Where this operator was defined in DSL text; invalid (line 0) for
  /// nodes built programmatically. The static analyzer attaches its
  /// diagnostics here.
  SourceSpan span;

  /// Deep copy.
  NodePtr Clone() const;

  /// Human-readable operator tree (EXPLAIN-style).
  std::string ToString(int indent = 0) const;
};

/// Fluent builder so strategies read like the paper's workflow figures:
///
///   Workflow::Table("Courses")
///       .Select("Year = 2008")
///       .Recommend(Workflow::Table("Courses").Select("Title = $title"),
///                  spec)
///
/// Builder misuse (a malformed expression string, an empty item list) is
/// recorded, not fatal: the chain keeps accepting calls and Build() returns
/// the first error as a Status. Library code never aborts.
class Workflow {
 public:
  static Workflow Table(std::string name);
  static Workflow Sql(std::string select_stmt);
  static Workflow Values(Relation rel);

  /// σ with a SQL expression string; a parse error is deferred to Build().
  Workflow Select(const std::string& predicate) &&;
  Workflow Select(ExprPtr predicate) &&;

  /// π: "expr AS name" items given as (expression text, name) pairs.
  Workflow Project(
      std::vector<std::pair<std::string, std::string>> items) &&;

  Workflow Join(Workflow right, const std::string& condition) &&;

  /// ε-extend: nest `collect` expressions (over `source` rows matching
  /// source_key = child_key) into a LIST column.
  Workflow Extend(Workflow source, const std::string& child_key,
                  const std::string& source_key,
                  std::vector<std::string> collect,
                  std::string column_name) &&;

  /// ▷ recommend against a reference workflow.
  Workflow Recommend(Workflow reference, RecommendSpec spec) &&;

  /// Removes rows whose child_key appears among source_key values.
  Workflow AntiJoin(Workflow source, const std::string& child_key,
                    const std::string& source_key) &&;

  Workflow TopK(const std::string& order_column, size_t k,
                bool descending = true) &&;

  /// Releases the built tree, or the first error recorded along the chain
  /// (e.g. an expression string that failed to parse).
  Result<NodePtr> Build() &&;

  /// First deferred error of the chain so far (OK when clean).
  const Status& status() const { return error_; }

 private:
  explicit Workflow(NodePtr node) : node_(std::move(node)) {}

  /// Parses `text`, recording a deferred error on failure (returns null).
  ExprPtr ParseOrDefer(const std::string& text, const char* what);
  /// Records `error` if it is the chain's first.
  void Defer(Status error);
  /// Merges a sub-builder's deferred error into this chain.
  void Absorb(const Workflow& other) { Defer(other.error_); }

  NodePtr node_;
  Status error_;
};

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_WORKFLOW_H_
