#include "core/workflow_parser.h"

#include <cctype>
#include <limits>
#include <map>

#include "common/strings.h"
#include "query/sql_parser.h"

namespace courserank::flexrecs {

namespace {

/// Word-level cursor over one logical statement line.
class LineCursor {
 public:
  explicit LineCursor(std::string line) : line_(std::move(line)) {}

  /// Next whitespace-delimited word; empty at end.
  std::string NextWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < line_.size() && !std::isspace(
               static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    return line_.substr(start, pos_ - start);
  }

  /// Peeks the next word without consuming.
  std::string PeekWord() {
    size_t save = pos_;
    std::string w = NextWord();
    pos_ = save;
    return w;
  }

  /// Everything up to the next occurrence of keyword `kw` (word-boundary,
  /// case-insensitive); consumes the keyword. If absent, returns the rest.
  std::string UntilKeyword(const std::string& kw, bool* found) {
    SkipSpace();
    size_t start = pos_;
    size_t i = pos_;
    *found = false;
    while (i < line_.size()) {
      // Candidate word start?
      if ((i == 0 ||
           std::isspace(static_cast<unsigned char>(line_[i - 1]))) &&
          i + kw.size() <= line_.size() &&
          EqualsIgnoreCase(std::string_view(line_).substr(i, kw.size()), kw) &&
          (i + kw.size() == line_.size() ||
           std::isspace(static_cast<unsigned char>(line_[i + kw.size()])))) {
        *found = true;
        std::string out(Trim(line_.substr(start, i - start)));
        pos_ = i + kw.size();
        return out;
      }
      ++i;
    }
    pos_ = line_.size();
    return std::string(Trim(line_.substr(start)));
  }

  /// Remaining text.
  std::string Rest() {
    SkipSpace();
    std::string out(Trim(line_.substr(pos_)));
    pos_ = line_.size();
    return out;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  std::string line_;
  size_t pos_ = 0;
};

/// Splits on top-level commas (ignoring commas inside parentheses).
std::vector<std::string> SplitTopLevel(const std::string& s, char sep) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    } else if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      --depth;
    }
  }
  return out;
}

class WorkflowParser {
 public:
  explicit WorkflowParser(ParseError* error) : error_(error) {}

  Result<NodePtr> Parse(const std::string& text) {
    // Assemble logical lines (continuation: a line that is not a new
    // statement extends the previous one), remembering the 1-based physical
    // line each statement starts on so nodes and errors carry spans.
    struct Statement {
      std::string text;
      int line_no;
    };
    std::vector<Statement> logical;
    int line_no = 0;
    for (const std::string& raw : Split(text, '\n')) {
      ++line_no;
      std::string line(Trim(raw));
      size_t hash = line.find('#');
      if (hash != std::string::npos) line = std::string(Trim(line.substr(0, hash)));
      if (line.empty()) continue;
      if (IsNewStatement(line) || logical.empty()) {
        logical.push_back({line, line_no});
      } else {
        logical.back().text += " " + line;
      }
    }

    NodePtr returned;
    for (const Statement& stmt : logical) {
      const std::string& line = stmt.text;
      cur_span_ = SourceSpan{stmt.line_no, 1,
                             static_cast<int>(line.size())};
      LineCursor cur(line);
      std::string first = cur.NextWord();
      if (EqualsIgnoreCase(first, "RETURN")) {
        std::string name = cur.NextWord();
        Result<NodePtr> ref = Ref(name);
        if (!ref.ok()) return Fail(ref.status());
        returned = std::move(ref).value();
        if (!cur.AtEnd()) {
          return Err(line, "trailing text after RETURN");
        }
        continue;
      }
      std::string eq = cur.NextWord();
      if (eq != "=") return Err(line, "expected '=' after identifier");
      std::string kind = ToUpper(cur.NextWord());
      Result<NodePtr> node = Status::OK();
      if (kind == "TABLE") {
        node = ParseTable(cur, line);
      } else if (kind == "SQL") {
        node = ParseSqlNode(cur, line);
      } else if (kind == "SELECT") {
        node = ParseSelect(cur, line);
      } else if (kind == "PROJECT") {
        node = ParseProject(cur, line);
      } else if (kind == "JOIN") {
        node = ParseJoin(cur, line);
      } else if (kind == "EXTEND") {
        node = ParseExtend(cur, line);
      } else if (kind == "RECOMMEND") {
        node = ParseRecommend(cur, line);
      } else if (kind == "EXCEPT") {
        node = ParseExcept(cur, line);
      } else if (kind == "TOPK") {
        node = ParseTopK(cur, line);
      } else {
        return Err(line, "unknown operator '" + kind + "'");
      }
      if (!node.ok()) return Fail(node.status());
      node.value()->span = cur_span_;
      defined_[ToLower(first)] = std::move(node).value();
    }
    if (returned == nullptr) {
      cur_span_ = SourceSpan{};  // whole-file problem, no single statement
      return Fail(Status::InvalidArgument("workflow has no RETURN statement"));
    }
    return returned;
  }

 private:
  static bool IsNewStatement(const std::string& line) {
    if (StartsWith(ToUpper(line), "RETURN ")) return true;
    // "<ident> = ..." — ident then '=' as its own word.
    size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_')) {
      ++i;
    }
    if (i == 0) return false;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    return i < line.size() && line[i] == '=';
  }

  Status Err(const std::string& line, const std::string& msg) {
    return Fail(Status::InvalidArgument("workflow parse error in '" + line +
                                        "': " + msg));
  }

  /// Records the first failure (with the current statement's span) into the
  /// caller-provided ParseError, then passes the status through.
  Status Fail(Status s) {
    if (error_ != nullptr && error_->message.empty()) {
      error_->span = cur_span_;
      error_->message = s.message();
    }
    return s;
  }

  /// Clones the named intermediate so it can be referenced repeatedly.
  Result<NodePtr> Ref(const std::string& name) const {
    auto it = defined_.find(ToLower(name));
    if (it == defined_.end()) {
      return Status::NotFound("undefined workflow node '" + name + "'");
    }
    return it->second->Clone();
  }

  Result<NodePtr> ParseTable(LineCursor& cur, const std::string& line) {
    std::string name = cur.NextWord();
    if (name.empty()) return Err(line, "TABLE needs a table name");
    return std::move(Workflow::Table(name)).Build();
  }

  Result<NodePtr> ParseSqlNode(LineCursor& cur, const std::string& line) {
    std::string sql = cur.Rest();
    if (sql.empty()) return Err(line, "SQL needs a statement");
    return std::move(Workflow::Sql(sql)).Build();
  }

  Result<NodePtr> ParseSelect(LineCursor& cur, const std::string& line) {
    std::string child = cur.NextWord();
    std::string where = ToUpper(cur.NextWord());
    if (where != "WHERE") return Err(line, "expected WHERE");
    CR_ASSIGN_OR_RETURN(ExprPtr pred, query::ParseExpression(cur.Rest()));
    CR_ASSIGN_OR_RETURN(NodePtr base, Ref(child));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kSelect;
    node->predicate = std::move(pred);
    node->children.push_back(std::move(base));
    return node;
  }

  Result<NodePtr> ParseProject(LineCursor& cur, const std::string& line) {
    std::string child = cur.NextWord();
    std::string to = ToUpper(cur.NextWord());
    if (to != "TO") return Err(line, "expected TO");
    CR_ASSIGN_OR_RETURN(NodePtr base, Ref(child));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kProject;
    for (const std::string& item : SplitTopLevel(cur.Rest(), ',')) {
      // "expr AS name" — find the last top-level " AS ".
      size_t as_pos = std::string::npos;
      int depth = 0;
      for (size_t i = 0; i + 4 <= item.size(); ++i) {
        if (item[i] == '(') ++depth;
        else if (item[i] == ')') --depth;
        else if (depth == 0 &&
                 EqualsIgnoreCase(std::string_view(item).substr(i, 4),
                                  " AS ")) {
          as_pos = i;
        }
      }
      std::string expr_text = item;
      std::string name;
      if (as_pos != std::string::npos) {
        expr_text = std::string(Trim(item.substr(0, as_pos)));
        name = std::string(Trim(item.substr(as_pos + 4)));
      } else {
        name = item;
      }
      CR_ASSIGN_OR_RETURN(ExprPtr e, query::ParseExpression(expr_text));
      node->items.push_back({std::move(e), name});
    }
    if (node->items.empty()) return Err(line, "PROJECT needs items");
    node->children.push_back(std::move(base));
    return node;
  }

  Result<NodePtr> ParseJoin(LineCursor& cur, const std::string& line) {
    std::string left = cur.NextWord();
    std::string with = ToUpper(cur.NextWord());
    if (with != "WITH") return Err(line, "expected WITH");
    std::string right = cur.NextWord();
    std::string on = ToUpper(cur.NextWord());
    if (on != "ON") return Err(line, "expected ON");
    CR_ASSIGN_OR_RETURN(ExprPtr pred, query::ParseExpression(cur.Rest()));
    CR_ASSIGN_OR_RETURN(NodePtr l, Ref(left));
    CR_ASSIGN_OR_RETURN(NodePtr r, Ref(right));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kJoin;
    node->predicate = std::move(pred);
    node->children.push_back(std::move(l));
    node->children.push_back(std::move(r));
    return node;
  }

  Result<NodePtr> ParseExtend(LineCursor& cur, const std::string& line) {
    std::string child = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "WITH") return Err(line, "expected WITH");
    std::string source = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "ON") return Err(line, "expected ON");
    bool found = false;
    LineCursor on_cur(cur.UntilKeyword("COLLECT", &found));
    if (!found) return Err(line, "expected COLLECT");
    // "<child_col> = <source_col>"
    std::string ck = on_cur.NextWord();
    if (on_cur.NextWord() != "=") return Err(line, "expected '=' in ON");
    std::string sk = on_cur.NextWord();
    bool as_found = false;
    std::string collect_text = cur.UntilKeyword("AS", &as_found);
    if (!as_found) return Err(line, "expected AS <column name>");
    std::string column = cur.NextWord();
    if (column.empty()) return Err(line, "AS needs a column name");

    CR_ASSIGN_OR_RETURN(NodePtr c, Ref(child));
    CR_ASSIGN_OR_RETURN(NodePtr s, Ref(source));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kExtend;
    CR_ASSIGN_OR_RETURN(node->child_key, query::ParseExpression(ck));
    CR_ASSIGN_OR_RETURN(node->source_key, query::ParseExpression(sk));
    for (const std::string& c_text : SplitTopLevel(collect_text, ',')) {
      CR_ASSIGN_OR_RETURN(ExprPtr e, query::ParseExpression(c_text));
      node->collect.push_back(std::move(e));
    }
    if (node->collect.empty()) return Err(line, "COLLECT needs expressions");
    node->column_name = column;
    node->children.push_back(std::move(c));
    node->children.push_back(std::move(s));
    return node;
  }

  Result<NodePtr> ParseRecommend(LineCursor& cur, const std::string& line) {
    std::string input = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "AGAINST") {
      return Err(line, "expected AGAINST");
    }
    std::string reference = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "USING") return Err(line, "expected USING");
    // fn(attr, attr) — may contain no spaces or some; read to ')'.
    std::string call = cur.NextWord();
    while (call.find(')') == std::string::npos) {
      std::string more = cur.NextWord();
      if (more.empty()) return Err(line, "unterminated USING call");
      call += " " + more;
    }
    size_t open = call.find('(');
    size_t close = call.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Err(line, "USING needs fn(input_attr, reference_attr)");
    }
    RecommendSpec spec;
    spec.similarity = std::string(Trim(call.substr(0, open)));
    std::vector<std::string> attrs =
        SplitTopLevel(call.substr(open + 1, close - open - 1), ',');
    if (attrs.size() != 2) {
      return Err(line, "USING needs exactly two attributes");
    }
    spec.input_attr = attrs[0];
    spec.reference_attr = attrs[1];

    while (!cur.AtEnd()) {
      std::string kw = ToUpper(cur.NextWord());
      if (kw == "AGG") {
        std::string agg = ToLower(cur.NextWord());
        if (agg == "max") {
          spec.agg = RecommendAgg::kMax;
        } else if (agg == "avg") {
          spec.agg = RecommendAgg::kAvg;
        } else if (agg == "sum") {
          spec.agg = RecommendAgg::kSum;
        } else if (agg == "weighted") {
          spec.agg = RecommendAgg::kWeightedAvg;
          spec.weight_attr = cur.NextWord();
          if (spec.weight_attr.empty()) {
            return Err(line, "AGG weighted needs a weight attribute");
          }
        } else {
          return Err(line, "unknown AGG '" + agg + "'");
        }
      } else if (kw == "SCORE") {
        spec.score_column = cur.NextWord();
      } else if (kw == "TOP") {
        spec.top_k = static_cast<size_t>(std::strtoul(
            cur.NextWord().c_str(), nullptr, 10));
        if (spec.top_k == 0) return Err(line, "TOP needs a positive integer");
      } else if (kw == "MIN") {
        spec.min_score = std::strtod(cur.NextWord().c_str(), nullptr);
      } else {
        return Err(line, "unknown RECOMMEND clause '" + kw + "'");
      }
    }

    CR_ASSIGN_OR_RETURN(NodePtr in, Ref(input));
    CR_ASSIGN_OR_RETURN(NodePtr ref, Ref(reference));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kRecommend;
    node->recommend = std::move(spec);
    node->children.push_back(std::move(in));
    node->children.push_back(std::move(ref));
    return node;
  }

  Result<NodePtr> ParseExcept(LineCursor& cur, const std::string& line) {
    std::string child = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "ON") return Err(line, "expected ON");
    std::string ck = cur.NextWord();
    if (cur.NextWord() != "=") return Err(line, "expected '=' in ON");
    std::string sk = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "FROM") return Err(line, "expected FROM");
    std::string source = cur.NextWord();

    CR_ASSIGN_OR_RETURN(NodePtr c, Ref(child));
    CR_ASSIGN_OR_RETURN(NodePtr s, Ref(source));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kAntiJoin;
    CR_ASSIGN_OR_RETURN(node->child_key, query::ParseExpression(ck));
    CR_ASSIGN_OR_RETURN(node->source_key, query::ParseExpression(sk));
    node->children.push_back(std::move(c));
    node->children.push_back(std::move(s));
    return node;
  }

  Result<NodePtr> ParseTopK(LineCursor& cur, const std::string& line) {
    std::string child = cur.NextWord();
    if (ToUpper(cur.NextWord()) != "BY") return Err(line, "expected BY");
    std::string col = cur.NextWord();
    bool descending = true;
    std::string next = ToUpper(cur.NextWord());
    if (next == "ASC") {
      descending = false;
      next = ToUpper(cur.NextWord());
    } else if (next == "DESC") {
      next = ToUpper(cur.NextWord());
    }
    if (next != "LIMIT") return Err(line, "expected LIMIT");
    size_t k = static_cast<size_t>(
        std::strtoul(cur.NextWord().c_str(), nullptr, 10));
    if (k == 0) return Err(line, "LIMIT needs a positive integer");

    CR_ASSIGN_OR_RETURN(NodePtr c, Ref(child));
    auto node = std::make_unique<WorkflowNode>();
    node->kind = NodeKind::kTopK;
    node->order_column = col;
    node->descending = descending;
    node->k = k;
    node->children.push_back(std::move(c));
    return node;
  }

  std::map<std::string, NodePtr> defined_;
  SourceSpan cur_span_;
  ParseError* error_ = nullptr;
};

/// Emits one statement per node, post-order, into `out`; returns the name
/// assigned to `node`.
class DslWriter {
 public:
  Result<std::string> Emit(const WorkflowNode& node) {
    std::vector<std::string> child_names;
    for (const NodePtr& child : node.children) {
      CR_ASSIGN_OR_RETURN(std::string name, Emit(*child));
      child_names.push_back(std::move(name));
    }
    std::string name = "n" + std::to_string(++counter_);
    switch (node.kind) {
      case NodeKind::kTable:
        out_ += name + " = TABLE " + node.table + "\n";
        break;
      case NodeKind::kSql:
        out_ += name + " = SQL " + node.sql + "\n";
        break;
      case NodeKind::kValues:
        return Status::Unimplemented(
            "inline Values nodes have no DSL spelling");
      case NodeKind::kSelect:
        out_ += name + " = SELECT " + child_names[0] + " WHERE " +
                node.predicate->ToString() + "\n";
        break;
      case NodeKind::kProject: {
        out_ += name + " = PROJECT " + child_names[0] + " TO ";
        for (size_t i = 0; i < node.items.size(); ++i) {
          if (i > 0) out_ += ", ";
          out_ += node.items[i].expr->ToString() + " AS " +
                  node.items[i].name;
        }
        out_ += "\n";
        break;
      }
      case NodeKind::kJoin:
        out_ += name + " = JOIN " + child_names[0] + " WITH " +
                child_names[1] + " ON " +
                (node.predicate ? node.predicate->ToString() : "TRUE") +
                "\n";
        break;
      case NodeKind::kExtend: {
        CR_ASSIGN_OR_RETURN(std::string ck,
                            ColumnName(*node.child_key, "extend child key"));
        CR_ASSIGN_OR_RETURN(std::string sk,
                            ColumnName(*node.source_key,
                                       "extend source key"));
        out_ += name + " = EXTEND " + child_names[0] + " WITH " +
                child_names[1] + " ON " + ck + " = " + sk + " COLLECT ";
        for (size_t i = 0; i < node.collect.size(); ++i) {
          if (i > 0) out_ += ", ";
          out_ += node.collect[i]->ToString();
        }
        out_ += " AS " + node.column_name + "\n";
        break;
      }
      case NodeKind::kRecommend: {
        const RecommendSpec& spec = node.recommend;
        out_ += name + " = RECOMMEND " + child_names[0] + " AGAINST " +
                child_names[1] + " USING " + spec.similarity + "(" +
                spec.input_attr + ", " + spec.reference_attr + ")";
        switch (spec.agg) {
          case RecommendAgg::kMax:
            out_ += " AGG max";
            break;
          case RecommendAgg::kAvg:
            out_ += " AGG avg";
            break;
          case RecommendAgg::kSum:
            out_ += " AGG sum";
            break;
          case RecommendAgg::kWeightedAvg:
            out_ += " AGG weighted " + spec.weight_attr;
            break;
        }
        out_ += " SCORE " + spec.score_column;
        if (spec.top_k > 0) out_ += " TOP " + std::to_string(spec.top_k);
        if (spec.min_score >
            -std::numeric_limits<double>::infinity()) {
          out_ += " MIN " + FormatDouble(spec.min_score);
        }
        out_ += "\n";
        break;
      }
      case NodeKind::kAntiJoin: {
        CR_ASSIGN_OR_RETURN(std::string ck,
                            ColumnName(*node.child_key, "except child key"));
        CR_ASSIGN_OR_RETURN(std::string sk,
                            ColumnName(*node.source_key,
                                       "except source key"));
        out_ += name + " = EXCEPT " + child_names[0] + " ON " + ck + " = " +
                sk + " FROM " + child_names[1] + "\n";
        break;
      }
      case NodeKind::kTopK:
        out_ += name + " = TOPK " + child_names[0] + " BY " +
                node.order_column + (node.descending ? " DESC" : " ASC") +
                " LIMIT " + std::to_string(node.k) + "\n";
        break;
    }
    return name;
  }

  std::string Finish(const std::string& root_name) {
    return out_ + "RETURN " + root_name + "\n";
  }

 private:
  /// Extend/Except keys must be bare column references in the DSL.
  Result<std::string> ColumnName(const query::Expr& expr, const char* what) {
    std::string text = expr.ToString();
    for (char c : text) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '.') {
        return Status::Unimplemented(std::string(what) +
                                     " is not a bare column: " + text);
      }
    }
    return text;
  }

  std::string out_;
  int counter_ = 0;
};

}  // namespace

Result<NodePtr> ParseWorkflow(const std::string& text, ParseError* error) {
  WorkflowParser parser(error);
  return parser.Parse(text);
}

Result<std::string> WorkflowToDsl(const WorkflowNode& root) {
  DslWriter writer;
  CR_ASSIGN_OR_RETURN(std::string name, writer.Emit(root));
  std::string text = writer.Finish(name);
  // Guarantee the output is readable by our own parser.
  CR_RETURN_IF_ERROR(ParseWorkflow(text).status());
  return text;
}

}  // namespace courserank::flexrecs
