#ifndef COURSERANK_CORE_WORKFLOW_PARSER_H_
#define COURSERANK_CORE_WORKFLOW_PARSER_H_

#include <string>

#include "common/source_span.h"
#include "common/status.h"
#include "core/workflow.h"

namespace courserank::flexrecs {

/// Where and why parsing failed. `span` covers the offending statement
/// (line numbers are 1-based over the input text; a whole-file problem such
/// as a missing RETURN leaves it invalid).
struct ParseError {
  SourceSpan span;
  std::string message;
};

/// Parses the textual FlexRecs workflow DSL — the concrete syntax site
/// administrators use to "quickly define recommendation strategies" (paper
/// §2.1) without recompiling the site. One statement per line; '#' starts a
/// comment. Identifiers name intermediate relations; referencing one clones
/// its subtree, so a node may feed several consumers.
///
///   courses  = TABLE Courses
///   recent   = SELECT courses WHERE Year = 2008
///   target   = SELECT courses WHERE Title = $title
///   out      = RECOMMEND recent AGAINST target
///              USING token_jaccard(Title, Title) AGG max SCORE score TOP 10
///   RETURN out
///
/// Statement forms:
///   x = TABLE <name>
///   x = SQL <select statement...>
///   x = SELECT <node> WHERE <expr>
///   x = PROJECT <node> TO <expr> AS <name>[, ...]
///   x = JOIN <node> WITH <node> ON <expr>
///   x = EXTEND <node> WITH <node> ON <col> = <col>
///       COLLECT <expr>[, <expr>] AS <name>
///   x = RECOMMEND <node> AGAINST <node> USING <fn>(<attr>, <attr>)
///       [AGG max|avg|sum|weighted <weight_attr>] [SCORE <name>]
///       [TOP <k>] [MIN <float>]
///   x = EXCEPT <node> ON <col> = <col> FROM <node>
///   x = TOPK <node> BY <col> [ASC|DESC] LIMIT <k>
///   RETURN <node>
///
/// A RECOMMEND line may wrap onto following indented lines (a line that
/// does not match `name = ...` or `RETURN ...` continues the previous one).
///
/// Every parsed node carries the SourceSpan of its defining statement, so
/// the static analyzer can point diagnostics back at the DSL text. On
/// failure, `error` (when non-null) receives the offending statement's span
/// and message in addition to the returned Status.
Result<NodePtr> ParseWorkflow(const std::string& text,
                              ParseError* error = nullptr);

/// Serializes a workflow tree back to DSL text (intermediate nodes are
/// named n1, n2, ...). The result is verified by re-parsing before being
/// returned, so a successful call is guaranteed to round-trip. Fails with
/// Unimplemented for trees that have no DSL spelling (inline Values nodes,
/// non-column extend keys).
Result<std::string> WorkflowToDsl(const WorkflowNode& root);

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_WORKFLOW_PARSER_H_
