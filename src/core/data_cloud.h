#ifndef COURSERANK_CORE_DATA_CLOUD_H_
#define COURSERANK_CORE_DATA_CLOUD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "search/inverted_index.h"
#include "search/searcher.h"

namespace courserank::cloud {

using search::DocId;
using search::InvertedIndex;
using search::ResultSet;

/// How cloud terms are scored within the current result set (paper §3.1:
/// "the most significant or representative terms within the currently found
/// set of entities").
enum class TermScoring {
  /// Saturated result-frequency weighted by corpus idf — the default
  /// "significance" score: terms common in the results but rare overall.
  kTfIdf,
  /// Raw term frequency within the results.
  kTf,
  /// Number of result documents containing the term.
  kPopularity,
};

struct CloudOptions {
  size_t max_terms = 30;
  TermScoring scoring = TermScoring::kTfIdf;
  bool include_bigrams = true;
  /// Multiplier applied to bigram scores — two-word concepts ("latin
  /// american") are more informative cloud entries than their parts.
  double bigram_boost = 1.5;
  /// Terms must appear in at least this many result documents.
  size_t min_doc_count = 2;
  /// Number of font-size buckets (1 = smallest .. font_buckets = largest).
  int font_buckets = 5;
  /// Suppress a unigram when a selected bigram contains it and covers
  /// almost the same documents.
  bool dedup_subsumed_unigrams = true;
};

/// One rendered cloud term.
struct CloudTerm {
  std::string term;     ///< index term (stems), e.g. "latin american"
  std::string display;  ///< surface form, e.g. "latin american"
  double score = 0.0;
  size_t doc_count = 0;   ///< result documents containing the term
  uint64_t total_tf = 0;  ///< occurrences within the result set
  int font_bucket = 1;
  bool is_phrase = false;
};

/// The data cloud for one result set. Terms are ordered by descending
/// score; `ToString` renders them alphabetically with size markers the way
/// a tag cloud displays them.
struct DataCloud {
  std::vector<CloudTerm> terms;

  bool Contains(const std::string& display_or_term) const;
  std::string ToString() const;
};

/// Builds data clouds from the precomputed per-document term vectors of an
/// InvertedIndex — no result document is re-tokenized at query time
/// (DESIGN.md E5 ablation quantifies this against re-analysis).
class CloudBuilder {
 public:
  explicit CloudBuilder(const InvertedIndex* index, CloudOptions options = {})
      : index_(index), options_(options) {}

  /// Cloud over the hits of `results`; the result set's own query terms
  /// (and bigrams made only of them) are excluded.
  DataCloud Build(const ResultSet& results) const;

  /// Reference implementation that re-analyzes every result document's text
  /// instead of using precomputed vectors. Slower; exists for the E5
  /// ablation and as a cross-check oracle in tests.
  DataCloud BuildByReanalysis(const ResultSet& results) const;

  const CloudOptions& options() const { return options_; }

 private:
  /// Accumulated statistics for one candidate term over the result set.
  struct TermAgg {
    uint64_t total_tf = 0;
    size_t doc_count = 0;
    double sum_log_tf = 0.0;  ///< Σ_docs (1 + ln tf_d)
  };
  using AggMap = std::unordered_map<std::string, TermAgg>;

  DataCloud Assemble(const AggMap& unigrams, const AggMap& bigrams,
                     const ResultSet& results) const;

  const InvertedIndex* index_;
  CloudOptions options_;
};

}  // namespace courserank::cloud

#endif  // COURSERANK_CORE_DATA_CLOUD_H_
