#ifndef COURSERANK_CORE_DATA_CLOUD_H_
#define COURSERANK_CORE_DATA_CLOUD_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "search/inverted_index.h"
#include "search/query_cache.h"
#include "search/searcher.h"

namespace courserank::cloud {

using search::DocId;
using search::InvertedIndex;
using search::ResultSet;
using search::TermId;

/// How cloud terms are scored within the current result set (paper §3.1:
/// "the most significant or representative terms within the currently found
/// set of entities").
enum class TermScoring {
  /// Saturated result-frequency weighted by corpus idf — the default
  /// "significance" score: terms common in the results but rare overall.
  kTfIdf,
  /// Raw term frequency within the results.
  kTf,
  /// Number of result documents containing the term.
  kPopularity,
};

struct CloudOptions {
  size_t max_terms = 30;
  TermScoring scoring = TermScoring::kTfIdf;
  bool include_bigrams = true;
  /// Multiplier applied to bigram scores — two-word concepts ("latin
  /// american") are more informative cloud entries than their parts.
  double bigram_boost = 1.5;
  /// Terms must appear in at least this many result documents.
  size_t min_doc_count = 2;
  /// Number of font-size buckets (1 = smallest .. font_buckets = largest).
  int font_buckets = 5;
  /// Suppress a unigram when a selected bigram contains it and covers
  /// almost the same documents.
  bool dedup_subsumed_unigrams = true;
};

/// One rendered cloud term.
struct CloudTerm {
  std::string term;     ///< index term (stems), e.g. "latin american"
  std::string display;  ///< surface form, e.g. "latin american"
  double score = 0.0;
  size_t doc_count = 0;   ///< result documents containing the term
  uint64_t total_tf = 0;  ///< occurrences within the result set
  int font_bucket = 1;
  bool is_phrase = false;
};

/// The data cloud for one result set. Terms are ordered by descending
/// score; `ToString` renders them alphabetically with size markers the way
/// a tag cloud displays them.
struct DataCloud {
  std::vector<CloudTerm> terms;

  bool Contains(const std::string& display_or_term) const;
  std::string ToString() const;
};

/// Builds data clouds from the precomputed per-document term vectors of an
/// InvertedIndex — no result document is re-tokenized at query time
/// (DESIGN.md E5 ablation quantifies this against re-analysis).
///
/// Aggregation runs over dense TermId-indexed accumulators (no per-doc
/// hash maps on the hot path) that are reused across builds as scratch
/// buffers. Large result sets are split into a fixed number of shards —
/// a function of the hit count only, never of the worker count — whose
/// partials are accumulated on the thread pool and merged in shard order,
/// so pooled and single-threaded builds are byte-identical.
class CloudBuilder {
 public:
  explicit CloudBuilder(const InvertedIndex* index, CloudOptions options = {},
                        ThreadPool* pool = &SharedThreadPool())
      : index_(index), options_(options), pool_(pool) {}

  /// Cloud over the hits of `results`; the result set's own query terms
  /// (and bigrams made only of them) are excluded.
  DataCloud Build(const ResultSet& results) const;

  /// Reference implementation that re-analyzes every result document's text
  /// instead of using precomputed vectors. Slower; exists for the E5
  /// ablation and as a cross-check oracle in tests.
  DataCloud BuildByReanalysis(const ResultSet& results) const;

  const CloudOptions& options() const { return options_; }

 private:
  /// Accumulated statistics for one candidate term over the result set.
  struct TermAgg {
    uint64_t total_tf = 0;
    uint32_t doc_count = 0;
    double sum_log_tf = 0.0;  ///< Σ_docs (1 + ln tf_d)
  };
  using AggMap = std::unordered_map<std::string, TermAgg>;

  /// Dense TermId-indexed scratch accumulator. Touched-term lists make
  /// clearing O(touched), not O(dictionary), so buffers amortize across
  /// builds.
  struct Accumulator {
    std::vector<TermAgg> agg;
    std::vector<TermId> touched_unigrams;
    std::vector<TermId> touched_bigrams;

    void EnsureSize(size_t num_terms);
    void Clear();
  };

  /// Takes a scratch accumulator from the pool (or makes one), sized to
  /// the current dictionary and cleared.
  std::unique_ptr<Accumulator> TakeScratch() const;
  void ReturnScratch(std::unique_ptr<Accumulator> acc) const;

  /// Accumulates hits [begin, end) of `results` into `acc`.
  void AccumulateRange(const ResultSet& results, size_t begin, size_t end,
                       Accumulator* acc) const;
  /// Adds `shard`'s partials into `main`, preserving shard order
  /// determinism.
  static void MergeInto(const Accumulator& shard, Accumulator* main);

  DataCloud AssembleDense(const Accumulator& acc,
                          const ResultSet& results) const;
  DataCloud Assemble(const AggMap& unigrams, const AggMap& bigrams,
                     const ResultSet& results) const;
  /// Shared tail: score-sort, subsumption dedup, top-k, font buckets.
  DataCloud SelectTopTerms(std::vector<CloudTerm> candidates) const;

  double ScoreOf(const TermAgg& agg, double idf) const;

  const InvertedIndex* index_;
  CloudOptions options_;
  ThreadPool* pool_;

  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<Accumulator>> scratch_;
};

/// A CloudBuilder with an epoch-validated cloud cache in front, keyed by
/// the result set's term set + cloud options. Sound because the searcher
/// is deterministic: at a given index epoch, one term set has exactly one
/// result list and therefore one cloud.
class CachingCloudBuilder {
 public:
  explicit CachingCloudBuilder(const InvertedIndex* index,
                               CloudOptions options = {},
                               size_t capacity = 128,
                               ThreadPool* pool = &SharedThreadPool())
      : builder_(index, options, pool),
        index_(index),
        cache_(capacity, "cr_cloud_cache") {}

  std::shared_ptr<const DataCloud> Build(const ResultSet& results) const;

  const CloudBuilder& builder() const { return builder_; }
  uint64_t cache_hits() const { return cache_.hits(); }
  uint64_t cache_misses() const { return cache_.misses(); }
  uint64_t cache_evictions() const { return cache_.evictions(); }
  uint64_t cache_stale_drops() const { return cache_.stale_drops(); }

 private:
  std::string CloudKey(const ResultSet& results) const;

  CloudBuilder builder_;
  const InvertedIndex* index_;
  mutable search::EpochLru<DataCloud> cache_;
};

}  // namespace courserank::cloud

#endif  // COURSERANK_CORE_DATA_CLOUD_H_
