#ifndef COURSERANK_CORE_WORKFLOW_OPTIMIZER_H_
#define COURSERANK_CORE_WORKFLOW_OPTIMIZER_H_

#include <string>

#include "common/status.h"
#include "core/workflow.h"

namespace courserank::flexrecs {

/// Rule-based rewrites addressing the paper's §3.2 question "How can we
/// optimize the execution of workflows?". All rules are semantics-
/// preserving:
///
///  1. TopK-into-Recommend fusion — `TopK(score DESC, k)` directly above a
///     Recommend producing that score column folds into the operator's own
///     `top_k`, skipping a re-sort of an already-sorted relation.
///  2. Select-below-Recommend pushdown — a Select above a Recommend whose
///     predicate does not reference the score column moves below the
///     operator, shrinking the O(|input| × |reference|) similarity loop
///     (and often merging into the compiled SQL of the input subtree).
///  3. Select-Select fusion — adjacent Selects AND-merge, giving the SQL
///     compiler one conjunctive WHERE.
///  4. Select-below-Extend pushdown — a Select above an Extend whose
///     predicate does not reference the extend's collected list column
///     moves below the operator: ε only appends a column per child row, so
///     filtering first is equivalent. This exposes Select-over-Table
///     subtrees to the SQL compiler, whose WHERE the planner then pushes
///     into the table scan (scan pushdown, DESIGN.md §11).
///  5. TopK-below-Extend pushdown — a TopK ordering on a column other than
///     the extend's collected list column moves below the operator: ε is
///     1:1 and order-preserving and the TopK tiebreak is the row index, so
///     cutting first selects the same rows byte-identically while the
///     extend builds groups for only k rows.
///
/// Returns the rewritten tree and (optionally) a human-readable trace of
/// the rules that fired.
NodePtr OptimizeWorkflow(NodePtr root, std::string* trace = nullptr);

/// Number of rewrite rules applied on the last pass (exposed via trace in
/// normal use; handy for tests).
struct OptimizerStats {
  int topk_fused = 0;
  int selects_pushed = 0;
  int selects_merged = 0;
  int selects_pushed_below_extend = 0;
  int topk_pushed_below_extend = 0;
};

NodePtr OptimizeWorkflow(NodePtr root, OptimizerStats* stats,
                         std::string* trace);

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_WORKFLOW_OPTIMIZER_H_
