#include "core/workflow.h"

#include "common/logging.h"
#include "query/sql_parser.h"

namespace courserank::flexrecs {

namespace {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTable:
      return "Table";
    case NodeKind::kSql:
      return "Sql";
    case NodeKind::kValues:
      return "Values";
    case NodeKind::kSelect:
      return "Select";
    case NodeKind::kProject:
      return "Project";
    case NodeKind::kJoin:
      return "Join";
    case NodeKind::kExtend:
      return "Extend";
    case NodeKind::kRecommend:
      return "Recommend";
    case NodeKind::kAntiJoin:
      return "AntiJoin";
    case NodeKind::kTopK:
      return "TopK";
  }
  return "?";
}

const char* AggName(RecommendAgg agg) {
  switch (agg) {
    case RecommendAgg::kMax:
      return "max";
    case RecommendAgg::kAvg:
      return "avg";
    case RecommendAgg::kSum:
      return "sum";
    case RecommendAgg::kWeightedAvg:
      return "weighted_avg";
  }
  return "?";
}

}  // namespace

ExprPtr MustParseExpr(const std::string& text) {
  auto parsed = query::ParseExpression(text);
  if (!parsed.ok()) {
    CR_LOG(ERROR, "workflow expression error: %s",
           parsed.status().ToString().c_str());
  }
  CR_CHECK(parsed.ok());
  return std::move(parsed).value();
}

NodePtr WorkflowNode::Clone() const {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = kind;
  node->table = table;
  node->sql = sql;
  node->values = values;
  node->predicate = predicate ? predicate->Clone() : nullptr;
  for (const auto& item : items) {
    node->items.push_back({item.expr->Clone(), item.name});
  }
  node->child_key = child_key ? child_key->Clone() : nullptr;
  node->source_key = source_key ? source_key->Clone() : nullptr;
  for (const auto& c : collect) node->collect.push_back(c->Clone());
  node->column_name = column_name;
  node->recommend = recommend;
  node->order_column = order_column;
  node->descending = descending;
  node->k = k;
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

std::string WorkflowNode::ToString(int indent) const {
  std::string pad(2 * indent, ' ');
  std::string out = pad + NodeKindName(kind);
  switch (kind) {
    case NodeKind::kTable:
      out += "(" + table + ")";
      break;
    case NodeKind::kSql:
      out += "(" + sql + ")";
      break;
    case NodeKind::kValues:
      out += "(" + std::to_string(values.rows.size()) + " rows)";
      break;
    case NodeKind::kSelect:
      out += "(" + predicate->ToString() + ")";
      break;
    case NodeKind::kProject: {
      out += "(";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].expr->ToString() + " AS " + items[i].name;
      }
      out += ")";
      break;
    }
    case NodeKind::kJoin:
      out += "(" + (predicate ? predicate->ToString() : "true") + ")";
      break;
    case NodeKind::kExtend:
      out += "(" + column_name + " = collect where " +
             source_key->ToString() + " = " + child_key->ToString() + ")";
      break;
    case NodeKind::kRecommend:
      out += "(" + recommend.similarity + "(" + recommend.input_attr + ", " +
             recommend.reference_attr + "), agg=" + AggName(recommend.agg);
      if (recommend.top_k > 0) out += ", top=" + std::to_string(recommend.top_k);
      out += " -> " + recommend.score_column + ")";
      break;
    case NodeKind::kAntiJoin:
      out += "(" + child_key->ToString() + " NOT IN source." +
             source_key->ToString() + ")";
      break;
    case NodeKind::kTopK:
      out += "(" + order_column + (descending ? " DESC" : " ASC") +
             ", k=" + std::to_string(k) + ")";
      break;
  }
  out += "\n";
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

Workflow Workflow::Table(std::string name) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kTable;
  node->table = std::move(name);
  return Workflow(std::move(node));
}

Workflow Workflow::Sql(std::string select_stmt) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kSql;
  node->sql = std::move(select_stmt);
  return Workflow(std::move(node));
}

Workflow Workflow::Values(Relation rel) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kValues;
  node->values = std::move(rel);
  return Workflow(std::move(node));
}

Workflow Workflow::Select(const std::string& predicate) && {
  return std::move(*this).Select(MustParseExpr(predicate));
}

Workflow Workflow::Select(ExprPtr predicate) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kSelect;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(node_));
  return Workflow(std::move(node));
}

Workflow Workflow::Project(
    std::vector<std::pair<std::string, std::string>> items) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kProject;
  for (auto& [expr_text, name] : items) {
    node->items.push_back({MustParseExpr(expr_text), std::move(name)});
  }
  node->children.push_back(std::move(node_));
  return Workflow(std::move(node));
}

Workflow Workflow::Join(Workflow right, const std::string& condition) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kJoin;
  node->predicate = MustParseExpr(condition);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(right.node_));
  return Workflow(std::move(node));
}

Workflow Workflow::Extend(Workflow source, const std::string& child_key,
                          const std::string& source_key,
                          std::vector<std::string> collect,
                          std::string column_name) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kExtend;
  node->child_key = MustParseExpr(child_key);
  node->source_key = MustParseExpr(source_key);
  for (const std::string& c : collect) {
    node->collect.push_back(MustParseExpr(c));
  }
  node->column_name = std::move(column_name);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(source.node_));
  return Workflow(std::move(node));
}

Workflow Workflow::Recommend(Workflow reference, RecommendSpec spec) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kRecommend;
  node->recommend = std::move(spec);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(reference.node_));
  return Workflow(std::move(node));
}

Workflow Workflow::AntiJoin(Workflow source, const std::string& child_key,
                            const std::string& source_key) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kAntiJoin;
  node->child_key = MustParseExpr(child_key);
  node->source_key = MustParseExpr(source_key);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(source.node_));
  return Workflow(std::move(node));
}

Workflow Workflow::TopK(const std::string& order_column, size_t k,
                        bool descending) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kTopK;
  node->order_column = order_column;
  node->k = k;
  node->descending = descending;
  node->children.push_back(std::move(node_));
  return Workflow(std::move(node));
}

NodePtr Workflow::Build() && { return std::move(node_); }

}  // namespace courserank::flexrecs
