#include "core/workflow.h"

#include "query/sql_parser.h"

namespace courserank::flexrecs {

namespace {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTable:
      return "Table";
    case NodeKind::kSql:
      return "Sql";
    case NodeKind::kValues:
      return "Values";
    case NodeKind::kSelect:
      return "Select";
    case NodeKind::kProject:
      return "Project";
    case NodeKind::kJoin:
      return "Join";
    case NodeKind::kExtend:
      return "Extend";
    case NodeKind::kRecommend:
      return "Recommend";
    case NodeKind::kAntiJoin:
      return "AntiJoin";
    case NodeKind::kTopK:
      return "TopK";
  }
  return "?";
}

const char* AggName(RecommendAgg agg) {
  switch (agg) {
    case RecommendAgg::kMax:
      return "max";
    case RecommendAgg::kAvg:
      return "avg";
    case RecommendAgg::kSum:
      return "sum";
    case RecommendAgg::kWeightedAvg:
      return "weighted_avg";
  }
  return "?";
}

}  // namespace

ExprPtr Workflow::ParseOrDefer(const std::string& text, const char* what) {
  auto parsed = query::ParseExpression(text);
  if (!parsed.ok()) {
    Defer(Status::InvalidArgument(std::string(what) + " \"" + text +
                                  "\": " + parsed.status().message()));
    return nullptr;
  }
  return std::move(parsed).value();
}

void Workflow::Defer(Status error) {
  if (error_.ok() && !error.ok()) error_ = std::move(error);
}

NodePtr WorkflowNode::Clone() const {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = kind;
  node->table = table;
  node->sql = sql;
  node->values = values;
  node->predicate = predicate ? predicate->Clone() : nullptr;
  for (const auto& item : items) {
    node->items.push_back({item.expr->Clone(), item.name});
  }
  node->child_key = child_key ? child_key->Clone() : nullptr;
  node->source_key = source_key ? source_key->Clone() : nullptr;
  for (const auto& c : collect) node->collect.push_back(c->Clone());
  node->column_name = column_name;
  node->recommend = recommend;
  node->order_column = order_column;
  node->descending = descending;
  node->k = k;
  node->span = span;
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

std::string WorkflowNode::ToString(int indent) const {
  std::string pad(2 * indent, ' ');
  std::string out = pad + NodeKindName(kind);
  switch (kind) {
    case NodeKind::kTable:
      out += "(" + table + ")";
      break;
    case NodeKind::kSql:
      out += "(" + sql + ")";
      break;
    case NodeKind::kValues:
      out += "(" + std::to_string(values.rows.size()) + " rows)";
      break;
    case NodeKind::kSelect:
      out += "(" + predicate->ToString() + ")";
      break;
    case NodeKind::kProject: {
      out += "(";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].expr->ToString() + " AS " + items[i].name;
      }
      out += ")";
      break;
    }
    case NodeKind::kJoin:
      out += "(" + (predicate ? predicate->ToString() : "true") + ")";
      break;
    case NodeKind::kExtend:
      out += "(" + column_name + " = collect where " +
             source_key->ToString() + " = " + child_key->ToString() + ")";
      break;
    case NodeKind::kRecommend:
      out += "(" + recommend.similarity + "(" + recommend.input_attr + ", " +
             recommend.reference_attr + "), agg=" + AggName(recommend.agg);
      if (recommend.top_k > 0) out += ", top=" + std::to_string(recommend.top_k);
      out += " -> " + recommend.score_column + ")";
      break;
    case NodeKind::kAntiJoin:
      out += "(" + child_key->ToString() + " NOT IN source." +
             source_key->ToString() + ")";
      break;
    case NodeKind::kTopK:
      out += "(" + order_column + (descending ? " DESC" : " ASC") +
             ", k=" + std::to_string(k) + ")";
      break;
  }
  out += "\n";
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

Workflow Workflow::Table(std::string name) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kTable;
  node->table = std::move(name);
  return Workflow(std::move(node));
}

Workflow Workflow::Sql(std::string select_stmt) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kSql;
  node->sql = std::move(select_stmt);
  return Workflow(std::move(node));
}

Workflow Workflow::Values(Relation rel) {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kValues;
  node->values = std::move(rel);
  return Workflow(std::move(node));
}

Workflow Workflow::Select(const std::string& predicate) && {
  ExprPtr parsed = ParseOrDefer(predicate, "σ predicate");
  return std::move(*this).Select(std::move(parsed));
}

Workflow Workflow::Select(ExprPtr predicate) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kSelect;
  if (!predicate) Defer(Status::InvalidArgument("σ: missing predicate"));
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::Project(
    std::vector<std::pair<std::string, std::string>> items) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kProject;
  if (items.empty()) Defer(Status::InvalidArgument("π: empty item list"));
  for (auto& [expr_text, name] : items) {
    ExprPtr expr = ParseOrDefer(expr_text, "π item");
    if (expr) node->items.push_back({std::move(expr), std::move(name)});
  }
  node->children.push_back(std::move(node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::Join(Workflow right, const std::string& condition) && {
  Absorb(right);
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kJoin;
  node->predicate = ParseOrDefer(condition, "⋈ condition");
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(right.node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::Extend(Workflow source, const std::string& child_key,
                          const std::string& source_key,
                          std::vector<std::string> collect,
                          std::string column_name) && {
  Absorb(source);
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kExtend;
  node->child_key = ParseOrDefer(child_key, "ε child key");
  node->source_key = ParseOrDefer(source_key, "ε source key");
  if (collect.empty()) Defer(Status::InvalidArgument("ε: empty collect list"));
  for (const std::string& c : collect) {
    ExprPtr expr = ParseOrDefer(c, "ε collect item");
    if (expr) node->collect.push_back(std::move(expr));
  }
  node->column_name = std::move(column_name);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(source.node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::Recommend(Workflow reference, RecommendSpec spec) && {
  Absorb(reference);
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kRecommend;
  node->recommend = std::move(spec);
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(reference.node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::AntiJoin(Workflow source, const std::string& child_key,
                            const std::string& source_key) && {
  Absorb(source);
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kAntiJoin;
  node->child_key = ParseOrDefer(child_key, "anti-join child key");
  node->source_key = ParseOrDefer(source_key, "anti-join source key");
  node->children.push_back(std::move(node_));
  node->children.push_back(std::move(source.node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Workflow Workflow::TopK(const std::string& order_column, size_t k,
                        bool descending) && {
  auto node = std::make_unique<WorkflowNode>();
  node->kind = NodeKind::kTopK;
  node->order_column = order_column;
  node->k = k;
  node->descending = descending;
  node->children.push_back(std::move(node_));
  Workflow out(std::move(node));
  out.error_ = std::move(error_);
  return out;
}

Result<NodePtr> Workflow::Build() && {
  if (!error_.ok()) return error_;
  return std::move(node_);
}

}  // namespace courserank::flexrecs
