#ifndef COURSERANK_ANALYSIS_PLAN_PROPERTIES_H_
#define COURSERANK_ANALYSIS_PLAN_PROPERTIES_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "query/plan.h"
#include "storage/schema.h"

namespace courserank::analysis {

/// Sentinel for "no static bound" — compares greater than every real count
/// and is absorbing under the saturating arithmetic below.
inline constexpr size_t kUnboundedCard = static_cast<size_t>(-1);

/// `a * b` saturating at kUnboundedCard (join fan-out bounds).
size_t SaturatingMul(size_t a, size_t b);

/// One position of an inferred sort order.
struct SortProp {
  std::string column;
  bool descending = false;
};

/// Everything the abstract interpretation derives about one operator's
/// output beyond its schema (DESIGN.md §15). All facts are SOUND
/// (guaranteed by the runtime, asserted by ExecOptions::check_static_claims)
/// rather than estimates: an operator the analyzer cannot bound keeps the
/// unbounded / empty defaults, never a guess.
struct PlanProperties {
  /// Output row count is always within [card_min, card_max].
  size_t card_min = 0;
  size_t card_max = kUnboundedCard;
  /// Functional-dependency keys: each inner vector is a set of output
  /// columns no two rows agree on (base-table unique indexes, GROUP BY
  /// columns, DISTINCT output). Survives row-subset operators.
  std::vector<std::vector<std::string>> keys;
  /// Output rows are lexicographically ordered by these columns (empty =
  /// no guarantee).
  std::vector<SortProp> sort_order;
  /// Columns that never hold NULL at runtime. Deliberately narrower than
  /// the schema's nullable flags: only facts the executor enforces
  /// (NOT NULL base columns, ε-lists, recommend scores, non-NULL literals)
  /// are claimed, so the runtime checker never false-positives.
  std::vector<std::string> non_null;
  /// String columns still backed by a single base table's dictionary ids —
  /// comparisons on them may run on ids instead of bytes. Computed strings
  /// (concats, aggregates) are never safe.
  std::vector<std::string> dict_id_safe;
  /// This node is part of a fusable σ/π/ε chain over one leaf — the
  /// compilation tier's unit of fusion (ROADMAP codegen item).
  bool fusion_eligible = false;

  bool bounded() const { return card_max != kUnboundedCard; }

  /// "{card=0..5 sort=(score desc) key=(SuID) nonnull=(score)
  ///   dict=(Title) fusable}"; unclaimed dimensions are omitted.
  std::string ToString() const;

  /// The subset of these properties the executor can re-check per relation.
  query::StaticClaims ToStaticClaims() const;
};

/// One row of the per-node property table rendered by
/// `courserank_lint --properties` and EXPLAIN STATIC.
struct NodeProperties {
  int depth = 0;           ///< tree depth of the node (root = 0)
  std::string label;       ///< first line of the operator's ToString
  std::optional<storage::Schema> schema;
  PlanProperties props;
};

/// Indented tree rendering: one line per node, label then properties.
std::string RenderPropertiesTable(const std::vector<NodeProperties>& nodes);

/// JSON array rendering, one object per node:
/// [{"depth":0,"node":"...","schema":"...","card_min":0,"card_max":5,...}]
std::string PropertiesToJson(const std::vector<NodeProperties>& nodes);

}  // namespace courserank::analysis

#endif  // COURSERANK_ANALYSIS_PLAN_PROPERTIES_H_
