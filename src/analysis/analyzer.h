#ifndef COURSERANK_ANALYSIS_ANALYZER_H_
#define COURSERANK_ANALYSIS_ANALYZER_H_

#include <optional>
#include <string>

#include "analysis/diagnostics.h"
#include "core/similarity.h"
#include "core/workflow.h"
#include "query/sql_ast.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace courserank::analysis {

struct AnalyzerOptions {
  /// Enables advisory checks that are noisy on reasonable plans (CR402
  /// unbounded-result warnings). The lint CLI turns this on with
  /// --pedantic; the engines leave it off.
  bool pedantic = false;
};

/// Schema-aware semantic analyzer for FlexRecs workflow plans and SQL
/// statements. Runs entirely before execution: it resolves names against
/// the catalog, pushes types through every operator (π/σ/ε/recommend),
/// folds constant predicates, and flags structurally suspicious plans.
/// Findings land in a DiagnosticBag; the analyzer itself never fails.
///
/// The analyzer is deliberately lenient where the runtime is: a type it
/// cannot pin down (parameters, ambiguous columns, SQL escape hatches it
/// cannot model) suppresses the dependent checks rather than guessing, so
/// a clean bill of health is meaningful and an error is trustworthy.
class Analyzer {
 public:
  /// Both pointers are borrowed and must outlive the analyzer. `library`
  /// may be null — similarity checks are skipped then.
  Analyzer(const storage::Database* db,
           const flexrecs::SimilarityLibrary* library,
           AnalyzerOptions options = {});

  /// Analyzes a workflow operator tree. Returns the inferred schema of the
  /// root when every operator resolved (nullopt otherwise — diagnostics say
  /// why).
  std::optional<storage::Schema> AnalyzeWorkflow(
      const flexrecs::WorkflowNode& root, DiagnosticBag* diags) const;

  /// Analyzes one parsed SQL statement (SELECT and DML) against the
  /// catalog.
  void AnalyzeStatement(const query::Statement& stmt,
                        DiagnosticBag* diags) const;

  /// Parses workflow DSL text and analyzes it; parse failures become CR001
  /// diagnostics with the offending statement's span.
  DiagnosticBag LintDsl(const std::string& text) const;

  /// Parses a SQL statement and analyzes it; parse failures become CR002.
  DiagnosticBag LintSql(const std::string& sql) const;

 private:
  const storage::Database* db_;
  const flexrecs::SimilarityLibrary* library_;
  AnalyzerOptions options_;
};

}  // namespace courserank::analysis

#endif  // COURSERANK_ANALYSIS_ANALYZER_H_
