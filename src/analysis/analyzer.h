#ifndef COURSERANK_ANALYSIS_ANALYZER_H_
#define COURSERANK_ANALYSIS_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/plan_properties.h"
#include "core/similarity.h"
#include "core/workflow.h"
#include "query/sql_ast.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace courserank::analysis {

struct AnalyzerOptions {
  /// Enables advisory checks that are noisy on reasonable plans (CR402
  /// unbounded-result warnings). The lint CLI turns this on with
  /// --pedantic; the engines leave it off.
  bool pedantic = false;
  /// Re-analyze plans after the workflow optimizer / SQL planner rewrote
  /// them and fail compilation with CR5xx diagnostics when a rewrite
  /// changed the inferred schema or weakened a plan property. Defaults on
  /// in debug builds — the configuration ctest runs — and off in release,
  /// where the double analysis would tax the hot path.
#ifdef NDEBUG
  bool verify_rewrites = false;
#else
  bool verify_rewrites = true;
#endif
};

/// Schema-aware semantic analyzer for FlexRecs workflow plans and SQL
/// statements. Runs entirely before execution: it resolves names against
/// the catalog, pushes types through every operator (π/σ/ε/recommend),
/// folds constant predicates, flags structurally suspicious plans, and
/// infers per-node PlanProperties (cardinality bounds, keys, sort order,
/// NULL-ability, dictionary safety — DESIGN.md §15) via the same bottom-up
/// walk. Findings land in a DiagnosticBag; the analyzer itself never fails.
///
/// The analyzer is deliberately lenient where the runtime is: a type it
/// cannot pin down (parameters, ambiguous columns, SQL escape hatches it
/// cannot model) suppresses the dependent checks rather than guessing, so
/// a clean bill of health is meaningful and an error is trustworthy. The
/// same contract extends to properties: every inferred fact is a runtime
/// guarantee (asserted by ExecOptions::check_static_claims), never an
/// estimate.
class Analyzer {
 public:
  /// Full result of analyzing a workflow tree: root schema + properties,
  /// plus the per-node property table in pre-order (EXPLAIN STATIC / lint
  /// --properties rendering).
  struct WorkflowAnalysis {
    std::optional<storage::Schema> schema;
    PlanProperties props;
    std::vector<NodeProperties> nodes;
  };

  /// Root schema + properties of one SQL statement (SELECTs; DML returns
  /// the defaults).
  struct StatementAnalysis {
    std::optional<storage::Schema> schema;
    PlanProperties props;
  };

  /// Both pointers are borrowed and must outlive the analyzer. `library`
  /// may be null — similarity checks are skipped then.
  Analyzer(const storage::Database* db,
           const flexrecs::SimilarityLibrary* library,
           AnalyzerOptions options = {});

  /// Analyzes a workflow operator tree. Returns the inferred schema of the
  /// root when every operator resolved (nullopt otherwise — diagnostics say
  /// why).
  std::optional<storage::Schema> AnalyzeWorkflow(
      const flexrecs::WorkflowNode& root, DiagnosticBag* diags) const;

  /// AnalyzeWorkflow plus the inferred per-node property table.
  WorkflowAnalysis AnalyzeWorkflowProperties(
      const flexrecs::WorkflowNode& root, DiagnosticBag* diags) const;

  /// Analyzes one parsed SQL statement (SELECT and DML) against the
  /// catalog.
  void AnalyzeStatement(const query::Statement& stmt,
                        DiagnosticBag* diags) const;

  /// AnalyzeStatement plus the statement's inferred root properties.
  StatementAnalysis AnalyzeStatementProperties(const query::Statement& stmt,
                                               DiagnosticBag* diags) const;

  /// Rewrite-soundness verifier (CR5xx): re-analyzes `rewritten` and
  /// compares its inferred schema and properties against `original`'s. A
  /// semantics-preserving rewrite may tighten properties but never weaken
  /// them; a changed schema, a raised cardinality bound, or a lost
  /// sort/key/non-NULL guarantee is reported as a CR50x error. Returns
  /// true when no error was added.
  bool VerifyWorkflowRewrite(const flexrecs::WorkflowNode& original,
                             const flexrecs::WorkflowNode& rewritten,
                             DiagnosticBag* diags) const;

  /// Parses workflow DSL text and analyzes it; parse failures become CR001
  /// diagnostics with the offending statement's span.
  DiagnosticBag LintDsl(const std::string& text) const;

  /// Parses a SQL statement and analyzes it; parse failures become CR002.
  DiagnosticBag LintSql(const std::string& sql) const;

 private:
  const storage::Database* db_;
  const flexrecs::SimilarityLibrary* library_;
  AnalyzerOptions options_;
};

}  // namespace courserank::analysis

#endif  // COURSERANK_ANALYSIS_ANALYZER_H_
