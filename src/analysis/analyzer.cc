#include "analysis/analyzer.h"

#include <map>
#include <set>
#include <vector>

#include "common/strings.h"
#include "core/workflow_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/sql_parser.h"
#include "storage/table.h"
#include "storage/value.h"

namespace courserank::analysis {

namespace {

using flexrecs::NodeKind;
using flexrecs::RecommendAgg;
using flexrecs::RecommendSpec;
using flexrecs::SimArgKind;
using flexrecs::WorkflowNode;
using query::BinaryOp;
using query::Expr;
using query::ExprPtr;
using query::UnaryOp;
using storage::Column;
using storage::Schema;
using storage::Value;
using storage::ValueType;
using storage::ValueTypeName;

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

/// Last dot-segment: "Ratings.SuID" -> "SuID".
std::string Unqualify(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

/// A column of type kNull in an inferred schema means "type unknown" —
/// either genuinely untyped (all-NULL Values relation) or beyond the
/// analyzer's modeling. Dependent checks skip it.
std::optional<ValueType> KnownType(const Column& c) {
  if (c.type == ValueType::kNull) return std::nullopt;
  return c.type;
}

/// Outcome of resolving a column reference against an inferred schema.
struct ResolvedColumn {
  bool found = false;
  std::optional<ValueType> type;  ///< nullopt = ambiguous or untyped
  bool nullable = true;
};

/// Resolution mirrors (and is deliberately more lenient than) runtime
/// binding: exact/qualified lookup first, then suffix-vs-suffix matching,
/// because the SQL compiler prefixes scan schemas with aliases in ways the
/// analyzer does not always reproduce. Ambiguity resolves to "found, type
/// unknown" — never a false unknown-column error.
ResolvedColumn Resolve(const Schema& schema, const std::string& name) {
  if (auto idx = schema.FindColumn(name)) {
    const Column& c = schema.column(*idx);
    return {true, KnownType(c), c.nullable};
  }
  std::string want = ToLower(Unqualify(name));
  const Column* match = nullptr;
  int count = 0;
  for (const Column& c : schema.columns()) {
    if (ToLower(Unqualify(c.name)) == want) {
      match = &c;
      ++count;
    }
  }
  if (count == 1) return {true, KnownType(*match), match->nullable};
  if (count > 1) return {true, std::nullopt, true};
  return {};
}

// ---- expression shape extraction --------------------------------------
//
// Expr subclasses are private to expr.cc, so structure is recovered through
// single-dispatch Accept: each probe visitor records the one callback that
// fires.

struct BinaryShape : query::ExprVisitor {
  std::optional<BinaryOp> op;
  const Expr* lhs = nullptr;
  const Expr* rhs = nullptr;
  void VisitBinary(BinaryOp o, const Expr& l, const Expr& r) override {
    op = o;
    lhs = &l;
    rhs = &r;
  }
};

BinaryShape ShapeOf(const Expr& e) {
  BinaryShape s;
  e.Accept(s);
  return s;
}

std::optional<std::string> ColumnNameOf(const Expr& e) {
  struct Probe : query::ExprVisitor {
    std::optional<std::string> name;
    void VisitColumn(const std::string& n) override { name = n; }
  } probe;
  e.Accept(probe);
  return probe.name;
}

std::optional<Value> LiteralOf(const Expr& e) {
  struct Probe : query::ExprVisitor {
    std::optional<Value> value;
    void VisitLiteral(const Value& v) override { value = v; }
  } probe;
  e.Accept(probe);
  return probe.value;
}

/// Flattens a top-level AND chain into its conjuncts.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  BinaryShape s = ShapeOf(e);
  if (s.op == BinaryOp::kAnd) {
    CollectConjuncts(*s.lhs, out);
    CollectConjuncts(*s.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Collects every referenced column, lowercased and unqualified, for the
/// liveness pass.
struct ColumnCollector : query::ExprVisitor {
  std::set<std::string>* out;
  explicit ColumnCollector(std::set<std::string>* o) : out(o) {}
  void VisitColumn(const std::string& n) override {
    out->insert(ToLower(Unqualify(n)));
  }
  void VisitUnary(UnaryOp, const Expr& operand) override {
    operand.Accept(*this);
  }
  void VisitBinary(BinaryOp, const Expr& l, const Expr& r) override {
    l.Accept(*this);
    r.Accept(*this);
  }
  void VisitIsNull(const Expr& operand, bool) override {
    operand.Accept(*this);
  }
  void VisitInList(const Expr& operand,
                   const std::vector<Value>&) override {
    operand.Accept(*this);
  }
  void VisitCall(const std::string&,
                 const std::vector<ExprPtr>& args) override {
    for (const ExprPtr& a : args) a->Accept(*this);
  }
};

/// Evaluates an expression that references no columns or parameters;
/// nullopt when it does (or evaluation itself fails, e.g. 1/0).
std::optional<Value> FoldConstant(const Expr& e) {
  ExprPtr clone = e.Clone();
  Schema empty;
  query::ParamMap no_params;
  if (!clone->Bind(empty, &no_params).ok()) return std::nullopt;
  auto v = clone->Eval({});
  if (!v.ok()) return std::nullopt;
  return std::move(v).value();
}

// ---- expression type checking -----------------------------------------

/// Inferred static type of an expression. `type` nullopt means the analyzer
/// cannot pin it down (parameter, ambiguous column, polymorphic function);
/// every check treats unknown as "could be fine".
struct TypeInfo {
  std::optional<ValueType> type;
  bool nullable = true;
};

/// Recursive type inference + checking over one schema. Emits CR102 and the
/// 2xx type diagnostics as it walks.
class ExprChecker : public query::ExprVisitor {
 public:
  ExprChecker(const Schema& schema, SourceSpan span, DiagnosticBag* diags)
      : schema_(schema), span_(span), diags_(diags) {}

  TypeInfo Check(const Expr& e) {
    result_ = TypeInfo{};
    e.Accept(*this);
    return result_;
  }

  void VisitLiteral(const Value& v) override {
    if (v.is_null()) {
      result_ = {std::nullopt, true};
    } else {
      result_ = {v.type(), false};
    }
  }

  void VisitColumn(const std::string& name) override {
    ResolvedColumn rc = Resolve(schema_, name);
    if (!rc.found) {
      Add(Code::kUnknownColumn, "no column '" + name + "' in schema [" +
                                    schema_.ToString() + "]");
      result_ = {std::nullopt, true};
      return;
    }
    result_ = {rc.type, rc.nullable};
  }

  void VisitParam(const std::string&) override {
    result_ = {std::nullopt, true};
  }

  void VisitUnary(UnaryOp op, const Expr& operand) override {
    TypeInfo t = Check(operand);
    if (op == UnaryOp::kNot) {
      if (t.type && *t.type != ValueType::kBool) {
        Add(Code::kArgumentType, "NOT applied to " + Name(t) +
                                     " operand: " + operand.ToString());
      }
      result_ = {ValueType::kBool, t.nullable};
    } else {
      if (t.type && !IsNumericType(*t.type)) {
        Add(Code::kArithmeticType,
            "unary '-' on " + Name(t) + " operand: " + operand.ToString());
      }
      result_ = {ValueType::kDouble, t.nullable};
    }
  }

  void VisitBinary(BinaryOp op, const Expr& lhs, const Expr& rhs) override {
    TypeInfo l = Check(lhs);
    TypeInfo r = Check(rhs);
    bool nullable = l.nullable || r.nullable;
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        // '+' doubles as string concatenation when BOTH sides are strings.
        if (op == BinaryOp::kAdd && l.type == ValueType::kString &&
            r.type == ValueType::kString) {
          result_ = {ValueType::kString, nullable};
          return;
        }
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (!t.type || IsNumericType(*t.type)) return;
          // A lone string under '+' might still concat with an
          // unknown-typed partner; bool/list never work.
          if (op == BinaryOp::kAdd && *t.type == ValueType::kString &&
              (!l.type || !r.type)) {
            return;
          }
          Add(Code::kArithmeticType,
              std::string("'") + query::BinaryOpName(op) + "' on " +
                  Name(t) + " operand: " + e.ToString());
        };
        flag(l, lhs);
        flag(r, rhs);
        if (l.type == ValueType::kInt && r.type == ValueType::kInt) {
          result_ = {ValueType::kInt, nullable};
        } else if (l.type && r.type && IsNumericType(*l.type) &&
                   IsNumericType(*r.type)) {
          result_ = {ValueType::kDouble, nullable};
        } else {
          result_ = {std::nullopt, nullable};
        }
        return;
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (l.type && r.type && *l.type != *r.type &&
            !(IsNumericType(*l.type) && IsNumericType(*r.type))) {
          Add(Code::kCrossTypeCompare,
              "comparison of " + Name(l) + " and " + Name(r) +
                  " is decided by type rank, never by value: (" +
                  lhs.ToString() + " " + query::BinaryOpName(op) + " " +
                  rhs.ToString() + ")");
        }
        result_ = {ValueType::kBool, nullable};
        return;
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (t.type && *t.type != ValueType::kBool) {
            Add(Code::kNonBooleanPredicate,
                std::string(query::BinaryOpName(op)) + " on " + Name(t) +
                    " operand: " + e.ToString());
          }
        };
        flag(l, lhs);
        flag(r, rhs);
        result_ = {ValueType::kBool, nullable};
        return;
      }
      case BinaryOp::kLike: {
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (t.type && *t.type != ValueType::kString) {
            Add(Code::kArgumentType,
                "LIKE requires STRING operands, got " + Name(t) + ": " +
                    e.ToString());
          }
        };
        flag(l, lhs);
        flag(r, rhs);
        result_ = {ValueType::kBool, nullable};
        return;
      }
    }
    result_ = {std::nullopt, nullable};
  }

  void VisitIsNull(const Expr& operand, bool) override {
    Check(operand);
    result_ = {ValueType::kBool, false};
  }

  void VisitInList(const Expr& operand,
                   const std::vector<Value>& values) override {
    TypeInfo t = Check(operand);
    if (t.type && !values.empty()) {
      bool any_comparable = false;
      for (const Value& v : values) {
        if (v.is_null() || v.type() == *t.type ||
            (IsNumericType(v.type()) && IsNumericType(*t.type))) {
          any_comparable = true;
          break;
        }
      }
      if (!any_comparable) {
        Add(Code::kCrossTypeCompare,
            "IN list holds no value of type " + Name(t) + ": " +
                operand.ToString());
      }
    }
    result_ = {ValueType::kBool, t.nullable};
  }

  void VisitCall(const std::string& function,
                 const std::vector<ExprPtr>& args) override {
    std::vector<TypeInfo> ts;
    ts.reserve(args.size());
    for (const ExprPtr& a : args) ts.push_back(Check(*a));

    Status arity = query::CheckScalarCall(function, args.size());
    if (!arity.ok()) {
      Add(Code::kBadCall, arity.message());
      result_ = {std::nullopt, true};
      return;
    }

    auto want = [&](size_t i, ValueType t, const char* what) {
      if (ts[i].type && *ts[i].type != t &&
          !(IsNumericType(t) && IsNumericType(*ts[i].type))) {
        Add(Code::kArgumentType,
            function + " argument " + std::to_string(i + 1) + " must be " +
                std::string(what) + ", got " + Name(ts[i]) + ": " +
                args[i]->ToString());
      }
    };
    if (function == "LOWER" || function == "UPPER" ||
        function == "LENGTH") {
      want(0, ValueType::kString, "STRING");
    } else if (function == "ABS") {
      want(0, ValueType::kDouble, "numeric");
    } else if (function == "ROUND") {
      want(0, ValueType::kDouble, "numeric");
      want(1, ValueType::kDouble, "numeric");
    } else if (function == "CONTAINS") {
      want(0, ValueType::kString, "STRING");
      want(1, ValueType::kString, "STRING");
    } else if (function == "SUBSTR") {
      want(0, ValueType::kString, "STRING");
      want(1, ValueType::kDouble, "numeric");
      want(2, ValueType::kDouble, "numeric");
    } else if (function == "LIST_LEN") {
      want(0, ValueType::kList, "LIST");
    }

    bool nullable = false;
    for (const TypeInfo& t : ts) nullable = nullable || t.nullable;
    if (function == "COALESCE") {
      ValueType common = ValueType::kNull;
      bool have_common = false;
      bool mixed = false;
      bool all_nullable = true;
      for (const TypeInfo& t : ts) {
        if (!t.type) {
          mixed = true;
        } else if (!have_common) {
          common = *t.type;
          have_common = true;
        } else if (*t.type != common) {
          mixed = true;
        }
        all_nullable = all_nullable && t.nullable;
      }
      result_ = {have_common && !mixed ? std::optional<ValueType>(common)
                                       : std::nullopt,
                 all_nullable};
      return;
    }
    if (function == "ABS") {
      result_ = {ts[0].type && IsNumericType(*ts[0].type)
                     ? ts[0].type
                     : std::optional<ValueType>(),
                 nullable};
      return;
    }
    result_ = {query::ScalarFunctionResultType(function), nullable};
  }

 private:
  void Add(Code code, std::string message) {
    diags_->Add(code, span_, std::move(message));
  }

  static std::string Name(const TypeInfo& t) {
    return t.type ? ValueTypeName(*t.type) : "unknown";
  }

  const Schema& schema_;
  SourceSpan span_;
  DiagnosticBag* diags_;
  TypeInfo result_;
};

/// Full predicate treatment: type check, boolean-ness, and (when `fold`)
/// constant folding and never-true equality detection. `fold` is set for
/// filtering positions (σ, WHERE) where an always-false/true predicate is a
/// plan bug, and clear for join conditions (CR401 covers those).
void CheckPredicate(const Expr& pred, const Schema& schema, SourceSpan span,
                    DiagnosticBag* diags, bool fold) {
  ExprChecker checker(schema, span, diags);
  TypeInfo t = checker.Check(pred);
  if (t.type && *t.type != ValueType::kBool) {
    diags->Add(Code::kNonBooleanPredicate, span,
               "predicate has type " + std::string(ValueTypeName(*t.type)) +
                   ", expected BOOL: " + pred.ToString());
  }
  if (!fold) return;

  if (std::optional<Value> c = FoldConstant(pred)) {
    if (c->is_null() ||
        (c->type() == ValueType::kBool && !c->AsBool())) {
      diags->Add(Code::kAlwaysFalse, span,
                 std::string("predicate is always ") +
                     (c->is_null() ? "NULL" : "FALSE") +
                     "; the filter drops every row: " + pred.ToString());
    } else if (c->type() == ValueType::kBool && c->AsBool()) {
      diags->Add(Code::kAlwaysTrue, span,
                 "predicate is always TRUE; the filter keeps every row: " +
                     pred.ToString());
    }
    return;
  }

  // Not constant — but one never-true AND conjunct still empties the σ.
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    BinaryShape s = ShapeOf(*c);
    if (!s.op.has_value()) continue;
    bool comparison = *s.op == BinaryOp::kEq || *s.op == BinaryOp::kNe ||
                      *s.op == BinaryOp::kLt || *s.op == BinaryOp::kLe ||
                      *s.op == BinaryOp::kGt || *s.op == BinaryOp::kGe;
    if (!comparison) continue;
    // `x = NULL` is NULL for every row — the classic "meant IS NULL" bug.
    std::optional<Value> ll = LiteralOf(*s.lhs);
    std::optional<Value> rl = LiteralOf(*s.rhs);
    if ((ll && ll->is_null()) || (rl && rl->is_null())) {
      diags->Add(Code::kAlwaysFalse, span,
                 "comparison with NULL is never TRUE (use IS NULL): " +
                     c->ToString());
      break;
    }
    if (*s.op != BinaryOp::kEq) continue;
    DiagnosticBag scratch;
    ExprChecker quiet(schema, span, &scratch);
    TypeInfo l = quiet.Check(*s.lhs);
    TypeInfo r = quiet.Check(*s.rhs);
    if (l.type && r.type && *l.type != *r.type &&
        !(IsNumericType(*l.type) && IsNumericType(*r.type))) {
      diags->Add(Code::kAlwaysFalse, span,
                 "equality compares " + std::string(ValueTypeName(*l.type)) +
                     " with " + ValueTypeName(*r.type) +
                     " and can never hold: " + c->ToString());
      break;
    }
  }
}

/// True when `pred` has a top-level equality conjunct linking a column of
/// `left` with a column of `right` — the join can hash instead of degrading
/// to a filtered cross product.
bool HasEquiConjunct(const Expr& pred, const Schema& left,
                     const Schema& right) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    BinaryShape s = ShapeOf(*c);
    if (s.op != BinaryOp::kEq) continue;
    std::optional<std::string> lc = ColumnNameOf(*s.lhs);
    std::optional<std::string> rc = ColumnNameOf(*s.rhs);
    if (!lc || !rc) continue;
    bool l_in_left = Resolve(left, *lc).found;
    bool l_in_right = Resolve(right, *lc).found;
    bool r_in_left = Resolve(left, *rc).found;
    bool r_in_right = Resolve(right, *rc).found;
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) return true;
  }
  return false;
}

bool KindMatches(ValueType t, SimArgKind kind) {
  switch (kind) {
    case SimArgKind::kAny:
      return true;
    case SimArgKind::kString:
      return t == ValueType::kString;
    case SimArgKind::kNumber:
      return IsNumericType(t);
    case SimArgKind::kSet:
    case SimArgKind::kPairs:
      return t == ValueType::kList;
    case SimArgKind::kScalar:
      return t != ValueType::kList;
  }
  return true;
}

/// What the liveness pass knows is consumed above the current node. `all`
/// models "everything" (the workflow result, a SQL escape hatch); Project
/// and the reference sides of ε/▷/except narrow it.
struct LiveSet {
  bool all = false;
  std::set<std::string> names;  ///< lowercased, unqualified

  bool Contains(const std::string& name) const {
    return all || names.count(ToLower(Unqualify(name))) > 0;
  }
  void Insert(const std::string& name) {
    if (!name.empty()) names.insert(ToLower(Unqualify(name)));
  }
  void InsertExpr(const Expr* e) {
    if (e == nullptr) return;
    ColumnCollector c(&names);
    e->Accept(c);
  }
};

// ---- plan-property inference ------------------------------------------

size_t MinCard(size_t a, size_t b) { return a < b ? a : b; }

/// Resolves a property column name to a column index of `schema`, with the
/// same exact-then-unique-suffix leniency as Resolve. nullopt = no unique
/// match.
std::optional<size_t> ResolveIndex(const Schema& schema,
                                   const std::string& name) {
  if (auto idx = schema.FindColumn(name)) return idx;
  std::string want = ToLower(Unqualify(name));
  std::optional<size_t> match;
  int count = 0;
  for (size_t i = 0; i < schema.columns().size(); ++i) {
    if (ToLower(Unqualify(schema.columns()[i].name)) == want) {
      match = i;
      ++count;
    }
  }
  if (count == 1) return match;
  return std::nullopt;
}

/// Renames every property column the way Schema::WithPrefix renames the
/// schema's ("alias.col"); no-op for an empty prefix.
void PrefixProps(PlanProperties* p, const std::string& prefix) {
  if (prefix.empty()) return;
  auto fix = [&](std::string* n) { *n = prefix + "." + *n; };
  for (std::vector<std::string>& key : p->keys) {
    for (std::string& n : key) fix(&n);
  }
  for (SortProp& s : p->sort_order) fix(&s.column);
  for (std::string& n : p->non_null) fix(&n);
  for (std::string& n : p->dict_id_safe) fix(&n);
}

/// Join property combination. Cardinality is the cross-product bound (with
/// a zero minimum once a condition filters); keys are pairwise unions — a
/// (left key, right key) pair identifies each joined row even for left
/// joins, where an unmatched left row appears exactly once. Both hash-join
/// build sides and the nested-loop fallback emit matches grouped by left
/// row in left order, so the left sort order survives. Left-outer joins
/// NULL-pad the right side, dropping its non-NULL facts.
PlanProperties JoinProps(PlanProperties l, const PlanProperties& r,
                         bool filtered, bool left_outer) {
  PlanProperties p;
  if (left_outer) {
    p.card_min = l.card_min;
    p.card_max = SaturatingMul(l.card_max, r.card_max == 0 ? 1 : r.card_max);
  } else {
    p.card_min = filtered ? 0 : SaturatingMul(l.card_min, r.card_min);
    p.card_max = SaturatingMul(l.card_max, r.card_max);
  }
  for (const std::vector<std::string>& lk : l.keys) {
    for (const std::vector<std::string>& rk : r.keys) {
      std::vector<std::string> k = lk;
      k.insert(k.end(), rk.begin(), rk.end());
      p.keys.push_back(std::move(k));
    }
  }
  p.sort_order = std::move(l.sort_order);
  p.non_null = std::move(l.non_null);
  if (!left_outer) {
    p.non_null.insert(p.non_null.end(), r.non_null.begin(),
                      r.non_null.end());
  }
  p.dict_id_safe = std::move(l.dict_id_safe);
  p.dict_id_safe.insert(p.dict_id_safe.end(), r.dict_id_safe.begin(),
                        r.dict_id_safe.end());
  return p;
}

/// Properties of one base-table scan: NOT NULL columns (Schema::ValidateRow
/// enforces them on every insert), string columns as dictionary-backed, and
/// each unique hash index as a key.
PlanProperties TableProps(const storage::Table& t) {
  PlanProperties p;
  const Schema& schema = t.schema();
  for (const Column& c : schema.columns()) {
    if (!c.nullable) p.non_null.push_back(c.name);
    if (c.type == ValueType::kString) p.dict_id_safe.push_back(c.name);
  }
  for (const storage::HashIndex* idx : t.hash_indexes()) {
    if (!idx->unique()) continue;
    std::vector<std::string> key;
    for (size_t ci : idx->column_indices()) {
      key.push_back(schema.columns()[ci].name);
    }
    if (!key.empty()) p.keys.push_back(std::move(key));
  }
  p.fusion_eligible = true;
  return p;
}

/// Properties of a literal relation: exact cardinality, plus the columns
/// scanned NULL-free.
PlanProperties ValuesProps(const query::Relation& rel) {
  PlanProperties p;
  p.card_min = p.card_max = rel.rows.size();
  p.fusion_eligible = true;
  for (size_t i = 0; i < rel.schema.columns().size(); ++i) {
    bool has_null = false;
    for (const query::Row& row : rel.rows) {
      if (i >= row.size() || row[i].is_null()) {
        has_null = true;
        break;
      }
    }
    if (!has_null) p.non_null.push_back(rel.schema.columns()[i].name);
  }
  return p;
}

/// Rewrites property column names through a projection: `out_name_of[i]` is
/// the output name of input column i, empty when the column is dropped or
/// only reachable through a computed expression.
struct ProjectionMap {
  const Schema* in;
  std::vector<std::string> out_name_of;

  std::optional<std::string> Map(const std::string& name) const {
    std::optional<size_t> idx = ResolveIndex(*in, name);
    if (!idx || *idx >= out_name_of.size() || out_name_of[*idx].empty()) {
      return std::nullopt;
    }
    return out_name_of[*idx];
  }
};

/// Pushes child properties through a projection: cardinality is preserved
/// exactly (π is 1:1 on rows); keys / non-NULL / dict facts survive where
/// every referenced column maps to an output column, and the sort order
/// survives as its mappable prefix.
PlanProperties ProjectProps(const PlanProperties& in,
                            const ProjectionMap& m) {
  PlanProperties p;
  p.card_min = in.card_min;
  p.card_max = in.card_max;
  p.fusion_eligible = in.fusion_eligible;
  for (const std::vector<std::string>& key : in.keys) {
    std::vector<std::string> mapped;
    bool complete = true;
    for (const std::string& n : key) {
      std::optional<std::string> out = m.Map(n);
      if (!out) {
        complete = false;
        break;
      }
      mapped.push_back(*out);
    }
    if (complete && !mapped.empty()) p.keys.push_back(std::move(mapped));
  }
  for (const SortProp& s : in.sort_order) {
    std::optional<std::string> out = m.Map(s.column);
    if (!out) break;
    p.sort_order.push_back({*out, s.descending});
  }
  for (const std::string& n : in.non_null) {
    if (std::optional<std::string> out = m.Map(n)) {
      p.non_null.push_back(*out);
    }
  }
  for (const std::string& n : in.dict_id_safe) {
    if (std::optional<std::string> out = m.Map(n)) {
      p.dict_id_safe.push_back(*out);
    }
  }
  return p;
}

/// First line of the operator's ToString — the node label in property
/// tables.
std::string NodeLabel(const WorkflowNode& node) {
  std::string s = node.ToString(0);
  size_t nl = s.find('\n');
  if (nl != std::string::npos) s.resize(nl);
  return s;
}

std::string CardBound(size_t n) {
  return n == kUnboundedCard ? std::string("unbounded") : std::to_string(n);
}

std::string JoinList(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

bool HasName(const std::vector<std::string>& names, const std::string& n) {
  std::string want = ToLower(Unqualify(n));
  for (const std::string& c : names) {
    if (ToLower(Unqualify(c)) == want) return true;
  }
  return false;
}

/// True when every column of `sub` appears in `super` (case-insensitive,
/// unqualified) — a key over `sub` implies uniqueness of any superset.
bool KeySubset(const std::vector<std::string>& sub,
               const std::vector<std::string>& super) {
  for (const std::string& n : sub) {
    if (!HasName(super, n)) return false;
  }
  return true;
}

bool SameKey(const std::vector<std::string>& a,
             const std::vector<std::string>& b) {
  return a.size() == b.size() && KeySubset(a, b) && KeySubset(b, a);
}

// ---- workflow walk -----------------------------------------------------

/// Everything inferred about one operator's output: its schema and its
/// plan properties (DESIGN.md §15). Both flow bottom-up through the same
/// walk; a node the analyzer cannot model keeps the unbounded/empty
/// property defaults.
struct NodeInfo {
  std::optional<Schema> schema;
  PlanProperties props;
};

class WorkflowChecker {
 public:
  WorkflowChecker(const storage::Database* db,
                  const flexrecs::SimilarityLibrary* library,
                  DiagnosticBag* diags)
      : db_(db), library_(library), diags_(diags) {}

  /// When set, Analyze records every node's inferred NodeInfo — the
  /// per-node property table behind EXPLAIN STATIC and lint --properties.
  void set_memo(std::map<const WorkflowNode*, NodeInfo>* memo) {
    memo_ = memo;
  }

  NodeInfo Analyze(const WorkflowNode& node) {
    NodeInfo info = AnalyzeImpl(node);
    if (memo_ != nullptr) (*memo_)[&node] = info;
    return info;
  }

  NodeInfo AnalyzeImpl(const WorkflowNode& node) {
    switch (node.kind) {
      case NodeKind::kTable:
        return AnalyzeTable(node);
      case NodeKind::kSql:
        return AnalyzeSql(node);
      case NodeKind::kValues:
        return {node.values.schema, ValuesProps(node.values)};
      case NodeKind::kSelect: {
        NodeInfo in = Analyze(*node.children[0]);
        if (in.schema && node.predicate != nullptr) {
          CheckPredicate(*node.predicate, *in.schema, node.span, diags_,
                         /*fold=*/true);
        }
        // σ keeps an ordered row subset: every upper bound, key, sort and
        // non-NULL fact survives; only the lower bound collapses.
        in.props.card_min = 0;
        return in;
      }
      case NodeKind::kProject:
        return AnalyzeProject(node);
      case NodeKind::kJoin:
        return AnalyzeJoin(node);
      case NodeKind::kExtend:
        return AnalyzeExtend(node);
      case NodeKind::kRecommend:
        return AnalyzeRecommend(node);
      case NodeKind::kAntiJoin:
        return AnalyzeAntiJoin(node);
      case NodeKind::kTopK: {
        NodeInfo in = Analyze(*node.children[0]);
        if (in.schema && !Resolve(*in.schema, node.order_column).found) {
          diags_->Add(Code::kUnknownColumn, node.span,
                      "no column '" + node.order_column +
                          "' to order by in schema [" +
                          in.schema->ToString() + "]");
        }
        // TOPK emits min(k, n) rows fully sorted by the order column; the
        // bound is min(k, input bound), not just k.
        in.props.card_min = MinCard(node.k, in.props.card_min);
        in.props.card_max = MinCard(node.k, in.props.card_max);
        in.props.sort_order = {{node.order_column, node.descending}};
        in.props.fusion_eligible = false;
        return in;
      }
    }
    return {};
  }

  /// Top-down liveness: flags ε-extended columns nothing above consumes.
  void MarkLive(const WorkflowNode& node, const LiveSet& live) {
    switch (node.kind) {
      case NodeKind::kTable:
      case NodeKind::kSql:
      case NodeKind::kValues:
        return;
      case NodeKind::kSelect: {
        LiveSet child = live;
        child.InsertExpr(node.predicate.get());
        MarkLive(*node.children[0], child);
        return;
      }
      case NodeKind::kProject: {
        LiveSet child;
        for (const auto& item : node.items) {
          child.InsertExpr(item.expr.get());
        }
        MarkLive(*node.children[0], child);
        return;
      }
      case NodeKind::kJoin: {
        LiveSet side = live;
        side.InsertExpr(node.predicate.get());
        MarkLive(*node.children[0], side);
        MarkLive(*node.children[1], side);
        return;
      }
      case NodeKind::kExtend: {
        if (!live.Contains(node.column_name)) {
          diags_->Add(Code::kUnusedColumn, node.span,
                      "extended column '" + node.column_name +
                          "' is never consumed by any downstream operator");
        }
        LiveSet child = live;
        child.names.erase(ToLower(Unqualify(node.column_name)));
        child.InsertExpr(node.child_key.get());
        MarkLive(*node.children[0], child);
        LiveSet source;
        source.InsertExpr(node.source_key.get());
        for (const ExprPtr& c : node.collect) source.InsertExpr(c.get());
        MarkLive(*node.children[1], source);
        return;
      }
      case NodeKind::kRecommend: {
        LiveSet input = live;
        input.names.erase(ToLower(Unqualify(node.recommend.score_column)));
        input.Insert(node.recommend.input_attr);
        MarkLive(*node.children[0], input);
        LiveSet reference;
        reference.Insert(node.recommend.reference_attr);
        reference.Insert(node.recommend.weight_attr);
        MarkLive(*node.children[1], reference);
        return;
      }
      case NodeKind::kAntiJoin: {
        LiveSet child = live;
        child.InsertExpr(node.child_key.get());
        MarkLive(*node.children[0], child);
        LiveSet source;
        source.InsertExpr(node.source_key.get());
        MarkLive(*node.children[1], source);
        return;
      }
      case NodeKind::kTopK: {
        LiveSet child = live;
        child.Insert(node.order_column);
        MarkLive(*node.children[0], child);
        return;
      }
    }
  }

  /// Analyzes a parsed SELECT against the catalog; returns its inferred
  /// output schema (nullopt when a referenced table is unknown) plus the
  /// statement's root plan properties.
  NodeInfo AnalyzeSelect(const query::SelectStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return {};

    // LIMIT/OFFSET bound the final result whatever path produced it.
    auto apply_limit = [&](PlanProperties* p) {
      if (!stmt.limit.has_value()) return;
      p->card_max = MinCard(*stmt.limit, p->card_max);
      p->card_min = p->card_min > stmt.offset
                        ? MinCard(p->card_min - stmt.offset, *stmt.limit)
                        : 0;
    };

    // Scan schemas, aliased exactly like SqlEngine::PlanSelect.
    auto effective_alias = [&](const query::TableRef& ref) {
      if (!ref.alias.empty()) return ref.alias;
      return stmt.joins.empty() ? std::string() : ref.table;
    };
    auto scan_info = [&](const query::TableRef& ref) -> NodeInfo {
      const storage::Table* t = db_->FindTable(ref.table);
      if (t == nullptr) {
        diags_->Add(Code::kUnknownTable, span,
                    "no table '" + ref.table + "' in catalog");
        return {};
      }
      NodeInfo info{t->schema(), TableProps(*t)};
      std::string alias = effective_alias(ref);
      if (!alias.empty()) {
        info.schema = info.schema->WithPrefix(alias);
        PrefixProps(&info.props, alias);
      }
      return info;
    };

    NodeInfo base = scan_info(stmt.from);
    std::optional<Schema> joined = base.schema;
    for (const query::JoinClause& jc : stmt.joins) {
      NodeInfo right = scan_info(jc.table);
      if (jc.on == nullptr) {
        diags_->Add(Code::kCartesianProduct, span,
                    "JOIN of '" + jc.table.table +
                        "' has no ON condition; every row pairs with every "
                        "row");
      } else if (joined && right.schema &&
                 !HasEquiConjunct(*jc.on, *joined, *right.schema)) {
        diags_->Add(Code::kCartesianProduct, span,
                    "JOIN of '" + jc.table.table +
                        "' has no equality condition linking both sides; "
                        "executes as a filtered cross product");
      }
      base.props = JoinProps(std::move(base.props), right.props,
                             /*filtered=*/jc.on != nullptr,
                             /*left_outer=*/jc.left);
      if (joined && right.schema) {
        joined = Schema::Concat(*joined, *right.schema);
      } else {
        joined = std::nullopt;
      }
    }
    if (joined) {
      for (const query::JoinClause& jc : stmt.joins) {
        if (jc.on != nullptr) {
          CheckPredicate(*jc.on, *joined, span, diags_, /*fold=*/false);
        }
      }
      if (stmt.where != nullptr) {
        CheckPredicate(*stmt.where, *joined, span, diags_, /*fold=*/true);
      }
    }
    if (stmt.where != nullptr) base.props.card_min = 0;
    if (!joined) {
      PlanProperties p;
      apply_limit(&p);
      return {std::nullopt, std::move(p)};
    }

    // Output schema + properties.
    bool has_agg = false;
    for (const query::SelectItem& item : stmt.items) {
      if (item.agg.has_value()) has_agg = true;
    }
    bool bare_star = stmt.items.size() == 1 && stmt.items[0].star;

    std::optional<Schema> out;
    PlanProperties props;
    if (bare_star) {
      out = joined;
      props = base.props;
      if (stmt.distinct) {
        // Distinct over full rows: every column together forms a key, and
        // a non-empty input keeps at least one row.
        if (props.card_min > 0) props.card_min = 1;
        std::vector<std::string> all;
        for (const Column& c : out->columns()) all.push_back(c.name);
        if (!all.empty()) props.keys.push_back(std::move(all));
      }
    } else if (has_agg || !stmt.group_by.empty()) {
      ExprChecker checker(*joined, span, diags_);
      for (const ExprPtr& g : stmt.group_by) checker.Check(*g);
      std::vector<Column> cols;
      for (const query::SelectItem& item : stmt.items) {
        if (item.star) continue;  // engine rejects this shape at plan time
        if (item.agg.has_value()) {
          TypeInfo arg;
          if (item.expr != nullptr) arg = checker.Check(*item.expr);
          cols.emplace_back(DefaultName(item), AggType(*item.agg, arg),
                            true);
        } else if (item.expr != nullptr) {
          TypeInfo t = checker.Check(*item.expr);
          cols.emplace_back(DefaultName(item),
                            t.type.value_or(ValueType::kNull), t.nullable);
        }
      }
      out = Schema(std::move(cols));
      if (stmt.having != nullptr) {
        // HAVING binds against the aggregate's output schema (aliases).
        CheckPredicate(*stmt.having, *out, span, diags_, /*fold=*/true);
      }
      if (stmt.group_by.empty()) {
        // Global aggregate: exactly one row, always.
        props.card_min = 1;
        props.card_max = 1;
      } else {
        props.card_min = base.props.card_min > 0 ? 1 : 0;
        props.card_max = base.props.card_max;
        // When every GROUP BY expression is itself an output column, those
        // columns form a key of the grouped result.
        std::vector<std::string> group_names;
        bool all_out = true;
        for (const ExprPtr& g : stmt.group_by) {
          std::string gs = g->ToString();
          std::string name;
          for (const query::SelectItem& item : stmt.items) {
            if (!item.agg.has_value() && item.expr != nullptr &&
                item.expr->ToString() == gs) {
              name = DefaultName(item);
              break;
            }
          }
          if (name.empty()) {
            all_out = false;
            break;
          }
          group_names.push_back(std::move(name));
        }
        if (all_out && !group_names.empty()) {
          props.keys.push_back(std::move(group_names));
        }
      }
      // COUNT aggregates never yield NULL; grouping columns inherit the
      // source column's non-NULL guarantee.
      for (const query::SelectItem& item : stmt.items) {
        if (item.star) continue;
        if (item.agg.has_value()) {
          if (*item.agg == query::AggFn::kCountStar ||
              *item.agg == query::AggFn::kCount) {
            props.non_null.push_back(DefaultName(item));
          }
          continue;
        }
        if (item.expr == nullptr) continue;
        std::optional<std::string> src = ColumnNameOf(*item.expr);
        if (!src) continue;
        std::optional<size_t> si = ResolveIndex(*joined, *src);
        if (!si) continue;
        for (const std::string& nn : base.props.non_null) {
          if (ResolveIndex(*joined, nn) == si) {
            props.non_null.push_back(DefaultName(item));
            break;
          }
        }
      }
      if (stmt.having != nullptr) props.card_min = 0;
    } else {
      ExprChecker checker(*joined, span, diags_);
      std::vector<Column> cols;
      ProjectionMap pm{&*joined,
                       std::vector<std::string>(joined->columns().size())};
      std::vector<std::string> literal_non_null;
      for (const query::SelectItem& item : stmt.items) {
        if (item.star || item.expr == nullptr) {
          PlanProperties p;
          apply_limit(&p);
          return {std::nullopt, std::move(p)};
        }
        TypeInfo t = checker.Check(*item.expr);
        std::string name = DefaultName(item);
        cols.emplace_back(name, t.type.value_or(ValueType::kNull),
                          t.nullable);
        if (std::optional<std::string> src = ColumnNameOf(*item.expr)) {
          if (std::optional<size_t> idx = ResolveIndex(*joined, *src)) {
            if (pm.out_name_of[*idx].empty()) pm.out_name_of[*idx] = name;
          }
        } else if (std::optional<Value> lit = LiteralOf(*item.expr)) {
          if (!lit->is_null()) literal_non_null.push_back(name);
        }
      }
      out = Schema(std::move(cols));
      props = ProjectProps(base.props, pm);
      props.non_null.insert(props.non_null.end(), literal_non_null.begin(),
                            literal_non_null.end());
      if (stmt.distinct) {
        if (props.card_min > 0) props.card_min = 1;
        std::vector<std::string> all;
        for (const Column& c : out->columns()) all.push_back(c.name);
        if (!all.empty()) props.keys.push_back(std::move(all));
      }
    }

    // ORDER BY: a select alias, or any expression over the scan schema.
    // A sort replaces whatever order claim the input carried; the claim
    // covers the prefix of sort keys that are themselves output columns
    // (hidden sort columns are dropped after sorting, so positions past
    // the first non-output key say nothing about the visible order).
    if (!stmt.order_by.empty()) props.sort_order.clear();
    bool sort_prefix_open = true;
    for (const query::OrderItem& oi : stmt.order_by) {
      std::optional<size_t> out_idx;
      if (out) out_idx = ResolveIndex(*out, oi.expr->ToString());
      if (out_idx && sort_prefix_open) {
        props.sort_order.push_back(
            {out->columns()[*out_idx].name, !oi.ascending});
      } else {
        sort_prefix_open = false;
      }
      if (out && Resolve(*out, oi.expr->ToString()).found) continue;
      ExprChecker checker(*joined, span, diags_);
      checker.Check(*oi.expr);
    }

    apply_limit(&props);
    return {out, std::move(props)};
  }

  void AnalyzeStatement(const query::Statement& stmt, SourceSpan span) {
    if (stmt.select != nullptr) {
      AnalyzeSelect(*stmt.select, span);
    } else if (stmt.insert != nullptr) {
      AnalyzeInsert(*stmt.insert, span);
    } else if (stmt.update != nullptr) {
      AnalyzeUpdate(*stmt.update, span);
    } else if (stmt.del != nullptr) {
      AnalyzeDelete(*stmt.del, span);
    }
    // CREATE TABLE carries its own schema; nothing to cross-check.
  }

 private:
  NodeInfo AnalyzeTable(const WorkflowNode& node) {
    if (db_ == nullptr) return {};
    const storage::Table* t = db_->FindTable(node.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, node.span,
                  "no table '" + node.table + "' in catalog");
      return {};
    }
    return {t->schema(), TableProps(*t)};
  }

  NodeInfo AnalyzeSql(const WorkflowNode& node) {
    auto parsed = query::ParseSql(node.sql);
    if (!parsed.ok()) {
      diags_->Add(Code::kParseSql, node.span, parsed.status().message());
      return {};
    }
    if (parsed->select == nullptr) {
      diags_->Add(Code::kSqlNotSelect, node.span,
                  "workflow SQL nodes must be SELECT statements: " +
                      node.sql);
      return {};
    }
    return AnalyzeSelect(*parsed->select, node.span);
  }

  NodeInfo AnalyzeProject(const WorkflowNode& node) {
    NodeInfo in = Analyze(*node.children[0]);
    if (!in.schema) {
      // Cannot map claims without a schema; π still preserves cardinality.
      PlanProperties p;
      p.card_min = in.props.card_min;
      p.card_max = in.props.card_max;
      p.fusion_eligible = in.props.fusion_eligible;
      return {std::nullopt, std::move(p)};
    }
    ExprChecker checker(*in.schema, node.span, diags_);
    std::vector<Column> cols;
    ProjectionMap pm{&*in.schema,
                     std::vector<std::string>(in.schema->columns().size())};
    std::vector<std::string> literal_non_null;
    for (const auto& item : node.items) {
      TypeInfo t = checker.Check(*item.expr);
      cols.emplace_back(item.name, t.type.value_or(ValueType::kNull),
                        t.nullable);
      if (std::optional<std::string> src = ColumnNameOf(*item.expr)) {
        if (std::optional<size_t> idx = ResolveIndex(*in.schema, *src)) {
          if (pm.out_name_of[*idx].empty()) pm.out_name_of[*idx] = item.name;
        }
      } else if (std::optional<Value> lit = LiteralOf(*item.expr)) {
        if (!lit->is_null()) literal_non_null.push_back(item.name);
      }
    }
    PlanProperties p = ProjectProps(in.props, pm);
    p.non_null.insert(p.non_null.end(), literal_non_null.begin(),
                      literal_non_null.end());
    return {Schema(std::move(cols)), std::move(p)};
  }

  NodeInfo AnalyzeJoin(const WorkflowNode& node) {
    NodeInfo left = Analyze(*node.children[0]);
    NodeInfo right = Analyze(*node.children[1]);
    // The SQL compiler prefixes bare-table sides with the table name;
    // mirror that so qualified references resolve exactly.
    auto side_schema = [](const NodeInfo& info, const WorkflowNode& child)
        -> std::optional<Schema> {
      if (!info.schema) return std::nullopt;
      if (child.kind == NodeKind::kTable) {
        return info.schema->WithPrefix(child.table);
      }
      return info.schema;
    };
    std::optional<Schema> ls = side_schema(left, *node.children[0]);
    std::optional<Schema> rs = side_schema(right, *node.children[1]);
    if (node.predicate == nullptr) {
      diags_->Add(Code::kCartesianProduct, node.span,
                  "join has no condition; every row pairs with every row");
    } else if (ls && rs) {
      Schema joined = Schema::Concat(*ls, *rs);
      CheckPredicate(*node.predicate, joined, node.span, diags_,
                     /*fold=*/false);
      if (!HasEquiConjunct(*node.predicate, *ls, *rs)) {
        diags_->Add(Code::kCartesianProduct, node.span,
                    "join condition has no equality linking both sides; "
                    "executes as a filtered cross product: " +
                        node.predicate->ToString());
      }
    }
    // Property names get the same table prefix the side schemas did.
    if (node.children[0]->kind == NodeKind::kTable) {
      PrefixProps(&left.props, node.children[0]->table);
    }
    if (node.children[1]->kind == NodeKind::kTable) {
      PrefixProps(&right.props, node.children[1]->table);
    }
    PlanProperties p = JoinProps(std::move(left.props), right.props,
                                 /*filtered=*/node.predicate != nullptr,
                                 /*left_outer=*/false);
    if (!ls || !rs) {
      return {std::nullopt, std::move(p)};
    }
    return {Schema::Concat(*ls, *rs), std::move(p)};
  }

  /// Resolves a key expression, returning its type when it pins down.
  std::optional<ValueType> CheckKey(const ExprPtr& key,
                                    const std::optional<Schema>& schema,
                                    SourceSpan span, const char* what) {
    if (key == nullptr || !schema) return std::nullopt;
    DiagnosticBag local;
    ExprChecker checker(*schema, span, &local);
    TypeInfo t = checker.Check(*key);
    for (const Diagnostic& d : local.items()) {
      Diagnostic copy = d;
      copy.message = std::string(what) + ": " + copy.message;
      diags_->Add(copy.severity, copy.code, copy.span,
                  std::move(copy.message));
    }
    return t.type;
  }

  void CheckKeyPair(const WorkflowNode& node,
                    const std::optional<Schema>& child_schema,
                    const std::optional<Schema>& source_schema,
                    const char* op_name) {
    std::optional<ValueType> ct =
        CheckKey(node.child_key, child_schema, node.span,
                 op_name);
    std::optional<ValueType> st =
        CheckKey(node.source_key, source_schema, node.span, op_name);
    if (ct && st && *ct != *st &&
        !(IsNumericType(*ct) && IsNumericType(*st))) {
      diags_->Add(Code::kKeyTypeMismatch, node.span,
                  std::string(op_name) + " keys compare " +
                      ValueTypeName(*ct) + " with " + ValueTypeName(*st) +
                      " and can never match");
    }
  }

  NodeInfo AnalyzeExtend(const WorkflowNode& node) {
    NodeInfo child = Analyze(*node.children[0]);
    NodeInfo source = Analyze(*node.children[1]);
    CheckKeyPair(node, child.schema, source.schema, "extend");
    if (source.schema) {
      ExprChecker checker(*source.schema, node.span, diags_);
      for (const ExprPtr& c : node.collect) checker.Check(*c);
    }
    // ε appends one LIST column (never NULL — empty list when nothing
    // matches) to every row; everything else is preserved 1:1.
    child.props.non_null.push_back(node.column_name);
    if (!child.schema) return {std::nullopt, std::move(child.props)};
    std::vector<Column> cols = child.schema->columns();
    cols.emplace_back(node.column_name, ValueType::kList, false);
    return {Schema(std::move(cols)), std::move(child.props)};
  }

  NodeInfo AnalyzeRecommend(const WorkflowNode& node) {
    NodeInfo input = Analyze(*node.children[0]);
    NodeInfo reference = Analyze(*node.children[1]);
    const RecommendSpec& spec = node.recommend;

    std::optional<flexrecs::SimilaritySignature> sig;
    if (library_ != nullptr) {
      sig = library_->GetSignature(spec.similarity);
      if (!sig) {
        std::string names;
        for (const std::string& n : library_->Names()) {
          if (!names.empty()) names += ", ";
          names += n;
        }
        diags_->Add(Code::kUnknownSimilarity, node.span,
                    "no similarity function '" + spec.similarity +
                        "' (available: " + names + ")");
      }
    }

    auto check_attr = [&](const std::optional<Schema>& schema,
                          const std::string& attr, SimArgKind kind,
                          const char* what) -> std::optional<ValueType> {
      if (!schema || attr.empty()) return std::nullopt;
      ResolvedColumn rc = Resolve(*schema, attr);
      if (!rc.found) {
        diags_->Add(Code::kUnknownColumn, node.span,
                    std::string("recommend ") + what + " attribute '" +
                        attr + "' not found in schema [" +
                        schema->ToString() + "]");
        return std::nullopt;
      }
      if (rc.type && sig && !KindMatches(*rc.type, kind)) {
        diags_->Add(Code::kSimilaritySignature, node.span,
                    "similarity '" + spec.similarity + "' expects a " +
                        flexrecs::SimArgKindName(kind) + " " + what +
                        " attribute, but '" + attr + "' has type " +
                        ValueTypeName(*rc.type));
      }
      return rc.type;
    };
    check_attr(input.schema, spec.input_attr,
               sig ? sig->input : SimArgKind::kAny, "input");
    check_attr(reference.schema, spec.reference_attr,
               sig ? sig->reference : SimArgKind::kAny, "reference");

    if (spec.agg == RecommendAgg::kWeightedAvg && reference.schema) {
      ResolvedColumn rc = Resolve(*reference.schema, spec.weight_attr);
      if (!rc.found) {
        diags_->Add(Code::kUnknownColumn, node.span,
                    "recommend weight attribute '" + spec.weight_attr +
                        "' not found in schema [" +
                        reference.schema->ToString() + "]");
      } else if (rc.type && !IsNumericType(*rc.type)) {
        diags_->Add(Code::kWeightNotNumeric, node.span,
                    "weighted-avg weight attribute '" + spec.weight_attr +
                        "' has type " + ValueTypeName(*rc.type) +
                        ", expected a number");
      }
    }

    // Recommend keeps a subset of input rows (min_score / top-k filtering),
    // appends a never-NULL score column, and emits in score-descending
    // order on both the heap and stable-sort paths.
    PlanProperties p = std::move(input.props);
    p.card_min = 0;
    if (spec.top_k > 0) p.card_max = MinCard(spec.top_k, p.card_max);
    p.sort_order = {{spec.score_column, /*descending=*/true}};
    p.non_null.push_back(spec.score_column);
    p.fusion_eligible = false;
    if (!input.schema) return {std::nullopt, std::move(p)};
    std::vector<Column> cols = input.schema->columns();
    cols.emplace_back(spec.score_column, ValueType::kDouble, false);
    return {Schema(std::move(cols)), std::move(p)};
  }

  NodeInfo AnalyzeAntiJoin(const WorkflowNode& node) {
    NodeInfo child = Analyze(*node.children[0]);
    NodeInfo source = Analyze(*node.children[1]);
    CheckKeyPair(node, child.schema, source.schema, "except");
    // ▷ filters child rows in place: an ordered subset, like σ.
    child.props.card_min = 0;
    child.props.fusion_eligible = false;
    return {child.schema, std::move(child.props)};
  }

  std::string DefaultName(const query::SelectItem& item) const {
    if (!item.alias.empty()) return item.alias;
    if (item.agg.has_value()) {
      std::string base = query::AggFnName(*item.agg);
      return base + "(" + (item.expr ? item.expr->ToString() : "*") + ")";
    }
    return item.expr->ToString();
  }

  ValueType AggType(query::AggFn fn, const TypeInfo& arg) const {
    switch (fn) {
      case query::AggFn::kCountStar:
      case query::AggFn::kCount:
        return ValueType::kInt;
      case query::AggFn::kAvg:
        return ValueType::kDouble;
      case query::AggFn::kSum:
        return arg.type == ValueType::kInt ? ValueType::kInt
                                           : ValueType::kDouble;
      case query::AggFn::kMin:
      case query::AggFn::kMax:
        return arg.type.value_or(ValueType::kNull);
    }
    return ValueType::kNull;
  }

  void AnalyzeInsert(const query::InsertStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    const Schema& schema = t->schema();
    std::vector<const Column*> targets;
    if (stmt.columns.empty()) {
      for (const Column& c : schema.columns()) targets.push_back(&c);
    } else {
      for (const std::string& name : stmt.columns) {
        auto idx = schema.FindColumn(name);
        if (!idx) {
          diags_->Add(Code::kUnknownColumn, span,
                      "no column '" + name + "' in table '" + stmt.table +
                          "'");
          return;
        }
        targets.push_back(&schema.column(*idx));
      }
    }
    for (const auto& row : stmt.rows) {
      if (row.size() != targets.size()) {
        diags_->Add(Code::kArgumentType, span,
                    "INSERT row has " + std::to_string(row.size()) +
                        " values for " + std::to_string(targets.size()) +
                        " columns");
        continue;
      }
      for (size_t i = 0; i < row.size(); ++i) {
        std::optional<Value> lit = LiteralOf(*row[i]);
        if (!lit) continue;  // expression/parameter — checked at runtime
        const Column& col = *targets[i];
        if (lit->is_null()) {
          if (!col.nullable) {
            diags_->Add(Code::kArgumentType, span,
                        "NULL for NOT NULL column '" + col.name + "'");
          }
          continue;
        }
        if (col.type == ValueType::kNull) continue;
        bool ok = lit->type() == col.type ||
                  (col.type == ValueType::kDouble &&
                   lit->type() == ValueType::kInt);
        if (!ok) {
          diags_->Add(Code::kArgumentType, span,
                      std::string("value of type ") +
                          ValueTypeName(lit->type()) + " for column '" +
                          col.name + "' (" + ValueTypeName(col.type) + ")");
        }
      }
    }
  }

  void AnalyzeUpdate(const query::UpdateStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    const Schema& schema = t->schema();
    ExprChecker checker(schema, span, diags_);
    for (const auto& [name, expr] : stmt.assignments) {
      auto idx = schema.FindColumn(name);
      if (!idx) {
        diags_->Add(Code::kUnknownColumn, span,
                    "no column '" + name + "' in table '" + stmt.table +
                        "'");
        continue;
      }
      TypeInfo v = checker.Check(*expr);
      const Column& col = schema.column(*idx);
      if (v.type && col.type != ValueType::kNull && *v.type != col.type &&
          !(col.type == ValueType::kDouble &&
            *v.type == ValueType::kInt)) {
        diags_->Add(Code::kArgumentType, span,
                    std::string("assignment of ") + ValueTypeName(*v.type) +
                        " to column '" + col.name + "' (" +
                        ValueTypeName(col.type) + ")");
      }
    }
    if (stmt.where != nullptr) {
      CheckPredicate(*stmt.where, schema, span, diags_, /*fold=*/true);
    }
  }

  void AnalyzeDelete(const query::DeleteStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    if (stmt.where != nullptr) {
      CheckPredicate(*stmt.where, t->schema(), span, diags_,
                     /*fold=*/true);
    }
  }

  const storage::Database* db_;
  const flexrecs::SimilarityLibrary* library_;
  DiagnosticBag* diags_;
  std::map<const WorkflowNode*, NodeInfo>* memo_ = nullptr;
};

/// Analyzer metrics, resolved once per process (DESIGN.md §7 conventions).
struct AnalysisMetrics {
  obs::Histogram* run_ns;
  obs::Counter* runs;
  obs::Counter* errors;
  obs::Counter* warnings;
};

const AnalysisMetrics& Metrics() {
  static const AnalysisMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return AnalysisMetrics{reg.GetHistogram("cr_analysis_ns"),
                           reg.GetCounter("cr_analysis_runs_total"),
                           reg.GetCounter("cr_analysis_errors_total"),
                           reg.GetCounter("cr_analysis_warnings_total")};
  }();
  return m;
}

/// Counts findings added during one run into the obs registry.
class MetricScope {
 public:
  explicit MetricScope(const DiagnosticBag& diags)
      : diags_(diags),
        span_(obs::stage::kAnalysis, Metrics().run_ns,
              &obs::TraceSink::Default(), obs::ScopedSpan::Mode::kAlways),
        errors_before_(diags.error_count()),
        warnings_before_(diags.warning_count()) {
    Metrics().runs->Add();
  }
  ~MetricScope() {
    Metrics().errors->Add(diags_.error_count() - errors_before_);
    Metrics().warnings->Add(diags_.warning_count() - warnings_before_);
  }

 private:
  const DiagnosticBag& diags_;
  obs::ScopedSpan span_;
  size_t errors_before_;
  size_t warnings_before_;
};

/// Pre-order walk pairing each node with its memoized analysis result.
void CollectNodeProperties(const WorkflowNode& node, int depth,
                           const std::map<const WorkflowNode*, NodeInfo>& memo,
                           std::vector<NodeProperties>* out) {
  NodeProperties np;
  np.depth = depth;
  np.label = NodeLabel(node);
  auto it = memo.find(&node);
  if (it != memo.end()) {
    np.schema = it->second.schema;
    np.props = it->second.props;
  }
  out->push_back(std::move(np));
  for (const flexrecs::NodePtr& child : node.children) {
    CollectNodeProperties(*child, depth + 1, memo, out);
  }
}

}  // namespace

Analyzer::Analyzer(const storage::Database* db,
                   const flexrecs::SimilarityLibrary* library,
                   AnalyzerOptions options)
    : db_(db), library_(library), options_(options) {}

std::optional<Schema> Analyzer::AnalyzeWorkflow(const WorkflowNode& root,
                                                DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  NodeInfo info = checker.Analyze(root);
  LiveSet everything;
  everything.all = true;
  checker.MarkLive(root, everything);
  if (options_.pedantic && !info.props.bounded()) {
    diags->Add(Code::kUnboundedResult, root.span,
               "workflow result size is unbounded; consider TOPK or "
               "RECOMMEND ... TOP k");
  }
  return info.schema;
}

Analyzer::WorkflowAnalysis Analyzer::AnalyzeWorkflowProperties(
    const WorkflowNode& root, DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  std::map<const WorkflowNode*, NodeInfo> memo;
  checker.set_memo(&memo);
  NodeInfo info = checker.Analyze(root);
  LiveSet everything;
  everything.all = true;
  checker.MarkLive(root, everything);
  if (options_.pedantic && !info.props.bounded()) {
    diags->Add(Code::kUnboundedResult, root.span,
               "workflow result size is unbounded; consider TOPK or "
               "RECOMMEND ... TOP k");
  }
  WorkflowAnalysis result;
  result.schema = info.schema;
  result.props = std::move(info.props);
  CollectNodeProperties(root, 0, memo, &result.nodes);
  return result;
}

void Analyzer::AnalyzeStatement(const query::Statement& stmt,
                                DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  checker.AnalyzeStatement(stmt, SourceSpan{});
}

Analyzer::StatementAnalysis Analyzer::AnalyzeStatementProperties(
    const query::Statement& stmt, DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  if (stmt.select != nullptr) {
    NodeInfo info = checker.AnalyzeSelect(*stmt.select, SourceSpan{});
    return {info.schema, std::move(info.props)};
  }
  checker.AnalyzeStatement(stmt, SourceSpan{});
  return {};
}

bool Analyzer::VerifyWorkflowRewrite(const WorkflowNode& original,
                                     const WorkflowNode& rewritten,
                                     DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  size_t errors_before = diags->error_count();
  DiagnosticBag obag;
  DiagnosticBag rbag;
  WorkflowChecker ochecker(db_, library_, &obag);
  NodeInfo o = ochecker.Analyze(original);
  // An original that does not analyze cleanly is no baseline to hold the
  // rewrite against.
  if (obag.has_errors()) return true;
  WorkflowChecker rchecker(db_, library_, &rbag);
  NodeInfo r = rchecker.Analyze(rewritten);
  const SourceSpan span = rewritten.span;

  if (rbag.has_errors()) {
    diags->Add(Code::kRewriteUnanalyzable, span,
               "rewritten plan fails analysis the original passed: " +
                   std::string(rbag.ToStatus().message()));
  } else if (o.schema && !r.schema) {
    diags->Add(Code::kRewriteUnanalyzable, span,
               "rewritten plan's schema is no longer inferable");
  }

  if (o.schema && r.schema) {
    bool mismatch =
        o.schema->columns().size() != r.schema->columns().size();
    if (!mismatch) {
      for (size_t i = 0; i < o.schema->columns().size(); ++i) {
        const Column& oc = o.schema->columns()[i];
        const Column& rc = r.schema->columns()[i];
        if (ToLower(oc.name) != ToLower(rc.name) || oc.type != rc.type) {
          mismatch = true;
          break;
        }
      }
    }
    if (mismatch) {
      diags->Add(Code::kRewriteSchemaChanged, span,
                 "rewrite changed the output schema: [" +
                     o.schema->ToString() + "] became [" +
                     r.schema->ToString() + "]");
    }
  }

  if (r.props.card_max > o.props.card_max) {
    diags->Add(Code::kRewriteCardinalityWeakened, span,
               "rewrite weakened card_max from " +
                   CardBound(o.props.card_max) + " to " +
                   CardBound(r.props.card_max));
  }
  if (r.props.card_min < o.props.card_min) {
    diags->Add(Code::kRewriteCardinalityWeakened, span,
               "rewrite weakened card_min from " +
                   std::to_string(o.props.card_min) + " to " +
                   std::to_string(r.props.card_min));
  }

  // The original's sort claim must survive as a prefix of the rewritten's.
  if (!o.props.sort_order.empty()) {
    bool ok = r.props.sort_order.size() >= o.props.sort_order.size();
    for (size_t i = 0; ok && i < o.props.sort_order.size(); ++i) {
      const SortProp& os = o.props.sort_order[i];
      const SortProp& rs = r.props.sort_order[i];
      ok = ToLower(Unqualify(os.column)) == ToLower(Unqualify(rs.column)) &&
           os.descending == rs.descending;
    }
    if (!ok) {
      std::string want;
      for (const SortProp& s : o.props.sort_order) {
        if (!want.empty()) want += ", ";
        want += s.column + (s.descending ? " desc" : " asc");
      }
      diags->Add(Code::kRewriteSortLost, span,
                 "rewrite lost the sort guarantee (" + want + ")");
    }
  }

  // Every original key must survive — either verbatim or implied by a
  // rewritten key over a subset of its columns.
  for (const std::vector<std::string>& key : o.props.keys) {
    bool found = false;
    for (const std::vector<std::string>& rkey : r.props.keys) {
      if (SameKey(key, rkey) || KeySubset(rkey, key)) {
        found = true;
        break;
      }
    }
    if (!found) {
      diags->Add(Code::kRewriteKeyLost, span,
                 "rewrite lost uniqueness key (" + JoinList(key) + ")");
    }
  }

  for (const std::string& n : o.props.non_null) {
    if (!HasName(r.props.non_null, n)) {
      diags->Add(Code::kRewriteNullabilityWeakened, span,
                 "rewrite lost the non-NULL guarantee on '" + n + "'");
    }
  }

  return diags->error_count() == errors_before;
}

DiagnosticBag Analyzer::LintDsl(const std::string& text) const {
  DiagnosticBag diags;
  flexrecs::ParseError error;
  auto parsed = flexrecs::ParseWorkflow(text, &error);
  if (!parsed.ok()) {
    MetricScope metrics(diags);
    diags.Add(Code::kParseDsl, error.span,
              error.message.empty() ? parsed.status().message()
                                    : error.message);
    return diags;
  }
  AnalyzeWorkflow(**parsed, &diags);
  return diags;
}

DiagnosticBag Analyzer::LintSql(const std::string& sql) const {
  DiagnosticBag diags;
  auto parsed = query::ParseSql(sql);
  SourceSpan span{1, 1, static_cast<int>(sql.size())};
  if (!parsed.ok()) {
    MetricScope metrics(diags);
    diags.Add(Code::kParseSql, span, parsed.status().message());
    return diags;
  }
  MetricScope metrics(diags);
  WorkflowChecker checker(db_, library_, &diags);
  checker.AnalyzeStatement(*parsed, span);
  return diags;
}

}  // namespace courserank::analysis
