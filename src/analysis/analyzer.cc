#include "analysis/analyzer.h"

#include <set>
#include <vector>

#include "common/strings.h"
#include "core/workflow_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/sql_parser.h"
#include "storage/table.h"
#include "storage/value.h"

namespace courserank::analysis {

namespace {

using flexrecs::NodeKind;
using flexrecs::RecommendAgg;
using flexrecs::RecommendSpec;
using flexrecs::SimArgKind;
using flexrecs::WorkflowNode;
using query::BinaryOp;
using query::Expr;
using query::ExprPtr;
using query::UnaryOp;
using storage::Column;
using storage::Schema;
using storage::Value;
using storage::ValueType;
using storage::ValueTypeName;

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

/// Last dot-segment: "Ratings.SuID" -> "SuID".
std::string Unqualify(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

/// A column of type kNull in an inferred schema means "type unknown" —
/// either genuinely untyped (all-NULL Values relation) or beyond the
/// analyzer's modeling. Dependent checks skip it.
std::optional<ValueType> KnownType(const Column& c) {
  if (c.type == ValueType::kNull) return std::nullopt;
  return c.type;
}

/// Outcome of resolving a column reference against an inferred schema.
struct ResolvedColumn {
  bool found = false;
  std::optional<ValueType> type;  ///< nullopt = ambiguous or untyped
  bool nullable = true;
};

/// Resolution mirrors (and is deliberately more lenient than) runtime
/// binding: exact/qualified lookup first, then suffix-vs-suffix matching,
/// because the SQL compiler prefixes scan schemas with aliases in ways the
/// analyzer does not always reproduce. Ambiguity resolves to "found, type
/// unknown" — never a false unknown-column error.
ResolvedColumn Resolve(const Schema& schema, const std::string& name) {
  if (auto idx = schema.FindColumn(name)) {
    const Column& c = schema.column(*idx);
    return {true, KnownType(c), c.nullable};
  }
  std::string want = ToLower(Unqualify(name));
  const Column* match = nullptr;
  int count = 0;
  for (const Column& c : schema.columns()) {
    if (ToLower(Unqualify(c.name)) == want) {
      match = &c;
      ++count;
    }
  }
  if (count == 1) return {true, KnownType(*match), match->nullable};
  if (count > 1) return {true, std::nullopt, true};
  return {};
}

// ---- expression shape extraction --------------------------------------
//
// Expr subclasses are private to expr.cc, so structure is recovered through
// single-dispatch Accept: each probe visitor records the one callback that
// fires.

struct BinaryShape : query::ExprVisitor {
  std::optional<BinaryOp> op;
  const Expr* lhs = nullptr;
  const Expr* rhs = nullptr;
  void VisitBinary(BinaryOp o, const Expr& l, const Expr& r) override {
    op = o;
    lhs = &l;
    rhs = &r;
  }
};

BinaryShape ShapeOf(const Expr& e) {
  BinaryShape s;
  e.Accept(s);
  return s;
}

std::optional<std::string> ColumnNameOf(const Expr& e) {
  struct Probe : query::ExprVisitor {
    std::optional<std::string> name;
    void VisitColumn(const std::string& n) override { name = n; }
  } probe;
  e.Accept(probe);
  return probe.name;
}

std::optional<Value> LiteralOf(const Expr& e) {
  struct Probe : query::ExprVisitor {
    std::optional<Value> value;
    void VisitLiteral(const Value& v) override { value = v; }
  } probe;
  e.Accept(probe);
  return probe.value;
}

/// Flattens a top-level AND chain into its conjuncts.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  BinaryShape s = ShapeOf(e);
  if (s.op == BinaryOp::kAnd) {
    CollectConjuncts(*s.lhs, out);
    CollectConjuncts(*s.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Collects every referenced column, lowercased and unqualified, for the
/// liveness pass.
struct ColumnCollector : query::ExprVisitor {
  std::set<std::string>* out;
  explicit ColumnCollector(std::set<std::string>* o) : out(o) {}
  void VisitColumn(const std::string& n) override {
    out->insert(ToLower(Unqualify(n)));
  }
  void VisitUnary(UnaryOp, const Expr& operand) override {
    operand.Accept(*this);
  }
  void VisitBinary(BinaryOp, const Expr& l, const Expr& r) override {
    l.Accept(*this);
    r.Accept(*this);
  }
  void VisitIsNull(const Expr& operand, bool) override {
    operand.Accept(*this);
  }
  void VisitInList(const Expr& operand,
                   const std::vector<Value>&) override {
    operand.Accept(*this);
  }
  void VisitCall(const std::string&,
                 const std::vector<ExprPtr>& args) override {
    for (const ExprPtr& a : args) a->Accept(*this);
  }
};

/// Evaluates an expression that references no columns or parameters;
/// nullopt when it does (or evaluation itself fails, e.g. 1/0).
std::optional<Value> FoldConstant(const Expr& e) {
  ExprPtr clone = e.Clone();
  Schema empty;
  query::ParamMap no_params;
  if (!clone->Bind(empty, &no_params).ok()) return std::nullopt;
  auto v = clone->Eval({});
  if (!v.ok()) return std::nullopt;
  return std::move(v).value();
}

// ---- expression type checking -----------------------------------------

/// Inferred static type of an expression. `type` nullopt means the analyzer
/// cannot pin it down (parameter, ambiguous column, polymorphic function);
/// every check treats unknown as "could be fine".
struct TypeInfo {
  std::optional<ValueType> type;
  bool nullable = true;
};

/// Recursive type inference + checking over one schema. Emits CR102 and the
/// 2xx type diagnostics as it walks.
class ExprChecker : public query::ExprVisitor {
 public:
  ExprChecker(const Schema& schema, SourceSpan span, DiagnosticBag* diags)
      : schema_(schema), span_(span), diags_(diags) {}

  TypeInfo Check(const Expr& e) {
    result_ = TypeInfo{};
    e.Accept(*this);
    return result_;
  }

  void VisitLiteral(const Value& v) override {
    if (v.is_null()) {
      result_ = {std::nullopt, true};
    } else {
      result_ = {v.type(), false};
    }
  }

  void VisitColumn(const std::string& name) override {
    ResolvedColumn rc = Resolve(schema_, name);
    if (!rc.found) {
      Add(Code::kUnknownColumn, "no column '" + name + "' in schema [" +
                                    schema_.ToString() + "]");
      result_ = {std::nullopt, true};
      return;
    }
    result_ = {rc.type, rc.nullable};
  }

  void VisitParam(const std::string&) override {
    result_ = {std::nullopt, true};
  }

  void VisitUnary(UnaryOp op, const Expr& operand) override {
    TypeInfo t = Check(operand);
    if (op == UnaryOp::kNot) {
      if (t.type && *t.type != ValueType::kBool) {
        Add(Code::kArgumentType, "NOT applied to " + Name(t) +
                                     " operand: " + operand.ToString());
      }
      result_ = {ValueType::kBool, t.nullable};
    } else {
      if (t.type && !IsNumericType(*t.type)) {
        Add(Code::kArithmeticType,
            "unary '-' on " + Name(t) + " operand: " + operand.ToString());
      }
      result_ = {ValueType::kDouble, t.nullable};
    }
  }

  void VisitBinary(BinaryOp op, const Expr& lhs, const Expr& rhs) override {
    TypeInfo l = Check(lhs);
    TypeInfo r = Check(rhs);
    bool nullable = l.nullable || r.nullable;
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        // '+' doubles as string concatenation when BOTH sides are strings.
        if (op == BinaryOp::kAdd && l.type == ValueType::kString &&
            r.type == ValueType::kString) {
          result_ = {ValueType::kString, nullable};
          return;
        }
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (!t.type || IsNumericType(*t.type)) return;
          // A lone string under '+' might still concat with an
          // unknown-typed partner; bool/list never work.
          if (op == BinaryOp::kAdd && *t.type == ValueType::kString &&
              (!l.type || !r.type)) {
            return;
          }
          Add(Code::kArithmeticType,
              std::string("'") + query::BinaryOpName(op) + "' on " +
                  Name(t) + " operand: " + e.ToString());
        };
        flag(l, lhs);
        flag(r, rhs);
        if (l.type == ValueType::kInt && r.type == ValueType::kInt) {
          result_ = {ValueType::kInt, nullable};
        } else if (l.type && r.type && IsNumericType(*l.type) &&
                   IsNumericType(*r.type)) {
          result_ = {ValueType::kDouble, nullable};
        } else {
          result_ = {std::nullopt, nullable};
        }
        return;
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (l.type && r.type && *l.type != *r.type &&
            !(IsNumericType(*l.type) && IsNumericType(*r.type))) {
          Add(Code::kCrossTypeCompare,
              "comparison of " + Name(l) + " and " + Name(r) +
                  " is decided by type rank, never by value: (" +
                  lhs.ToString() + " " + query::BinaryOpName(op) + " " +
                  rhs.ToString() + ")");
        }
        result_ = {ValueType::kBool, nullable};
        return;
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (t.type && *t.type != ValueType::kBool) {
            Add(Code::kNonBooleanPredicate,
                std::string(query::BinaryOpName(op)) + " on " + Name(t) +
                    " operand: " + e.ToString());
          }
        };
        flag(l, lhs);
        flag(r, rhs);
        result_ = {ValueType::kBool, nullable};
        return;
      }
      case BinaryOp::kLike: {
        auto flag = [&](const TypeInfo& t, const Expr& e) {
          if (t.type && *t.type != ValueType::kString) {
            Add(Code::kArgumentType,
                "LIKE requires STRING operands, got " + Name(t) + ": " +
                    e.ToString());
          }
        };
        flag(l, lhs);
        flag(r, rhs);
        result_ = {ValueType::kBool, nullable};
        return;
      }
    }
    result_ = {std::nullopt, nullable};
  }

  void VisitIsNull(const Expr& operand, bool) override {
    Check(operand);
    result_ = {ValueType::kBool, false};
  }

  void VisitInList(const Expr& operand,
                   const std::vector<Value>& values) override {
    TypeInfo t = Check(operand);
    if (t.type && !values.empty()) {
      bool any_comparable = false;
      for (const Value& v : values) {
        if (v.is_null() || v.type() == *t.type ||
            (IsNumericType(v.type()) && IsNumericType(*t.type))) {
          any_comparable = true;
          break;
        }
      }
      if (!any_comparable) {
        Add(Code::kCrossTypeCompare,
            "IN list holds no value of type " + Name(t) + ": " +
                operand.ToString());
      }
    }
    result_ = {ValueType::kBool, t.nullable};
  }

  void VisitCall(const std::string& function,
                 const std::vector<ExprPtr>& args) override {
    std::vector<TypeInfo> ts;
    ts.reserve(args.size());
    for (const ExprPtr& a : args) ts.push_back(Check(*a));

    Status arity = query::CheckScalarCall(function, args.size());
    if (!arity.ok()) {
      Add(Code::kBadCall, arity.message());
      result_ = {std::nullopt, true};
      return;
    }

    auto want = [&](size_t i, ValueType t, const char* what) {
      if (ts[i].type && *ts[i].type != t &&
          !(IsNumericType(t) && IsNumericType(*ts[i].type))) {
        Add(Code::kArgumentType,
            function + " argument " + std::to_string(i + 1) + " must be " +
                std::string(what) + ", got " + Name(ts[i]) + ": " +
                args[i]->ToString());
      }
    };
    if (function == "LOWER" || function == "UPPER" ||
        function == "LENGTH") {
      want(0, ValueType::kString, "STRING");
    } else if (function == "ABS") {
      want(0, ValueType::kDouble, "numeric");
    } else if (function == "ROUND") {
      want(0, ValueType::kDouble, "numeric");
      want(1, ValueType::kDouble, "numeric");
    } else if (function == "CONTAINS") {
      want(0, ValueType::kString, "STRING");
      want(1, ValueType::kString, "STRING");
    } else if (function == "SUBSTR") {
      want(0, ValueType::kString, "STRING");
      want(1, ValueType::kDouble, "numeric");
      want(2, ValueType::kDouble, "numeric");
    } else if (function == "LIST_LEN") {
      want(0, ValueType::kList, "LIST");
    }

    bool nullable = false;
    for (const TypeInfo& t : ts) nullable = nullable || t.nullable;
    if (function == "COALESCE") {
      ValueType common = ValueType::kNull;
      bool have_common = false;
      bool mixed = false;
      bool all_nullable = true;
      for (const TypeInfo& t : ts) {
        if (!t.type) {
          mixed = true;
        } else if (!have_common) {
          common = *t.type;
          have_common = true;
        } else if (*t.type != common) {
          mixed = true;
        }
        all_nullable = all_nullable && t.nullable;
      }
      result_ = {have_common && !mixed ? std::optional<ValueType>(common)
                                       : std::nullopt,
                 all_nullable};
      return;
    }
    if (function == "ABS") {
      result_ = {ts[0].type && IsNumericType(*ts[0].type)
                     ? ts[0].type
                     : std::optional<ValueType>(),
                 nullable};
      return;
    }
    result_ = {query::ScalarFunctionResultType(function), nullable};
  }

 private:
  void Add(Code code, std::string message) {
    diags_->Add(code, span_, std::move(message));
  }

  static std::string Name(const TypeInfo& t) {
    return t.type ? ValueTypeName(*t.type) : "unknown";
  }

  const Schema& schema_;
  SourceSpan span_;
  DiagnosticBag* diags_;
  TypeInfo result_;
};

/// Full predicate treatment: type check, boolean-ness, and (when `fold`)
/// constant folding and never-true equality detection. `fold` is set for
/// filtering positions (σ, WHERE) where an always-false/true predicate is a
/// plan bug, and clear for join conditions (CR401 covers those).
void CheckPredicate(const Expr& pred, const Schema& schema, SourceSpan span,
                    DiagnosticBag* diags, bool fold) {
  ExprChecker checker(schema, span, diags);
  TypeInfo t = checker.Check(pred);
  if (t.type && *t.type != ValueType::kBool) {
    diags->Add(Code::kNonBooleanPredicate, span,
               "predicate has type " + std::string(ValueTypeName(*t.type)) +
                   ", expected BOOL: " + pred.ToString());
  }
  if (!fold) return;

  if (std::optional<Value> c = FoldConstant(pred)) {
    if (c->is_null() ||
        (c->type() == ValueType::kBool && !c->AsBool())) {
      diags->Add(Code::kAlwaysFalse, span,
                 std::string("predicate is always ") +
                     (c->is_null() ? "NULL" : "FALSE") +
                     "; the filter drops every row: " + pred.ToString());
    } else if (c->type() == ValueType::kBool && c->AsBool()) {
      diags->Add(Code::kAlwaysTrue, span,
                 "predicate is always TRUE; the filter keeps every row: " +
                     pred.ToString());
    }
    return;
  }

  // Not constant — but one never-true AND conjunct still empties the σ.
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    BinaryShape s = ShapeOf(*c);
    if (!s.op.has_value()) continue;
    bool comparison = *s.op == BinaryOp::kEq || *s.op == BinaryOp::kNe ||
                      *s.op == BinaryOp::kLt || *s.op == BinaryOp::kLe ||
                      *s.op == BinaryOp::kGt || *s.op == BinaryOp::kGe;
    if (!comparison) continue;
    // `x = NULL` is NULL for every row — the classic "meant IS NULL" bug.
    std::optional<Value> ll = LiteralOf(*s.lhs);
    std::optional<Value> rl = LiteralOf(*s.rhs);
    if ((ll && ll->is_null()) || (rl && rl->is_null())) {
      diags->Add(Code::kAlwaysFalse, span,
                 "comparison with NULL is never TRUE (use IS NULL): " +
                     c->ToString());
      break;
    }
    if (*s.op != BinaryOp::kEq) continue;
    DiagnosticBag scratch;
    ExprChecker quiet(schema, span, &scratch);
    TypeInfo l = quiet.Check(*s.lhs);
    TypeInfo r = quiet.Check(*s.rhs);
    if (l.type && r.type && *l.type != *r.type &&
        !(IsNumericType(*l.type) && IsNumericType(*r.type))) {
      diags->Add(Code::kAlwaysFalse, span,
                 "equality compares " + std::string(ValueTypeName(*l.type)) +
                     " with " + ValueTypeName(*r.type) +
                     " and can never hold: " + c->ToString());
      break;
    }
  }
}

/// True when `pred` has a top-level equality conjunct linking a column of
/// `left` with a column of `right` — the join can hash instead of degrading
/// to a filtered cross product.
bool HasEquiConjunct(const Expr& pred, const Schema& left,
                     const Schema& right) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    BinaryShape s = ShapeOf(*c);
    if (s.op != BinaryOp::kEq) continue;
    std::optional<std::string> lc = ColumnNameOf(*s.lhs);
    std::optional<std::string> rc = ColumnNameOf(*s.rhs);
    if (!lc || !rc) continue;
    bool l_in_left = Resolve(left, *lc).found;
    bool l_in_right = Resolve(right, *lc).found;
    bool r_in_left = Resolve(left, *rc).found;
    bool r_in_right = Resolve(right, *rc).found;
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) return true;
  }
  return false;
}

bool KindMatches(ValueType t, SimArgKind kind) {
  switch (kind) {
    case SimArgKind::kAny:
      return true;
    case SimArgKind::kString:
      return t == ValueType::kString;
    case SimArgKind::kNumber:
      return IsNumericType(t);
    case SimArgKind::kSet:
    case SimArgKind::kPairs:
      return t == ValueType::kList;
    case SimArgKind::kScalar:
      return t != ValueType::kList;
  }
  return true;
}

/// What the liveness pass knows is consumed above the current node. `all`
/// models "everything" (the workflow result, a SQL escape hatch); Project
/// and the reference sides of ε/▷/except narrow it.
struct LiveSet {
  bool all = false;
  std::set<std::string> names;  ///< lowercased, unqualified

  bool Contains(const std::string& name) const {
    return all || names.count(ToLower(Unqualify(name))) > 0;
  }
  void Insert(const std::string& name) {
    if (!name.empty()) names.insert(ToLower(Unqualify(name)));
  }
  void InsertExpr(const Expr* e) {
    if (e == nullptr) return;
    ColumnCollector c(&names);
    e->Accept(c);
  }
};

// ---- workflow walk -----------------------------------------------------

/// Everything inferred about one operator's output.
struct NodeInfo {
  std::optional<Schema> schema;
  bool bounded = false;  ///< result size capped independent of input data
};

class WorkflowChecker {
 public:
  WorkflowChecker(const storage::Database* db,
                  const flexrecs::SimilarityLibrary* library,
                  DiagnosticBag* diags)
      : db_(db), library_(library), diags_(diags) {}

  NodeInfo Analyze(const WorkflowNode& node) {
    switch (node.kind) {
      case NodeKind::kTable:
        return AnalyzeTable(node);
      case NodeKind::kSql:
        return AnalyzeSql(node);
      case NodeKind::kValues:
        return {node.values.schema, true};
      case NodeKind::kSelect: {
        NodeInfo in = Analyze(*node.children[0]);
        if (in.schema && node.predicate != nullptr) {
          CheckPredicate(*node.predicate, *in.schema, node.span, diags_,
                         /*fold=*/true);
        }
        return in;
      }
      case NodeKind::kProject:
        return AnalyzeProject(node);
      case NodeKind::kJoin:
        return AnalyzeJoin(node);
      case NodeKind::kExtend:
        return AnalyzeExtend(node);
      case NodeKind::kRecommend:
        return AnalyzeRecommend(node);
      case NodeKind::kAntiJoin:
        return AnalyzeAntiJoin(node);
      case NodeKind::kTopK: {
        NodeInfo in = Analyze(*node.children[0]);
        if (in.schema && !Resolve(*in.schema, node.order_column).found) {
          diags_->Add(Code::kUnknownColumn, node.span,
                      "no column '" + node.order_column +
                          "' to order by in schema [" +
                          in.schema->ToString() + "]");
        }
        in.bounded = true;
        return in;
      }
    }
    return {};
  }

  /// Top-down liveness: flags ε-extended columns nothing above consumes.
  void MarkLive(const WorkflowNode& node, const LiveSet& live) {
    switch (node.kind) {
      case NodeKind::kTable:
      case NodeKind::kSql:
      case NodeKind::kValues:
        return;
      case NodeKind::kSelect: {
        LiveSet child = live;
        child.InsertExpr(node.predicate.get());
        MarkLive(*node.children[0], child);
        return;
      }
      case NodeKind::kProject: {
        LiveSet child;
        for (const auto& item : node.items) {
          child.InsertExpr(item.expr.get());
        }
        MarkLive(*node.children[0], child);
        return;
      }
      case NodeKind::kJoin: {
        LiveSet side = live;
        side.InsertExpr(node.predicate.get());
        MarkLive(*node.children[0], side);
        MarkLive(*node.children[1], side);
        return;
      }
      case NodeKind::kExtend: {
        if (!live.Contains(node.column_name)) {
          diags_->Add(Code::kUnusedColumn, node.span,
                      "extended column '" + node.column_name +
                          "' is never consumed by any downstream operator");
        }
        LiveSet child = live;
        child.names.erase(ToLower(Unqualify(node.column_name)));
        child.InsertExpr(node.child_key.get());
        MarkLive(*node.children[0], child);
        LiveSet source;
        source.InsertExpr(node.source_key.get());
        for (const ExprPtr& c : node.collect) source.InsertExpr(c.get());
        MarkLive(*node.children[1], source);
        return;
      }
      case NodeKind::kRecommend: {
        LiveSet input = live;
        input.names.erase(ToLower(Unqualify(node.recommend.score_column)));
        input.Insert(node.recommend.input_attr);
        MarkLive(*node.children[0], input);
        LiveSet reference;
        reference.Insert(node.recommend.reference_attr);
        reference.Insert(node.recommend.weight_attr);
        MarkLive(*node.children[1], reference);
        return;
      }
      case NodeKind::kAntiJoin: {
        LiveSet child = live;
        child.InsertExpr(node.child_key.get());
        MarkLive(*node.children[0], child);
        LiveSet source;
        source.InsertExpr(node.source_key.get());
        MarkLive(*node.children[1], source);
        return;
      }
      case NodeKind::kTopK: {
        LiveSet child = live;
        child.Insert(node.order_column);
        MarkLive(*node.children[0], child);
        return;
      }
    }
  }

  /// Analyzes a parsed SELECT against the catalog; returns its inferred
  /// output schema (nullopt when a referenced table is unknown) and whether
  /// a LIMIT bounds it.
  NodeInfo AnalyzeSelect(const query::SelectStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return {};

    // Scan schemas, aliased exactly like SqlEngine::PlanSelect.
    auto effective_alias = [&](const query::TableRef& ref) {
      if (!ref.alias.empty()) return ref.alias;
      return stmt.joins.empty() ? std::string() : ref.table;
    };
    auto scan_schema =
        [&](const query::TableRef& ref) -> std::optional<Schema> {
      const storage::Table* t = db_->FindTable(ref.table);
      if (t == nullptr) {
        diags_->Add(Code::kUnknownTable, span,
                    "no table '" + ref.table + "' in catalog");
        return std::nullopt;
      }
      std::string alias = effective_alias(ref);
      if (alias.empty()) return t->schema();
      return t->schema().WithPrefix(alias);
    };

    std::optional<Schema> joined = scan_schema(stmt.from);
    for (const query::JoinClause& jc : stmt.joins) {
      std::optional<Schema> right = scan_schema(jc.table);
      if (jc.on == nullptr) {
        diags_->Add(Code::kCartesianProduct, span,
                    "JOIN of '" + jc.table.table +
                        "' has no ON condition; every row pairs with every "
                        "row");
      } else if (joined && right &&
                 !HasEquiConjunct(*jc.on, *joined, *right)) {
        diags_->Add(Code::kCartesianProduct, span,
                    "JOIN of '" + jc.table.table +
                        "' has no equality condition linking both sides; "
                        "executes as a filtered cross product");
      }
      if (joined && right) {
        joined = Schema::Concat(*joined, *right);
      } else {
        joined = std::nullopt;
      }
    }
    if (joined) {
      for (const query::JoinClause& jc : stmt.joins) {
        if (jc.on != nullptr) {
          CheckPredicate(*jc.on, *joined, span, diags_, /*fold=*/false);
        }
      }
      if (stmt.where != nullptr) {
        CheckPredicate(*stmt.where, *joined, span, diags_, /*fold=*/true);
      }
    }
    if (!joined) return {std::nullopt, stmt.limit.has_value()};

    // Output schema.
    bool has_agg = false;
    for (const query::SelectItem& item : stmt.items) {
      if (item.agg.has_value()) has_agg = true;
    }
    bool bare_star = stmt.items.size() == 1 && stmt.items[0].star;

    std::optional<Schema> out;
    if (bare_star) {
      out = joined;
    } else if (has_agg || !stmt.group_by.empty()) {
      ExprChecker checker(*joined, span, diags_);
      for (const ExprPtr& g : stmt.group_by) checker.Check(*g);
      std::vector<Column> cols;
      for (const query::SelectItem& item : stmt.items) {
        if (item.star) continue;  // engine rejects this shape at plan time
        if (item.agg.has_value()) {
          TypeInfo arg;
          if (item.expr != nullptr) arg = checker.Check(*item.expr);
          cols.emplace_back(DefaultName(item), AggType(*item.agg, arg),
                            true);
        } else if (item.expr != nullptr) {
          TypeInfo t = checker.Check(*item.expr);
          cols.emplace_back(DefaultName(item),
                            t.type.value_or(ValueType::kNull), t.nullable);
        }
      }
      out = Schema(std::move(cols));
      if (stmt.having != nullptr) {
        // HAVING binds against the aggregate's output schema (aliases).
        CheckPredicate(*stmt.having, *out, span, diags_, /*fold=*/true);
      }
    } else {
      ExprChecker checker(*joined, span, diags_);
      std::vector<Column> cols;
      for (const query::SelectItem& item : stmt.items) {
        if (item.star || item.expr == nullptr) {
          return {std::nullopt, stmt.limit.has_value()};
        }
        TypeInfo t = checker.Check(*item.expr);
        cols.emplace_back(DefaultName(item),
                          t.type.value_or(ValueType::kNull), t.nullable);
      }
      out = Schema(std::move(cols));
    }

    // ORDER BY: a select alias, or any expression over the scan schema.
    for (const query::OrderItem& oi : stmt.order_by) {
      if (out && Resolve(*out, oi.expr->ToString()).found) continue;
      ExprChecker checker(*joined, span, diags_);
      checker.Check(*oi.expr);
    }
    return {out, stmt.limit.has_value()};
  }

  void AnalyzeStatement(const query::Statement& stmt, SourceSpan span) {
    if (stmt.select != nullptr) {
      AnalyzeSelect(*stmt.select, span);
    } else if (stmt.insert != nullptr) {
      AnalyzeInsert(*stmt.insert, span);
    } else if (stmt.update != nullptr) {
      AnalyzeUpdate(*stmt.update, span);
    } else if (stmt.del != nullptr) {
      AnalyzeDelete(*stmt.del, span);
    }
    // CREATE TABLE carries its own schema; nothing to cross-check.
  }

 private:
  NodeInfo AnalyzeTable(const WorkflowNode& node) {
    if (db_ == nullptr) return {};
    const storage::Table* t = db_->FindTable(node.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, node.span,
                  "no table '" + node.table + "' in catalog");
      return {};
    }
    return {t->schema(), false};
  }

  NodeInfo AnalyzeSql(const WorkflowNode& node) {
    auto parsed = query::ParseSql(node.sql);
    if (!parsed.ok()) {
      diags_->Add(Code::kParseSql, node.span, parsed.status().message());
      return {};
    }
    if (parsed->select == nullptr) {
      diags_->Add(Code::kSqlNotSelect, node.span,
                  "workflow SQL nodes must be SELECT statements: " +
                      node.sql);
      return {};
    }
    return AnalyzeSelect(*parsed->select, node.span);
  }

  NodeInfo AnalyzeProject(const WorkflowNode& node) {
    NodeInfo in = Analyze(*node.children[0]);
    if (!in.schema) return {std::nullopt, in.bounded};
    ExprChecker checker(*in.schema, node.span, diags_);
    std::vector<Column> cols;
    for (const auto& item : node.items) {
      TypeInfo t = checker.Check(*item.expr);
      cols.emplace_back(item.name, t.type.value_or(ValueType::kNull),
                        t.nullable);
    }
    return {Schema(std::move(cols)), in.bounded};
  }

  NodeInfo AnalyzeJoin(const WorkflowNode& node) {
    NodeInfo left = Analyze(*node.children[0]);
    NodeInfo right = Analyze(*node.children[1]);
    // The SQL compiler prefixes bare-table sides with the table name;
    // mirror that so qualified references resolve exactly.
    auto side_schema = [](const NodeInfo& info, const WorkflowNode& child)
        -> std::optional<Schema> {
      if (!info.schema) return std::nullopt;
      if (child.kind == NodeKind::kTable) {
        return info.schema->WithPrefix(child.table);
      }
      return info.schema;
    };
    std::optional<Schema> ls = side_schema(left, *node.children[0]);
    std::optional<Schema> rs = side_schema(right, *node.children[1]);
    if (node.predicate == nullptr) {
      diags_->Add(Code::kCartesianProduct, node.span,
                  "join has no condition; every row pairs with every row");
    } else if (ls && rs) {
      Schema joined = Schema::Concat(*ls, *rs);
      CheckPredicate(*node.predicate, joined, node.span, diags_,
                     /*fold=*/false);
      if (!HasEquiConjunct(*node.predicate, *ls, *rs)) {
        diags_->Add(Code::kCartesianProduct, node.span,
                    "join condition has no equality linking both sides; "
                    "executes as a filtered cross product: " +
                        node.predicate->ToString());
      }
    }
    if (!ls || !rs) {
      return {std::nullopt, left.bounded && right.bounded};
    }
    return {Schema::Concat(*ls, *rs), left.bounded && right.bounded};
  }

  /// Resolves a key expression, returning its type when it pins down.
  std::optional<ValueType> CheckKey(const ExprPtr& key,
                                    const std::optional<Schema>& schema,
                                    SourceSpan span, const char* what) {
    if (key == nullptr || !schema) return std::nullopt;
    DiagnosticBag local;
    ExprChecker checker(*schema, span, &local);
    TypeInfo t = checker.Check(*key);
    for (const Diagnostic& d : local.items()) {
      Diagnostic copy = d;
      copy.message = std::string(what) + ": " + copy.message;
      diags_->Add(copy.severity, copy.code, copy.span,
                  std::move(copy.message));
    }
    return t.type;
  }

  void CheckKeyPair(const WorkflowNode& node,
                    const std::optional<Schema>& child_schema,
                    const std::optional<Schema>& source_schema,
                    const char* op_name) {
    std::optional<ValueType> ct =
        CheckKey(node.child_key, child_schema, node.span,
                 op_name);
    std::optional<ValueType> st =
        CheckKey(node.source_key, source_schema, node.span, op_name);
    if (ct && st && *ct != *st &&
        !(IsNumericType(*ct) && IsNumericType(*st))) {
      diags_->Add(Code::kKeyTypeMismatch, node.span,
                  std::string(op_name) + " keys compare " +
                      ValueTypeName(*ct) + " with " + ValueTypeName(*st) +
                      " and can never match");
    }
  }

  NodeInfo AnalyzeExtend(const WorkflowNode& node) {
    NodeInfo child = Analyze(*node.children[0]);
    NodeInfo source = Analyze(*node.children[1]);
    CheckKeyPair(node, child.schema, source.schema, "extend");
    if (source.schema) {
      ExprChecker checker(*source.schema, node.span, diags_);
      for (const ExprPtr& c : node.collect) checker.Check(*c);
    }
    if (!child.schema) return {std::nullopt, child.bounded};
    std::vector<Column> cols = child.schema->columns();
    cols.emplace_back(node.column_name, ValueType::kList, false);
    return {Schema(std::move(cols)), child.bounded};
  }

  NodeInfo AnalyzeRecommend(const WorkflowNode& node) {
    NodeInfo input = Analyze(*node.children[0]);
    NodeInfo reference = Analyze(*node.children[1]);
    const RecommendSpec& spec = node.recommend;

    std::optional<flexrecs::SimilaritySignature> sig;
    if (library_ != nullptr) {
      sig = library_->GetSignature(spec.similarity);
      if (!sig) {
        std::string names;
        for (const std::string& n : library_->Names()) {
          if (!names.empty()) names += ", ";
          names += n;
        }
        diags_->Add(Code::kUnknownSimilarity, node.span,
                    "no similarity function '" + spec.similarity +
                        "' (available: " + names + ")");
      }
    }

    auto check_attr = [&](const std::optional<Schema>& schema,
                          const std::string& attr, SimArgKind kind,
                          const char* what) -> std::optional<ValueType> {
      if (!schema || attr.empty()) return std::nullopt;
      ResolvedColumn rc = Resolve(*schema, attr);
      if (!rc.found) {
        diags_->Add(Code::kUnknownColumn, node.span,
                    std::string("recommend ") + what + " attribute '" +
                        attr + "' not found in schema [" +
                        schema->ToString() + "]");
        return std::nullopt;
      }
      if (rc.type && sig && !KindMatches(*rc.type, kind)) {
        diags_->Add(Code::kSimilaritySignature, node.span,
                    "similarity '" + spec.similarity + "' expects a " +
                        flexrecs::SimArgKindName(kind) + " " + what +
                        " attribute, but '" + attr + "' has type " +
                        ValueTypeName(*rc.type));
      }
      return rc.type;
    };
    check_attr(input.schema, spec.input_attr,
               sig ? sig->input : SimArgKind::kAny, "input");
    check_attr(reference.schema, spec.reference_attr,
               sig ? sig->reference : SimArgKind::kAny, "reference");

    if (spec.agg == RecommendAgg::kWeightedAvg && reference.schema) {
      ResolvedColumn rc = Resolve(*reference.schema, spec.weight_attr);
      if (!rc.found) {
        diags_->Add(Code::kUnknownColumn, node.span,
                    "recommend weight attribute '" + spec.weight_attr +
                        "' not found in schema [" +
                        reference.schema->ToString() + "]");
      } else if (rc.type && !IsNumericType(*rc.type)) {
        diags_->Add(Code::kWeightNotNumeric, node.span,
                    "weighted-avg weight attribute '" + spec.weight_attr +
                        "' has type " + ValueTypeName(*rc.type) +
                        ", expected a number");
      }
    }

    bool bounded = input.bounded || spec.top_k > 0;
    if (!input.schema) return {std::nullopt, bounded};
    std::vector<Column> cols = input.schema->columns();
    cols.emplace_back(spec.score_column, ValueType::kDouble, false);
    return {Schema(std::move(cols)), bounded};
  }

  NodeInfo AnalyzeAntiJoin(const WorkflowNode& node) {
    NodeInfo child = Analyze(*node.children[0]);
    NodeInfo source = Analyze(*node.children[1]);
    CheckKeyPair(node, child.schema, source.schema, "except");
    return {child.schema, child.bounded};
  }

  std::string DefaultName(const query::SelectItem& item) const {
    if (!item.alias.empty()) return item.alias;
    if (item.agg.has_value()) {
      std::string base = query::AggFnName(*item.agg);
      return base + "(" + (item.expr ? item.expr->ToString() : "*") + ")";
    }
    return item.expr->ToString();
  }

  ValueType AggType(query::AggFn fn, const TypeInfo& arg) const {
    switch (fn) {
      case query::AggFn::kCountStar:
      case query::AggFn::kCount:
        return ValueType::kInt;
      case query::AggFn::kAvg:
        return ValueType::kDouble;
      case query::AggFn::kSum:
        return arg.type == ValueType::kInt ? ValueType::kInt
                                           : ValueType::kDouble;
      case query::AggFn::kMin:
      case query::AggFn::kMax:
        return arg.type.value_or(ValueType::kNull);
    }
    return ValueType::kNull;
  }

  void AnalyzeInsert(const query::InsertStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    const Schema& schema = t->schema();
    std::vector<const Column*> targets;
    if (stmt.columns.empty()) {
      for (const Column& c : schema.columns()) targets.push_back(&c);
    } else {
      for (const std::string& name : stmt.columns) {
        auto idx = schema.FindColumn(name);
        if (!idx) {
          diags_->Add(Code::kUnknownColumn, span,
                      "no column '" + name + "' in table '" + stmt.table +
                          "'");
          return;
        }
        targets.push_back(&schema.column(*idx));
      }
    }
    for (const auto& row : stmt.rows) {
      if (row.size() != targets.size()) {
        diags_->Add(Code::kArgumentType, span,
                    "INSERT row has " + std::to_string(row.size()) +
                        " values for " + std::to_string(targets.size()) +
                        " columns");
        continue;
      }
      for (size_t i = 0; i < row.size(); ++i) {
        std::optional<Value> lit = LiteralOf(*row[i]);
        if (!lit) continue;  // expression/parameter — checked at runtime
        const Column& col = *targets[i];
        if (lit->is_null()) {
          if (!col.nullable) {
            diags_->Add(Code::kArgumentType, span,
                        "NULL for NOT NULL column '" + col.name + "'");
          }
          continue;
        }
        if (col.type == ValueType::kNull) continue;
        bool ok = lit->type() == col.type ||
                  (col.type == ValueType::kDouble &&
                   lit->type() == ValueType::kInt);
        if (!ok) {
          diags_->Add(Code::kArgumentType, span,
                      std::string("value of type ") +
                          ValueTypeName(lit->type()) + " for column '" +
                          col.name + "' (" + ValueTypeName(col.type) + ")");
        }
      }
    }
  }

  void AnalyzeUpdate(const query::UpdateStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    const Schema& schema = t->schema();
    ExprChecker checker(schema, span, diags_);
    for (const auto& [name, expr] : stmt.assignments) {
      auto idx = schema.FindColumn(name);
      if (!idx) {
        diags_->Add(Code::kUnknownColumn, span,
                    "no column '" + name + "' in table '" + stmt.table +
                        "'");
        continue;
      }
      TypeInfo v = checker.Check(*expr);
      const Column& col = schema.column(*idx);
      if (v.type && col.type != ValueType::kNull && *v.type != col.type &&
          !(col.type == ValueType::kDouble &&
            *v.type == ValueType::kInt)) {
        diags_->Add(Code::kArgumentType, span,
                    std::string("assignment of ") + ValueTypeName(*v.type) +
                        " to column '" + col.name + "' (" +
                        ValueTypeName(col.type) + ")");
      }
    }
    if (stmt.where != nullptr) {
      CheckPredicate(*stmt.where, schema, span, diags_, /*fold=*/true);
    }
  }

  void AnalyzeDelete(const query::DeleteStmt& stmt, SourceSpan span) {
    if (db_ == nullptr) return;
    const storage::Table* t = db_->FindTable(stmt.table);
    if (t == nullptr) {
      diags_->Add(Code::kUnknownTable, span,
                  "no table '" + stmt.table + "' in catalog");
      return;
    }
    if (stmt.where != nullptr) {
      CheckPredicate(*stmt.where, t->schema(), span, diags_,
                     /*fold=*/true);
    }
  }

  const storage::Database* db_;
  const flexrecs::SimilarityLibrary* library_;
  DiagnosticBag* diags_;
};

/// Analyzer metrics, resolved once per process (DESIGN.md §7 conventions).
struct AnalysisMetrics {
  obs::Histogram* run_ns;
  obs::Counter* runs;
  obs::Counter* errors;
  obs::Counter* warnings;
};

const AnalysisMetrics& Metrics() {
  static const AnalysisMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return AnalysisMetrics{reg.GetHistogram("cr_analysis_ns"),
                           reg.GetCounter("cr_analysis_runs_total"),
                           reg.GetCounter("cr_analysis_errors_total"),
                           reg.GetCounter("cr_analysis_warnings_total")};
  }();
  return m;
}

/// Counts findings added during one run into the obs registry.
class MetricScope {
 public:
  explicit MetricScope(const DiagnosticBag& diags)
      : diags_(diags),
        span_(obs::stage::kAnalysis, Metrics().run_ns,
              &obs::TraceSink::Default(), obs::ScopedSpan::Mode::kAlways),
        errors_before_(diags.error_count()),
        warnings_before_(diags.warning_count()) {
    Metrics().runs->Add();
  }
  ~MetricScope() {
    Metrics().errors->Add(diags_.error_count() - errors_before_);
    Metrics().warnings->Add(diags_.warning_count() - warnings_before_);
  }

 private:
  const DiagnosticBag& diags_;
  obs::ScopedSpan span_;
  size_t errors_before_;
  size_t warnings_before_;
};

}  // namespace

Analyzer::Analyzer(const storage::Database* db,
                   const flexrecs::SimilarityLibrary* library,
                   AnalyzerOptions options)
    : db_(db), library_(library), options_(options) {}

std::optional<Schema> Analyzer::AnalyzeWorkflow(const WorkflowNode& root,
                                                DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  NodeInfo info = checker.Analyze(root);
  LiveSet everything;
  everything.all = true;
  checker.MarkLive(root, everything);
  if (options_.pedantic && !info.bounded) {
    diags->Add(Code::kUnboundedResult, root.span,
               "workflow result size is unbounded; consider TOPK or "
               "RECOMMEND ... TOP k");
  }
  return info.schema;
}

void Analyzer::AnalyzeStatement(const query::Statement& stmt,
                                DiagnosticBag* diags) const {
  MetricScope metrics(*diags);
  WorkflowChecker checker(db_, library_, diags);
  checker.AnalyzeStatement(stmt, SourceSpan{});
}

DiagnosticBag Analyzer::LintDsl(const std::string& text) const {
  DiagnosticBag diags;
  flexrecs::ParseError error;
  auto parsed = flexrecs::ParseWorkflow(text, &error);
  if (!parsed.ok()) {
    MetricScope metrics(diags);
    diags.Add(Code::kParseDsl, error.span,
              error.message.empty() ? parsed.status().message()
                                    : error.message);
    return diags;
  }
  AnalyzeWorkflow(**parsed, &diags);
  return diags;
}

DiagnosticBag Analyzer::LintSql(const std::string& sql) const {
  DiagnosticBag diags;
  auto parsed = query::ParseSql(sql);
  SourceSpan span{1, 1, static_cast<int>(sql.size())};
  if (!parsed.ok()) {
    MetricScope metrics(diags);
    diags.Add(Code::kParseSql, span, parsed.status().message());
    return diags;
  }
  MetricScope metrics(diags);
  WorkflowChecker checker(db_, library_, &diags);
  checker.AnalyzeStatement(*parsed, span);
  return diags;
}

}  // namespace courserank::analysis
