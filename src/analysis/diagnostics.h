#ifndef COURSERANK_ANALYSIS_DIAGNOSTICS_H_
#define COURSERANK_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/source_span.h"
#include "common/status.h"

namespace courserank::analysis {

/// How bad a finding is. Errors mean the plan would fail (or silently do
/// nothing sensible) at runtime and the engines refuse to execute it;
/// warnings flag suspicious-but-executable plans; notes are advice.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// "note", "warning", or "error".
const char* SeverityName(Severity severity);

/// Stable diagnostic codes. The numeric value is part of the contract
/// (rendered as CRnnn, asserted by tests and grep-able from CI logs), so
/// codes are never renumbered — retired checks leave holes.
///
/// Bands: 0xx syntax, 1xx name resolution, 2xx type checking, 3xx
/// predicate semantics, 4xx plan shape, 5xx rewrite soundness.
enum class Code {
  kParseDsl = 1,             ///< CR001 workflow DSL parse error
  kParseSql = 2,             ///< CR002 SQL parse error
  kSqlNotSelect = 3,         ///< CR003 workflow SQL node is not a SELECT
  kUnknownTable = 101,       ///< CR101 table not in catalog
  kUnknownColumn = 102,      ///< CR102 column not in scope
  kUnknownSimilarity = 103,  ///< CR103 similarity function not registered
  kCrossTypeCompare = 201,   ///< CR201 comparison can never be true
  kNonBooleanPredicate = 202,///< CR202 predicate is not boolean
  kArithmeticType = 203,     ///< CR203 arithmetic on non-numeric operand
  kArgumentType = 204,       ///< CR204 function/operator argument type
  kBadCall = 205,            ///< CR205 unknown function or wrong arity
  kSimilaritySignature = 206,///< CR206 attribute violates similarity signature
  kWeightNotNumeric = 207,   ///< CR207 weighted-avg weight attr not numeric
  kKeyTypeMismatch = 208,    ///< CR208 extend/except key types can never match
  kAlwaysFalse = 301,        ///< CR301 σ predicate can never hold
  kAlwaysTrue = 302,         ///< CR302 σ predicate always holds
  kCartesianProduct = 401,   ///< CR401 join without an equality conjunct
  kUnboundedResult = 402,    ///< CR402 result size unbounded (pedantic)
  kUnusedColumn = 403,       ///< CR403 extended column never consumed
  kRewriteUnanalyzable = 500,///< CR500 rewritten plan failed re-analysis
  kRewriteSchemaChanged = 501,     ///< CR501 rewrite changed output schema
  kRewriteCardinalityWeakened = 502,///< CR502 rewrite weakened card bounds
  kRewriteSortLost = 503,          ///< CR503 rewrite lost a sort guarantee
  kRewriteKeyLost = 504,           ///< CR504 rewrite lost a key/uniqueness
  kRewriteNullabilityWeakened = 505,///< CR505 rewrite made a column nullable
  kStaticClaimViolation = 510,     ///< CR510 runtime output broke a claim
};

/// "CR102" — zero-padded three-digit rendering.
std::string CodeName(Code code);

/// The severity a code carries unless the reporter overrides it.
Severity DefaultSeverity(Code code);

/// One finding: where, what, how bad.
struct Diagnostic {
  Code code;
  Severity severity;
  SourceSpan span;  ///< invalid for programmatically built nodes
  std::string message;

  /// "error CR102 at 3:1: no column 'Titel' ..." (span omitted when
  /// unknown).
  std::string ToString() const;
};

/// Ordered collection of findings from one analysis run, with renderers for
/// humans (ToText) and machines (ToJson).
class DiagnosticBag {
 public:
  /// Appends with the code's default severity.
  void Add(Code code, SourceSpan span, std::string message);
  void Add(Severity severity, Code code, SourceSpan span,
           std::string message);

  const std::vector<Diagnostic>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  size_t error_count() const;
  size_t warning_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// True when any diagnostic carries `code`.
  bool Has(Code code) const;

  /// One diagnostic per line.
  std::string ToText() const;

  /// {"diagnostics":[{"code":"CR102","severity":"error","line":3,
  ///   "col":1,"len":12,"message":"..."}],"errors":1,"warnings":0}
  /// line/col/len are omitted for spanless diagnostics.
  std::string ToJson() const;

  /// OK when no errors; otherwise InvalidArgument carrying every error line
  /// (warnings excluded) so engine callers surface the full story at once.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace courserank::analysis

#endif  // COURSERANK_ANALYSIS_DIAGNOSTICS_H_
