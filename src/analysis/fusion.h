#ifndef COURSERANK_ANALYSIS_FUSION_H_
#define COURSERANK_ANALYSIS_FUSION_H_

#include <string>
#include <vector>

#include "core/workflow.h"

namespace courserank::analysis {

/// Static fusion-eligibility analysis for the compilation tier
/// (DESIGN.md §16). The analyzer's `PlanProperties::fusion_eligible` bit
/// marks which σ/π/ε nodes sit over fusable inputs; the checks here decide
/// whether each such operator can legally run as a stage of a
/// query::FusedPipelineNode, and extract the maximal chains the FlexRecs
/// compiler collapses. The engine and `courserank_lint --properties` share
/// this logic so EXPLAIN output and lint output never disagree about why a
/// chain broke.

/// Verdict for one workflow operator considered as a fused stage.
struct FusedStageCheck {
  bool eligible = false;
  /// Human-readable bailout reason when !eligible ("predicate outside the
  /// compilable subset", "computed projection item", ...). Empty otherwise.
  std::string reason;
};

/// Stage legality (DESIGN.md §16): σ predicates must lie in the
/// query::CompilableShape subset (so the fused pass cannot error mid-row
/// where the interpreter would succeed); π items and ε keys / collect
/// expressions must be bare column references. Non-σ/π/ε operators are
/// never eligible.
FusedStageCheck CheckFusedStage(const flexrecs::WorkflowNode& node);

/// One member of a σ/π/ε run, in pipeline (producer-first) order.
struct FusionChainNode {
  const flexrecs::WorkflowNode* node = nullptr;
  bool eligible = false;
  std::string reason;  ///< why this member breaks the chain, when !eligible
};

/// A maximal run of adjacent σ/π/ε operators along a workflow spine. Runs
/// shorter than two operators are not reported — a single stage has
/// nothing to fuse with.
struct FusionChain {
  std::vector<FusionChainNode> nodes;
};

/// Walks the workflow tree and reports every maximal σ/π/ε run together
/// with per-member eligibility. Chain-order legality is applied here too:
/// a σ above a π is marked ineligible ("filter over a computed projection
/// schema"), because projected column types are data-dependent and the
/// fused filter compiles against the static chain schema.
std::vector<FusionChain> ExtractFusionChains(
    const flexrecs::WorkflowNode& root);

/// Compact σ/π/ε label for chain rendering ("σ(Year = $year)", "π(a, b)",
/// "ε(+ratings)").
std::string FusionStageLabel(const flexrecs::WorkflowNode& node);

/// Renders chains for `courserank_lint --properties` and the golden tests:
/// one line per chain, a "fuses:" line for every eligible sub-run of >= 2
/// stages, and a "break at" line per ineligible member.
std::string RenderFusionChains(const std::vector<FusionChain>& chains);

}  // namespace courserank::analysis

#endif  // COURSERANK_ANALYSIS_FUSION_H_
