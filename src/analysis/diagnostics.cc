#include "analysis/diagnostics.h"

#include <cstdio>

namespace courserank::analysis {

namespace {

/// JSON string escaping (control characters, quote, backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string CodeName(Code code) {
  int n = static_cast<int>(code);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "CR%03d", n);
  return buf;
}

Severity DefaultSeverity(Code code) {
  switch (code) {
    case Code::kParseDsl:
    case Code::kParseSql:
    case Code::kSqlNotSelect:
    case Code::kUnknownTable:
    case Code::kUnknownColumn:
    case Code::kUnknownSimilarity:
    case Code::kNonBooleanPredicate:
    case Code::kArithmeticType:
    case Code::kArgumentType:
    case Code::kBadCall:
    case Code::kSimilaritySignature:
    case Code::kWeightNotNumeric:
    case Code::kKeyTypeMismatch:
    case Code::kRewriteUnanalyzable:
    case Code::kRewriteSchemaChanged:
    case Code::kRewriteCardinalityWeakened:
    case Code::kRewriteSortLost:
    case Code::kRewriteKeyLost:
    case Code::kRewriteNullabilityWeakened:
    case Code::kStaticClaimViolation:
      return Severity::kError;
    case Code::kCrossTypeCompare:
    case Code::kAlwaysFalse:
    case Code::kAlwaysTrue:
    case Code::kCartesianProduct:
    case Code::kUnboundedResult:
    case Code::kUnusedColumn:
      return Severity::kWarning;
  }
  return Severity::kError;
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " ";
  out += CodeName(code);
  if (span.valid()) {
    out += " at " + span.ToString();
  }
  out += ": " + message;
  return out;
}

void DiagnosticBag::Add(Code code, SourceSpan span, std::string message) {
  Add(DefaultSeverity(code), code, span, std::move(message));
}

void DiagnosticBag::Add(Severity severity, Code code, SourceSpan span,
                        std::string message) {
  // Workflow references expand by cloning subtrees, so the same finding can
  // surface once per expansion; exact repeats carry no information.
  for (const Diagnostic& d : items_) {
    if (d.code == code && d.severity == severity && d.span == span &&
        d.message == message) {
      return;
    }
  }
  items_.push_back({code, severity, span, std::move(message)});
}

size_t DiagnosticBag::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t DiagnosticBag::warning_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

bool DiagnosticBag::Has(Code code) const {
  for (const Diagnostic& d : items_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticBag::ToText() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.ToString() + "\n";
  }
  return out;
}

std::string DiagnosticBag::ToJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < items_.size(); ++i) {
    const Diagnostic& d = items_[i];
    if (i > 0) out += ",";
    out += "{\"code\":\"" + CodeName(d.code) + "\"";
    out += ",\"severity\":\"" + std::string(SeverityName(d.severity)) + "\"";
    if (d.span.valid()) {
      out += ",\"line\":" + std::to_string(d.span.line);
      out += ",\"col\":" + std::to_string(d.span.col);
      out += ",\"len\":" + std::to_string(d.span.len);
    }
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  out += "],\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += "}";
  return out;
}

Status DiagnosticBag::ToStatus() const {
  if (!has_errors()) return Status::OK();
  std::string msg;
  for (const Diagnostic& d : items_) {
    if (d.severity != Severity::kError) continue;
    if (!msg.empty()) msg += "; ";
    msg += d.ToString();
  }
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace courserank::analysis
