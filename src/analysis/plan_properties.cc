#include "analysis/plan_properties.h"

namespace courserank::analysis {

namespace {

std::string CardString(size_t n) {
  return n == kUnboundedCard ? std::string("*") : std::to_string(n);
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& names) {
  std::string out = "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(names[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedCard || b == kUnboundedCard) return kUnboundedCard;
  if (a > kUnboundedCard / b) return kUnboundedCard;
  return a * b;
}

std::string PlanProperties::ToString() const {
  std::string out = "{card=" + CardString(card_min) + ".." +
                    CardString(card_max);
  if (!sort_order.empty()) {
    std::string list;
    for (const SortProp& s : sort_order) {
      if (!list.empty()) list += ", ";
      list += s.column + (s.descending ? " desc" : " asc");
    }
    out += " sort=(" + list + ")";
  }
  for (const std::vector<std::string>& k : keys) {
    out += " key=(" + JoinNames(k) + ")";
  }
  if (!non_null.empty()) out += " nonnull=(" + JoinNames(non_null) + ")";
  if (!dict_id_safe.empty()) {
    out += " dict=(" + JoinNames(dict_id_safe) + ")";
  }
  if (fusion_eligible) out += " fusable";
  out += "}";
  return out;
}

query::StaticClaims PlanProperties::ToStaticClaims() const {
  query::StaticClaims claims;
  claims.card_min =
      card_min == kUnboundedCard ? query::StaticClaims::kUnbounded : card_min;
  claims.card_max =
      card_max == kUnboundedCard ? query::StaticClaims::kUnbounded : card_max;
  for (const SortProp& s : sort_order) {
    claims.sort.push_back({s.column, !s.descending});
  }
  if (!keys.empty()) claims.key = keys.front();
  claims.non_null = non_null;
  return claims;
}

std::string RenderPropertiesTable(const std::vector<NodeProperties>& nodes) {
  std::string out;
  for (const NodeProperties& n : nodes) {
    out.append(static_cast<size_t>(n.depth) * 2, ' ');
    out += n.label;
    out += "  ";
    out += n.props.ToString();
    if (n.schema.has_value()) {
      out += "  [" + n.schema->ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

std::string PropertiesToJson(const std::vector<NodeProperties>& nodes) {
  std::string out = "[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeProperties& n = nodes[i];
    if (i > 0) out += ",";
    out += "{\"depth\":" + std::to_string(n.depth);
    out += ",\"node\":\"" + JsonEscape(n.label) + "\"";
    if (n.schema.has_value()) {
      out += ",\"schema\":\"" + JsonEscape(n.schema->ToString()) + "\"";
    }
    out += ",\"card_min\":" +
           (n.props.card_min == kUnboundedCard
                ? std::string("null")
                : std::to_string(n.props.card_min));
    out += ",\"card_max\":" +
           (n.props.card_max == kUnboundedCard
                ? std::string("null")
                : std::to_string(n.props.card_max));
    out += ",\"keys\":[";
    for (size_t k = 0; k < n.props.keys.size(); ++k) {
      if (k > 0) out += ",";
      out += JsonStringArray(n.props.keys[k]);
    }
    out += "]";
    out += ",\"sort\":[";
    for (size_t s = 0; s < n.props.sort_order.size(); ++s) {
      if (s > 0) out += ",";
      out += "{\"column\":\"" + JsonEscape(n.props.sort_order[s].column) +
             "\",\"descending\":" +
             (n.props.sort_order[s].descending ? "true" : "false") + "}";
    }
    out += "]";
    out += ",\"non_null\":" + JsonStringArray(n.props.non_null);
    out += ",\"dict_id_safe\":" + JsonStringArray(n.props.dict_id_safe);
    out += ",\"fusion_eligible\":";
    out += n.props.fusion_eligible ? "true" : "false";
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace courserank::analysis
