#include "analysis/fusion.h"

#include <optional>

#include "query/expr.h"
#include "query/vector_ops.h"

namespace courserank::analysis {

namespace {

using flexrecs::NodeKind;
using flexrecs::WorkflowNode;

/// Captures the name of a bare column-reference expression and nothing
/// else — the shape the fused project/extend fast paths execute as an
/// index copy.
class BareColumn final : public query::ExprVisitor {
 public:
  std::optional<std::string> name;
  void VisitColumn(const std::string& n) override { name = n; }
};

bool IsBareColumn(const query::Expr& e) {
  BareColumn v;
  e.Accept(v);
  return v.name.has_value();
}

bool IsPipelineKind(NodeKind k) {
  return k == NodeKind::kSelect || k == NodeKind::kProject ||
         k == NodeKind::kExtend;
}

void Walk(const WorkflowNode& node, std::vector<FusionChain>* out) {
  if (IsPipelineKind(node.kind)) {
    // Gather the maximal run down the operator spine (input = children[0]).
    std::vector<const WorkflowNode*> run;
    const WorkflowNode* below = &node;
    while (below != nullptr && IsPipelineKind(below->kind)) {
      run.push_back(below);
      below = below->children.empty() ? nullptr : below->children[0].get();
    }
    if (run.size() >= 2) {
      // Pipeline order is producer-first: reverse of the top-down spine.
      FusionChain chain;
      bool seen_project = false;
      for (auto it = run.rbegin(); it != run.rend(); ++it) {
        FusionChainNode member;
        member.node = *it;
        FusedStageCheck check = CheckFusedStage(**it);
        member.eligible = check.eligible;
        member.reason = std::move(check.reason);
        if (member.eligible && (*it)->kind == NodeKind::kSelect &&
            seen_project) {
          member.eligible = false;
          member.reason = "filter over a computed projection schema";
        }
        if (member.eligible && (*it)->kind == NodeKind::kProject) {
          seen_project = true;
        }
        chain.nodes.push_back(std::move(member));
      }
      out->push_back(std::move(chain));
    }
    // Recurse into side inputs (the ε source) and whatever the run sits on.
    for (const WorkflowNode* member : run) {
      for (size_t c = 1; c < member->children.size(); ++c) {
        Walk(*member->children[c], out);
      }
    }
    if (below != nullptr) Walk(*below, out);
    return;
  }
  for (const auto& child : node.children) Walk(*child, out);
}

}  // namespace

FusedStageCheck CheckFusedStage(const WorkflowNode& node) {
  FusedStageCheck check;
  switch (node.kind) {
    case NodeKind::kSelect:
      if (node.predicate == nullptr) {
        check.reason = "missing predicate";
        return check;
      }
      if (!query::CompilableShape(*node.predicate)) {
        check.reason = "predicate outside the compilable subset";
        return check;
      }
      check.eligible = true;
      return check;
    case NodeKind::kProject:
      if (node.items.empty()) {
        check.reason = "empty projection";
        return check;
      }
      for (const auto& item : node.items) {
        if (item.expr == nullptr || !IsBareColumn(*item.expr)) {
          check.reason = "computed projection item \"" + item.name + "\"";
          return check;
        }
      }
      check.eligible = true;
      return check;
    case NodeKind::kExtend:
      if (node.child_key == nullptr || !IsBareColumn(*node.child_key) ||
          node.source_key == nullptr || !IsBareColumn(*node.source_key)) {
        check.reason = "computed ε key";
        return check;
      }
      for (const auto& c : node.collect) {
        if (c == nullptr || !IsBareColumn(*c)) {
          check.reason = "computed ε collect expression";
          return check;
        }
      }
      check.eligible = true;
      return check;
    default:
      check.reason = "not a σ/π/ε operator";
      return check;
  }
}

std::vector<FusionChain> ExtractFusionChains(const WorkflowNode& root) {
  std::vector<FusionChain> chains;
  Walk(root, &chains);
  return chains;
}

std::string FusionStageLabel(const WorkflowNode& node) {
  switch (node.kind) {
    case NodeKind::kSelect:
      return "σ(" +
             (node.predicate != nullptr ? node.predicate->ToString() : "?") +
             ")";
    case NodeKind::kProject: {
      std::string list;
      for (size_t i = 0; i < node.items.size(); ++i) {
        if (i > 0) list += ", ";
        list += node.items[i].name;
      }
      return "π(" + list + ")";
    }
    case NodeKind::kExtend:
      return "ε(+" + node.column_name + ")";
    default:
      return "?";
  }
}

std::string RenderFusionChains(const std::vector<FusionChain>& chains) {
  if (chains.empty()) return "fusion chains: (none)\n";
  std::string out = "fusion chains:\n";
  for (const FusionChain& chain : chains) {
    out += "  ";
    for (size_t i = 0; i < chain.nodes.size(); ++i) {
      if (i > 0) out += " -> ";
      out += FusionStageLabel(*chain.nodes[i].node);
    }
    out += "\n";
    // Maximal eligible sub-runs of >= 2 stages actually fuse.
    size_t start = 0;
    bool any_group = false;
    while (start < chain.nodes.size()) {
      if (!chain.nodes[start].eligible) {
        ++start;
        continue;
      }
      size_t end = start;
      while (end < chain.nodes.size() && chain.nodes[end].eligible) ++end;
      if (end - start >= 2) {
        any_group = true;
        out += "    fuses:";
        for (size_t i = start; i < end; ++i) {
          out += (i == start ? " " : " -> ") +
                 FusionStageLabel(*chain.nodes[i].node);
        }
        out += "\n";
      }
      start = end;
    }
    for (const FusionChainNode& member : chain.nodes) {
      if (!member.eligible) {
        out += "    break at " + FusionStageLabel(*member.node) + ": " +
               member.reason + "\n";
      }
    }
    if (!any_group) out += "    (no fusable run of >= 2 stages)\n";
  }
  return out;
}

}  // namespace courserank::analysis
