#include <gtest/gtest.h>

#include "core/flexrecs_engine.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"
#include "storage/database.h"

namespace courserank::flexrecs {
namespace {

using storage::Schema;
using storage::Value;
using storage::ValueType;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto courses = db_.CreateTable(
        "Courses", Schema({{"CourseID", ValueType::kInt, false},
                           {"Title", ValueType::kString, false},
                           {"Units", ValueType::kInt, false}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE((*courses)
                      ->Insert({Value(i),
                                Value("Course " + std::string(
                                                      i % 2 ? "odd" : "even") +
                                      " " + std::to_string(i)),
                                Value(3 + i % 3)})
                      .ok());
    }
    engine_ = std::make_unique<FlexRecsEngine>(&db_);
  }

  RecommendSpec TitleSpec(size_t top_k = 0) {
    RecommendSpec spec;
    spec.similarity = "token_jaccard";
    spec.input_attr = "Title";
    spec.reference_attr = "Title";
    spec.top_k = top_k;
    return spec;
  }

  Relation MustRun(const WorkflowNode& wf, const query::ParamMap& params = {}) {
    auto rel = engine_->Run(wf, params);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return rel.ok() ? std::move(*rel) : Relation{};
  }

  storage::Database db_;
  std::unique_ptr<FlexRecsEngine> engine_;
};

TEST_F(OptimizerTest, TopKFusesIntoRecommend) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .TopK("score", 3))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(wf->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.topk_fused, 1);
  EXPECT_EQ(optimized->kind, NodeKind::kRecommend);
  EXPECT_EQ(optimized->recommend.top_k, 3u);

  Relation before = MustRun(*wf);
  Relation after = MustRun(*optimized);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST_F(OptimizerTest, TopKFusionKeepsSmallerK) {
  RecommendSpec spec = TitleSpec(/*top_k=*/2);
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     spec)
          .TopK("score", 5))
      .Build().value();
  NodePtr optimized = OptimizeWorkflow(std::move(wf), nullptr);
  EXPECT_EQ(optimized->recommend.top_k, 2u);
}

TEST_F(OptimizerTest, TopKOnOtherColumnNotFused) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .TopK("Units", 3))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(std::move(wf), &stats, nullptr);
  EXPECT_EQ(stats.topk_fused, 0);
  EXPECT_EQ(optimized->kind, NodeKind::kTopK);
}

TEST_F(OptimizerTest, AscendingTopKNotFused) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .TopK("score", 3, /*descending=*/false))
      .Build().value();
  OptimizerStats stats;
  OptimizeWorkflow(std::move(wf), &stats, nullptr);
  EXPECT_EQ(stats.topk_fused, 0);
}

TEST_F(OptimizerTest, SelectPushesBelowRecommend) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .Select("Units = 4"))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(wf->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.selects_pushed, 1);
  EXPECT_EQ(optimized->kind, NodeKind::kRecommend);
  EXPECT_EQ(optimized->children[0]->kind, NodeKind::kSelect);

  // Semantics preserved.
  Relation before = MustRun(*wf);
  Relation after = MustRun(*optimized);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST_F(OptimizerTest, SelectOnScoreNotPushed) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .Select("score > 0.2"))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(std::move(wf), &stats, nullptr);
  EXPECT_EQ(stats.selects_pushed, 0);
  EXPECT_EQ(optimized->kind, NodeKind::kSelect);
}

TEST_F(OptimizerTest, SelectAboveTopKRecommendNotPushed) {
  // top_k > 0 makes filter-then-cut != cut-then-filter.
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec(/*top_k=*/3))
          .Select("Units = 4"))
      .Build().value();
  OptimizerStats stats;
  OptimizeWorkflow(std::move(wf), &stats, nullptr);
  EXPECT_EQ(stats.selects_pushed, 0);
}

TEST_F(OptimizerTest, AdjacentSelectsMerge) {
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Select("Units >= 3")
                             .Select("CourseID <= 6"))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(wf->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.selects_merged, 1);
  EXPECT_EQ(optimized->kind, NodeKind::kSelect);
  EXPECT_EQ(optimized->children[0]->kind, NodeKind::kTable);

  Relation before = MustRun(*wf);
  Relation after = MustRun(*optimized);
  EXPECT_EQ(before.rows.size(), after.rows.size());
}

TEST_F(OptimizerTest, PushdownEnablesSqlCompilation) {
  // Unoptimized: Select over Recommend runs the recommend against all 12
  // courses, then filters. Optimized: the Select joins the SQL-compiled
  // input subtree, so the recommend sees fewer inputs.
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .Select("Units = 4"))
      .Build().value();
  NodePtr optimized = OptimizeWorkflow(wf->Clone(), nullptr);

  auto before = engine_->Compile(*wf);
  auto after = engine_->Compile(*optimized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  // The optimized plan's first SQL step carries the WHERE clause.
  bool has_where = false;
  for (const auto& step : after->steps()) {
    if (step.kind == CompiledStep::Kind::kSql &&
        step.sql.find("WHERE") != std::string::npos &&
        step.sql.find("Units") != std::string::npos) {
      has_where = true;
    }
  }
  EXPECT_TRUE(has_where) << after->Explain();
}

TEST_F(OptimizerTest, SelectPushesBelowExtend) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Extend(Workflow::Table("Courses"), "CourseID", "CourseID",
                  {"Units"}, "bag")
          .Select("Units = 4"))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(wf->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.selects_pushed_below_extend, 1);
  EXPECT_EQ(optimized->kind, NodeKind::kExtend);
  EXPECT_EQ(optimized->children[0]->kind, NodeKind::kSelect);

  // Semantics preserved, and the pushed Select now heads a
  // Select-over-Table subtree the SQL compiler turns into a WHERE (which
  // the planner then pushes into the scan).
  Relation before = MustRun(*wf);
  Relation after = MustRun(*optimized);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
  auto compiled = engine_->Compile(*optimized);
  ASSERT_TRUE(compiled.ok());
  bool has_where = false;
  for (const auto& step : compiled->steps()) {
    if (step.kind == CompiledStep::Kind::kSql &&
        step.sql.find("WHERE") != std::string::npos) {
      has_where = true;
    }
  }
  EXPECT_TRUE(has_where) << compiled->Explain();
}

TEST_F(OptimizerTest, SelectOnCollectedColumnNotPushedBelowExtend) {
  // The predicate reads the ε-collected list column, which only exists
  // above the Extend — pushing would be unsound.
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Extend(Workflow::Table("Courses"), "CourseID", "CourseID",
                  {"Units"}, "bag")
          .Select("bag IS NOT NULL"))
      .Build().value();
  OptimizerStats stats;
  NodePtr optimized = OptimizeWorkflow(std::move(wf), &stats, nullptr);
  EXPECT_EQ(stats.selects_pushed_below_extend, 0);
  EXPECT_EQ(optimized->kind, NodeKind::kSelect);
}

TEST_F(OptimizerTest, ChainedRulesReachFixpoint) {
  // Select(Select(TopK(Recommend))) — multiple rules fire across rounds.
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 1"),
                     TitleSpec())
          .TopK("score", 5)
          .Select("Units >= 3")
          .Select("CourseID <= 10"))
      .Build().value();
  OptimizerStats stats;
  std::string trace;
  NodePtr optimized = OptimizeWorkflow(std::move(wf), &stats, &trace);
  EXPECT_EQ(stats.selects_merged, 1);
  EXPECT_EQ(stats.topk_fused, 1);
  // The merged select sits above a top_k recommend, so it must NOT push.
  EXPECT_EQ(stats.selects_pushed, 0);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(optimized->kind, NodeKind::kSelect);
  EXPECT_EQ(optimized->children[0]->kind, NodeKind::kRecommend);
}

TEST_F(OptimizerTest, OptimizedDslStrategyEquivalence) {
  // End-to-end: optimize a parsed DSL workflow and compare outputs.
  auto wf = ParseWorkflow(R"(
courses = TABLE Courses
target  = SELECT courses WHERE CourseID = 1
scored  = RECOMMEND courses AGAINST target USING token_jaccard(Title, Title) AGG max SCORE s
top     = TOPK scored BY s DESC LIMIT 4
RETURN top
)");
  ASSERT_TRUE(wf.ok());
  NodePtr optimized = OptimizeWorkflow((*wf)->Clone(), nullptr);
  Relation a = MustRun(**wf);
  Relation b = MustRun(*optimized);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) EXPECT_EQ(a.rows[i], b.rows[i]);
}

}  // namespace
}  // namespace courserank::flexrecs
