#include <gtest/gtest.h>

#include "query/plan.h"
#include "query/sql_parser.h"
#include "storage/database.h"

namespace courserank::query {
namespace {

using storage::Column;
using storage::Database;
using storage::Value;
using storage::ValueType;

ExprPtr P(const std::string& text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto users = db_.CreateTable(
        "users",
        Schema({{"id", ValueType::kInt, false},
                {"name", ValueType::kString, false},
                {"dept", ValueType::kInt, true}}),
        {"id"});
    ASSERT_TRUE(users.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*users)
                      ->Insert({Value(i), Value("user" + std::to_string(i)),
                                Value(i % 2)})
                      .ok());
    }
    auto depts = db_.CreateTable("depts",
                                 Schema({{"id", ValueType::kInt, false},
                                         {"label", ValueType::kString, false}}),
                                 {"id"});
    ASSERT_TRUE(depts.ok());
    ASSERT_TRUE((*depts)->Insert({Value(0), Value("even")}).ok());
    ASSERT_TRUE((*depts)->Insert({Value(1), Value("odd")}).ok());
    ASSERT_TRUE((*depts)->Insert({Value(2), Value("empty")}).ok());
  }

  Relation MustRun(const PlanNode& plan) {
    auto rel = ::courserank::query::Run(plan, db_);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return std::move(*rel);
  }

  Database db_;
};

TEST_F(PlanTest, TableScan) {
  Relation rel = MustRun(*MakeTableScan("users"));
  EXPECT_EQ(rel.rows.size(), 6u);
  EXPECT_EQ(rel.schema.num_columns(), 3u);
}

TEST_F(PlanTest, TableScanWithAliasPrefixesColumns) {
  Relation rel = MustRun(*MakeTableScan("users", "u"));
  EXPECT_EQ(rel.schema.column(0).name, "u.id");
}

TEST_F(PlanTest, MissingTableFails) {
  auto rel = ::courserank::query::Run(*MakeTableScan("nope"), db_);
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, Filter) {
  Relation rel = MustRun(*MakeFilter(MakeTableScan("users"), P("id >= 4")));
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(PlanTest, FilterDropsNullPredicateRows) {
  // dept IS NULL comparisons yield NULL, which is not TRUE.
  Relation rel =
      MustRun(*MakeFilter(MakeTableScan("users"), P("NULL = 1")));
  EXPECT_TRUE(rel.rows.empty());
}

TEST_F(PlanTest, Project) {
  std::vector<ProjectItem> items;
  items.push_back({P("name"), "n"});
  items.push_back({P("id * 10"), "tens"});
  Relation rel = MustRun(*MakeProject(MakeTableScan("users"),
                                      std::move(items)));
  EXPECT_EQ(rel.schema.column(0).name, "n");
  EXPECT_EQ(rel.rows[3][1].AsInt(), 30);
}

TEST_F(PlanTest, HashJoin) {
  Relation rel = MustRun(*MakeJoin(MakeTableScan("users", "u"),
                                   MakeTableScan("depts", "d"),
                                   P("u.dept = d.id")));
  EXPECT_EQ(rel.rows.size(), 6u);
  EXPECT_EQ(rel.schema.num_columns(), 5u);
}

TEST_F(PlanTest, JoinWithResidualCondition) {
  Relation rel = MustRun(*MakeJoin(MakeTableScan("users", "u"),
                                   MakeTableScan("depts", "d"),
                                   P("u.dept = d.id AND u.id > 3")));
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(PlanTest, LeftJoinPadsUnmatched) {
  // depts "empty" (id 2) has no users.
  Relation rel = MustRun(*MakeJoin(MakeTableScan("depts", "d"),
                                   MakeTableScan("users", "u"),
                                   P("d.id = u.dept"), JoinType::kLeft));
  size_t padded = 0;
  for (const Row& row : rel.rows) {
    if (row[2].is_null()) ++padded;
  }
  EXPECT_EQ(rel.rows.size(), 7u);  // 6 matches + 1 padded
  EXPECT_EQ(padded, 1u);
}

TEST_F(PlanTest, NestedLoopJoinOnInequality) {
  Relation rel = MustRun(*MakeJoin(MakeTableScan("users", "u"),
                                   MakeTableScan("depts", "d"),
                                   P("u.id < d.id")));
  // users with id < dept id: dept 1: id 0; dept 2: ids 0,1.
  EXPECT_EQ(rel.rows.size(), 3u);
}

TEST_F(PlanTest, AggregateGlobal) {
  std::vector<AggregateItem> aggs;
  aggs.push_back({AggFn::kCountStar, nullptr, "n"});
  aggs.push_back({AggFn::kSum, P("id"), "total"});
  aggs.push_back({AggFn::kAvg, P("id"), "mean"});
  aggs.push_back({AggFn::kMin, P("id"), "lo"});
  aggs.push_back({AggFn::kMax, P("id"), "hi"});
  Relation rel =
      MustRun(*MakeAggregate(MakeTableScan("users"), {}, std::move(aggs)));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 6);
  EXPECT_DOUBLE_EQ(rel.rows[0][1].AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(rel.rows[0][2].AsDouble(), 2.5);
  EXPECT_EQ(rel.rows[0][3].AsInt(), 0);
  EXPECT_EQ(rel.rows[0][4].AsInt(), 5);
}

TEST_F(PlanTest, AggregateGroupBy) {
  std::vector<ProjectItem> groups;
  groups.push_back({P("dept"), "dept"});
  std::vector<AggregateItem> aggs;
  aggs.push_back({AggFn::kCountStar, nullptr, "n"});
  Relation rel = MustRun(*MakeAggregate(MakeTableScan("users"),
                                        std::move(groups), std::move(aggs)));
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][1].AsInt(), 3);
  EXPECT_EQ(rel.rows[1][1].AsInt(), 3);
}

TEST_F(PlanTest, AggregateOnEmptyInputYieldsOneRow) {
  std::vector<AggregateItem> aggs;
  aggs.push_back({AggFn::kCountStar, nullptr, "n"});
  aggs.push_back({AggFn::kSum, P("id"), "total"});
  Relation rel = MustRun(*MakeAggregate(
      MakeFilter(MakeTableScan("users"), P("id > 100")), {},
      std::move(aggs)));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rel.rows[0][1].is_null());  // SUM of nothing is NULL
}

TEST_F(PlanTest, CountSkipsNulls) {
  std::vector<AggregateItem> aggs;
  aggs.push_back({AggFn::kCount, P("dept"), "n"});
  // Make one dept NULL first.
  storage::Table* users = db_.FindTable("users");
  ASSERT_TRUE(users->UpdateColumn(0, 2, Value()).ok());
  Relation rel =
      MustRun(*MakeAggregate(MakeTableScan("users"), {}, std::move(aggs)));
  EXPECT_EQ(rel.rows[0][0].AsInt(), 5);
}

TEST_F(PlanTest, SortAscendingDescending) {
  std::vector<SortKey> keys;
  keys.push_back({P("id"), false});
  Relation rel = MustRun(*MakeSort(MakeTableScan("users"), std::move(keys)));
  EXPECT_EQ(rel.rows.front()[0].AsInt(), 5);
  EXPECT_EQ(rel.rows.back()[0].AsInt(), 0);
}

TEST_F(PlanTest, SortIsStableOnTies) {
  std::vector<SortKey> keys;
  keys.push_back({P("dept"), true});
  Relation rel = MustRun(*MakeSort(MakeTableScan("users"), std::move(keys)));
  // Within dept 0 group, original order 0,2,4 preserved.
  EXPECT_EQ(rel.rows[0][0].AsInt(), 0);
  EXPECT_EQ(rel.rows[1][0].AsInt(), 2);
  EXPECT_EQ(rel.rows[2][0].AsInt(), 4);
}

TEST_F(PlanTest, LimitAndOffset) {
  std::vector<SortKey> keys;
  keys.push_back({P("id"), true});
  Relation rel = MustRun(
      *MakeLimit(MakeSort(MakeTableScan("users"), std::move(keys)), 2, 3));
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rel.rows[1][0].AsInt(), 4);
}

TEST_F(PlanTest, Distinct) {
  std::vector<ProjectItem> items;
  items.push_back({P("dept"), "dept"});
  Relation rel = MustRun(
      *MakeDistinct(MakeProject(MakeTableScan("users"), std::move(items))));
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(PlanTest, UnionAllAndSet) {
  Relation all = MustRun(
      *MakeUnion(MakeTableScan("users"), MakeTableScan("users"), true));
  EXPECT_EQ(all.rows.size(), 12u);
  Relation set = MustRun(
      *MakeUnion(MakeTableScan("users"), MakeTableScan("users"), false));
  EXPECT_EQ(set.rows.size(), 6u);
}

TEST_F(PlanTest, UnionArityMismatchFails) {
  auto rel = ::courserank::query::Run(*MakeUnion(MakeTableScan("users"), MakeTableScan("depts"),
                            true),
                 db_);
  EXPECT_FALSE(rel.ok());
}

TEST_F(PlanTest, ExtendCollectsLists) {
  std::vector<ExprPtr> collect;
  collect.push_back(P("id"));
  Relation rel = MustRun(*MakeExtend(
      MakeTableScan("depts", "d"), MakeTableScan("users", "u"), P("d.id"),
      P("u.dept"), std::move(collect), "members"));
  ASSERT_EQ(rel.rows.size(), 3u);
  EXPECT_EQ(rel.schema.column(2).name, "members");
  // depts 0 and 1 have 3 members each; dept 2 has none (empty list).
  EXPECT_EQ(rel.rows[0][2].AsList().size(), 3u);
  EXPECT_EQ(rel.rows[1][2].AsList().size(), 3u);
  EXPECT_TRUE(rel.rows[2][2].AsList().empty());
}

TEST_F(PlanTest, ExtendWithMultipleCollectMakesPairs) {
  std::vector<ExprPtr> collect;
  collect.push_back(P("id"));
  collect.push_back(P("name"));
  Relation rel = MustRun(*MakeExtend(
      MakeTableScan("depts", "d"), MakeTableScan("users", "u"), P("d.id"),
      P("u.dept"), std::move(collect), "members"));
  const Value::List& members = rel.rows[0][2].AsList();
  ASSERT_FALSE(members.empty());
  ASSERT_EQ(members[0].AsList().size(), 2u);
  EXPECT_EQ(members[0].AsList()[1].type(), ValueType::kString);
}

TEST_F(PlanTest, ExplainRendersTree) {
  auto plan = MakeLimit(
      MakeFilter(MakeTableScan("users"), P("id > 1")), 3);
  std::string text = plan->Explain();
  EXPECT_NE(text.find("Limit(3)"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("TableScan(users)"), std::string::npos);
}

TEST_F(PlanTest, ParamsFlowThroughContext) {
  ExecContext ctx;
  ctx.db = &db_;
  ctx.params["min"] = Value(4);
  auto plan = MakeFilter(MakeTableScan("users"), P("id >= $min"));
  auto rel = plan->Execute(ctx);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->rows.size(), 2u);
}

}  // namespace
}  // namespace courserank::query
