#include <gtest/gtest.h>

#include "planner/plan.h"
#include "planner/prereq.h"
#include "planner/requirements.h"
#include "social/site.h"

namespace courserank::planner {
namespace {

using social::CourseRankSite;
using social::Role;
using storage::Value;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = CourseRankSite::Create();
    ASSERT_TRUE(site.ok());
    site_ = std::move(*site);

    cs_ = Must(site_->AddDepartment("CS", "Computer Science", "Engineering"));
    math_ = Must(site_->AddDepartment("MATH", "Mathematics",
                                      "Humanities and Sciences"));

    intro_ = Must(site_->AddCourse(cs_, 106, "Intro to Programming", "", 5));
    ds_ = Must(site_->AddCourse(cs_, 161, "Data Structures", "", 5));
    os_ = Must(site_->AddCourse(cs_, 240, "Operating Systems", "", 4));
    db_ = Must(site_->AddCourse(cs_, 245, "Databases", "", 4));
    calc_ = Must(site_->AddCourse(math_, 41, "Calculus", "", 5));
    algebra_ = Must(site_->AddCourse(math_, 113, "Linear Algebra", "", 4));

    ASSERT_TRUE(site_->AddPrereq(ds_, intro_).ok());
    ASSERT_TRUE(site_->AddPrereq(os_, ds_).ok());
    ASSERT_TRUE(site_->AddPrereq(db_, ds_).ok());

    // Offerings: intro every Autumn, ds Winter, os/db Spring with the same
    // single meeting time (forced conflict), calc Autumn+Winter.
    TimeSlot mwf9{kMon | kWed | kFri, 9 * 60, 9 * 60 + 50};
    TimeSlot mwf10{kMon | kWed | kFri, 10 * 60, 10 * 60 + 50};
    TimeSlot tth11{kTue | kThu, 11 * 60, 12 * 60 + 20};
    for (int year : {2007, 2008}) {
      Must(site_->AddOffering(intro_, year, Quarter::kAutumn, "Prof A",
                              mwf9));
      Must(site_->AddOffering(calc_, year, Quarter::kAutumn, "Prof B",
                              mwf10));
      Must(site_->AddOffering(calc_, year, Quarter::kWinter, "Prof B",
                              mwf10));
      Must(site_->AddOffering(ds_, year, Quarter::kWinter, "Prof C", mwf9));
      Must(site_->AddOffering(os_, year, Quarter::kSpring, "Prof D", tth11));
      Must(site_->AddOffering(db_, year, Quarter::kSpring, "Prof E", tth11));
      Must(site_->AddOffering(algebra_, year, Quarter::kSpring, "Prof F",
                              mwf9));
    }

    ASSERT_TRUE(site_->RegisterStudent(1, "Sally", "Junior", cs_).ok());
  }

  template <typename T>
  T Must(Result<T> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  PrereqGraph Graph() { return Must(PrereqGraph::Build(site_->db())); }

  std::vector<PlanIssue::Kind> IssueKinds(const AcademicPlan& plan) {
    auto issues = plan.Validate(site_->db(), Graph());
    EXPECT_TRUE(issues.ok());
    std::vector<PlanIssue::Kind> kinds;
    for (const auto& issue : *issues) kinds.push_back(issue.kind);
    return kinds;
  }

  std::unique_ptr<CourseRankSite> site_;
  social::DeptId cs_ = 0;
  social::DeptId math_ = 0;
  CourseId intro_ = 0, ds_ = 0, os_ = 0, db_ = 0, calc_ = 0, algebra_ = 0;
};

// ---------------------------------------------------------------- prereqs

TEST_F(PlannerTest, GraphEdges) {
  PrereqGraph graph = Graph();
  EXPECT_EQ(graph.num_edges(), 3u);
  EXPECT_EQ(graph.PrereqsOf(ds_), std::vector<CourseId>{intro_});
  EXPECT_TRUE(graph.PrereqsOf(intro_).empty());
}

TEST_F(PlannerTest, TransitivePrereqs) {
  PrereqGraph graph = Graph();
  auto trans = graph.TransitivePrereqs(os_);
  EXPECT_EQ(trans, (std::set<CourseId>{intro_, ds_}));
}

TEST_F(PlannerTest, MissingPrereqs) {
  PrereqGraph graph = Graph();
  EXPECT_EQ(graph.MissingPrereqs(os_, {intro_, ds_}),
            std::vector<CourseId>{});
  EXPECT_EQ(graph.MissingPrereqs(os_, {intro_}), std::vector<CourseId>{ds_});
}

TEST_F(PlannerTest, TopologicalOrderRespectsEdges) {
  PrereqGraph graph = Graph();
  auto order = graph.TopologicalOrder();
  auto pos = [&](CourseId c) {
    return std::find(order.begin(), order.end(), c) - order.begin();
  };
  EXPECT_LT(pos(intro_), pos(ds_));
  EXPECT_LT(pos(ds_), pos(os_));
  EXPECT_LT(pos(ds_), pos(db_));
}

TEST_F(PlannerTest, CycleDetected) {
  ASSERT_TRUE(site_->AddPrereq(intro_, os_).ok());  // closes a cycle
  EXPECT_EQ(PrereqGraph::Build(site_->db()).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------- plan

TEST_F(PlannerTest, ValidPlanHasNoIssues) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}, 4.0).ok());
  ASSERT_TRUE(plan.Add(calc_, {2007, Quarter::kAutumn}, 3.7).ok());
  ASSERT_TRUE(plan.Add(ds_, {2007, Quarter::kWinter}, 3.3).ok());
  ASSERT_TRUE(plan.Add(os_, {2007, Quarter::kSpring}).ok());
  EXPECT_TRUE(IssueKinds(plan).empty());
}

TEST_F(PlannerTest, MissingPrereqFlagged) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(os_, {2007, Quarter::kSpring}).ok());
  auto kinds = IssueKinds(plan);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], PlanIssue::Kind::kMissingPrereq);
}

TEST_F(PlannerTest, PrereqInSameTermDoesNotCount) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  // Taking ds in the same quarter as its prereq is invalid...
  AcademicPlan same(1);
  ASSERT_TRUE(same.Add(intro_, {2007, Quarter::kWinter}).ok());
  ASSERT_TRUE(same.Add(ds_, {2007, Quarter::kWinter}).ok());
  auto kinds = IssueKinds(same);
  bool missing_prereq = false;
  for (auto k : kinds) missing_prereq |= k == PlanIssue::Kind::kMissingPrereq;
  EXPECT_TRUE(missing_prereq);
}

TEST_F(PlannerTest, TimeConflictFlaggedOnlyWhenUnavoidable) {
  // os and db share the only Spring slot -> conflict.
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(ds_, {2007, Quarter::kWinter}).ok());
  ASSERT_TRUE(plan.Add(os_, {2008, Quarter::kSpring}).ok());
  ASSERT_TRUE(plan.Add(db_, {2008, Quarter::kSpring}).ok());
  auto kinds = IssueKinds(plan);
  bool conflict = false;
  for (auto k : kinds) conflict |= k == PlanIssue::Kind::kTimeConflict;
  EXPECT_TRUE(conflict);

  // os + algebra meet at different times -> fine.
  AcademicPlan ok_plan(1);
  ASSERT_TRUE(ok_plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(ok_plan.Add(ds_, {2007, Quarter::kWinter}).ok());
  ASSERT_TRUE(ok_plan.Add(os_, {2008, Quarter::kSpring}).ok());
  ASSERT_TRUE(ok_plan.Add(algebra_, {2008, Quarter::kSpring}).ok());
  for (auto k : IssueKinds(ok_plan)) {
    EXPECT_NE(k, PlanIssue::Kind::kTimeConflict);
  }
}

TEST_F(PlannerTest, NotOfferedFlagged) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kSpring}).ok());  // Autumn only
  auto kinds = IssueKinds(plan);
  ASSERT_FALSE(kinds.empty());
  EXPECT_EQ(kinds[0], PlanIssue::Kind::kNotOffered);
}

TEST_F(PlannerTest, OverloadFlagged) {
  AcademicPlan plan(1);
  // 5 + 5 + 5 + 4 = 19 is fine; add one more course -> 24 > 20.
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(calc_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(ds_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(os_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(db_, {2007, Quarter::kAutumn}).ok());
  auto kinds = IssueKinds(plan);
  bool overload = false;
  for (auto k : kinds) overload |= k == PlanIssue::Kind::kOverload;
  EXPECT_TRUE(overload);
}

TEST_F(PlannerTest, DuplicateCourseFlagged) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(intro_, {2008, Quarter::kAutumn}).ok());
  auto kinds = IssueKinds(plan);
  bool dup = false;
  for (auto k : kinds) dup |= k == PlanIssue::Kind::kDuplicate;
  EXPECT_TRUE(dup);
  // Exact same (course, term) rejected at insert.
  EXPECT_EQ(plan.Add(intro_, {2007, Quarter::kAutumn}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PlannerTest, GpaPerTermAndCumulative) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}, 4.0).ok());
  ASSERT_TRUE(plan.Add(calc_, {2007, Quarter::kAutumn}, 3.0).ok());
  ASSERT_TRUE(plan.Add(ds_, {2007, Quarter::kWinter}, 2.0).ok());
  ASSERT_TRUE(plan.Add(os_, {2007, Quarter::kSpring}).ok());  // ungraded
  EXPECT_DOUBLE_EQ(*plan.TermGpa({2007, Quarter::kAutumn}), 3.5);
  EXPECT_DOUBLE_EQ(*plan.TermGpa({2007, Quarter::kWinter}), 2.0);
  EXPECT_FALSE(plan.TermGpa({2007, Quarter::kSpring}).has_value());
  EXPECT_DOUBLE_EQ(*plan.CumulativeGpa(), 3.0);
}

TEST_F(PlannerTest, TermUnits) {
  AcademicPlan plan(1);
  ASSERT_TRUE(plan.Add(intro_, {2007, Quarter::kAutumn}).ok());
  ASSERT_TRUE(plan.Add(calc_, {2007, Quarter::kAutumn}).ok());
  EXPECT_EQ(*plan.TermUnits(site_->db(), {2007, Quarter::kAutumn}), 10);
}

TEST_F(PlannerTest, FromDatabaseMergesEnrollmentAndPlans) {
  ASSERT_TRUE(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  ASSERT_TRUE(site_->PlanCourse(1, ds_, 2007, Quarter::kWinter).ok());
  auto plan = AcademicPlan::FromDatabase(site_->db(), 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->entries().size(), 2u);
  EXPECT_DOUBLE_EQ(*plan->CumulativeGpa(), 4.0);
  auto text = plan->ToString(site_->db());
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Intro to Programming"), std::string::npos);
  EXPECT_NE(text->find("Cumulative GPA: 4"), std::string::npos);
}

// ------------------------------------------------------------- requirements

TEST_F(PlannerTest, SimpleRequirementTree) {
  RequirementTracker tracker(&site_->db());
  auto root = RequirementNode::AllOf(
      "cs core",
      [&] {
        std::vector<ReqPtr> kids;
        kids.push_back(RequirementNode::Course("intro", intro_));
        kids.push_back(RequirementNode::Course("data structures", ds_));
        return kids;
      }());
  auto report = tracker.Check(*root, {intro_, ds_, calc_});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied);
  auto partial = tracker.Check(*root, {intro_});
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->satisfied);
}

TEST_F(PlannerTest, NOfSetRequirement) {
  RequirementTracker tracker(&site_->db());
  auto root = RequirementNode::NOfSet("two systems courses", 2,
                                      {os_, db_, ds_});
  EXPECT_TRUE(tracker.Check(*root, {os_, db_})->satisfied);
  EXPECT_FALSE(tracker.Check(*root, {os_})->satisfied);
  EXPECT_TRUE(tracker.Check(*root, {os_, db_, ds_})->satisfied);
}

TEST_F(PlannerTest, MatchingAvoidsDoubleCounting) {
  // Two overlapping requirements both accept ds; a single ds cannot satisfy
  // both. Greedy in the wrong order fails; maximum matching succeeds when a
  // second course exists.
  RequirementTracker tracker(&site_->db());
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::NOfSet("systems", 1, {ds_, os_}));
  kids.push_back(RequirementNode::Course("ds required", ds_));
  auto root = RequirementNode::AllOf("major", std::move(kids));

  // Only ds taken: one course cannot fill two slots.
  EXPECT_FALSE(tracker.Check(*root, {ds_})->satisfied);
  // ds + os: matching assigns os->systems, ds->course.
  EXPECT_TRUE(tracker.Check(*root, {ds_, os_})->satisfied);
}

TEST_F(PlannerTest, GreedyBaselineUnderCountsOnOverlap) {
  RequirementTracker tracker(&site_->db());
  std::vector<ReqPtr> kids;
  // Greedy fills "systems" with ds first (tree order), starving the
  // specific-course leaf even though os could have covered systems.
  kids.push_back(RequirementNode::NOfSet("systems", 1, {ds_, os_}));
  kids.push_back(RequirementNode::Course("ds required", ds_));
  auto root = RequirementNode::AllOf("major", std::move(kids));

  auto greedy = tracker.Check(*root, {ds_, os_}, MatchStrategy::kGreedy);
  ASSERT_TRUE(greedy.ok());
  EXPECT_FALSE(greedy->satisfied);  // the documented greedy failure

  auto matched = tracker.Check(*root, {ds_, os_},
                               MatchStrategy::kMaximumMatching);
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->satisfied);
}

TEST_F(PlannerTest, UnitsFromDeptRequirement) {
  RequirementTracker tracker(&site_->db());
  // 12 units of CS numbered >= 100.
  auto root = RequirementNode::UnitsFromDept("cs units", cs_, 100, 12);
  // intro(5) + ds(5) + os(4) = 14 >= 12.
  EXPECT_TRUE(tracker.Check(*root, {intro_, ds_, os_})->satisfied);
  // intro + os = 9 < 12.
  EXPECT_FALSE(tracker.Check(*root, {intro_, os_})->satisfied);
  // Math courses don't count.
  EXPECT_FALSE(tracker.Check(*root, {calc_, algebra_, intro_})->satisfied);
}

TEST_F(PlannerTest, UnitsLeafOnlyConsumesLeftovers) {
  RequirementTracker tracker(&site_->db());
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::Course("intro", intro_));
  kids.push_back(RequirementNode::UnitsFromDept("cs electives", cs_, 100, 8));
  auto root = RequirementNode::AllOf("major", std::move(kids));
  // intro consumed by the course leaf; ds + os (9 units) cover electives.
  EXPECT_TRUE(tracker.Check(*root, {intro_, ds_, os_})->satisfied);
  // Without ds/os, intro alone cannot double-count into electives.
  EXPECT_FALSE(tracker.Check(*root, {intro_})->satisfied);
}

TEST_F(PlannerTest, AnyNCombinator) {
  RequirementTracker tracker(&site_->db());
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::Course("os", os_));
  kids.push_back(RequirementNode::Course("db", db_));
  kids.push_back(RequirementNode::Course("algebra", algebra_));
  auto root = RequirementNode::AnyN("breadth: two of three", 2,
                                    std::move(kids));
  EXPECT_TRUE(tracker.Check(*root, {os_, algebra_})->satisfied);
  EXPECT_FALSE(tracker.Check(*root, {os_})->satisfied);
}

TEST_F(PlannerTest, ReportListsLeafProgress) {
  RequirementTracker tracker(&site_->db());
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::Course("intro", intro_));
  kids.push_back(RequirementNode::NOfSet("systems", 2, {os_, db_}));
  auto root = RequirementNode::AllOf("major", std::move(kids));
  auto report = tracker.Check(*root, {intro_, os_});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->leaves.size(), 2u);
  EXPECT_TRUE(report->leaves[0].satisfied);
  EXPECT_EQ(report->leaves[1].have, 1u);
  EXPECT_EQ(report->leaves[1].need, 2u);
  EXPECT_FALSE(report->leaves[1].satisfied);
  std::string text = report->ToString();
  EXPECT_NE(text.find("NOT SATISFIED"), std::string::npos);
  EXPECT_NE(text.find("systems (1/2)"), std::string::npos);
}

TEST_F(PlannerTest, ProgramRegistryAndCheckStudent) {
  RequirementTracker tracker(&site_->db());
  EXPECT_FALSE(tracker.HasProgram(cs_));
  EXPECT_EQ(tracker.CheckStudent(cs_, 1).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(tracker
                  .DefineProgram(cs_, RequirementNode::Course("intro",
                                                              intro_))
                  .ok());
  EXPECT_TRUE(tracker.HasProgram(cs_));
  ASSERT_TRUE(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  auto report = tracker.CheckStudent(cs_, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied);
}

TEST_F(PlannerTest, RetakesDoNotDoubleCount) {
  RequirementTracker tracker(&site_->db());
  auto root = RequirementNode::NOfSet("two systems", 2, {os_, db_});
  // Taking os twice is one distinct course.
  EXPECT_FALSE(tracker.Check(*root, {os_, os_})->satisfied);
}

TEST_F(PlannerTest, RequirementCloneIsDeep) {
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::Course("intro", intro_));
  auto root = RequirementNode::AllOf("major", std::move(kids));
  ReqPtr clone = root->Clone();
  EXPECT_EQ(clone->children.size(), 1u);
  EXPECT_EQ(clone->children[0]->course, intro_);
  EXPECT_NE(clone->children[0].get(), root->children[0].get());
}

}  // namespace
}  // namespace courserank::planner
