#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/data_cloud.h"
#include "search/entity.h"
#include "search/inverted_index.h"
#include "search/query_cache.h"
#include "search/searcher.h"
#include "storage/database.h"

namespace courserank::search {
namespace {

using cloud::CachingCloudBuilder;
using cloud::CloudBuilder;
using cloud::DataCloud;
using storage::Schema;
using storage::Value;
using storage::ValueType;

/// Same deterministic catalog as search_test, plus cache-centric helpers.
class QueryCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto courses = db_.CreateTable(
        "Courses",
        Schema({{"CourseID", ValueType::kInt, false},
                {"Title", ValueType::kString, false},
                {"Description", ValueType::kString, true}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());
    auto comments = db_.CreateTable(
        "Comments", Schema({{"CommentID", ValueType::kInt, false},
                            {"CourseID", ValueType::kInt, false},
                            {"Text", ValueType::kString, false}}),
        {"CommentID"});
    ASSERT_TRUE(comments.ok());
    ASSERT_TRUE(
        (*comments)->CreateHashIndex("by_course", {"CourseID"}, false).ok());

    AddCourse(1, "American History",
              "Surveys american politics and culture since 1900.");
    AddCourse(2, "Latin American Literature",
              "Novels and poetry from latin american writers.");
    AddCourse(3, "Databases", "Relational model, SQL, and transactions.");
    AddCourse(4, "Greek Science",
              "History of science covering the famous greek scientists.");
    AddCourse(5, "African American Studies",
              "African american politics, music, and migration.");

    def_.name = "course";
    def_.primary_table = "Courses";
    def_.key_column = "CourseID";
    def_.display_column = "Title";
    def_.fields = {
        {"title", 3.0, "Courses", "Title", "CourseID"},
        {"description", 1.5, "Courses", "Description", "CourseID"},
        {"comments", 1.0, "Comments", "Text", "CourseID"},
    };

    index_ = std::make_unique<InvertedIndex>(def_);
    ASSERT_TRUE(index_->Build(db_).ok());
  }

  void AddCourse(int id, const std::string& title, const std::string& desc) {
    ASSERT_TRUE(db_.FindTable("Courses")
                    ->Insert({Value(id), Value(title), Value(desc)})
                    .ok());
  }

  void AddComment(int id, int course, const std::string& text) {
    ASSERT_TRUE(db_.FindTable("Comments")
                    ->Insert({Value(id), Value(course), Value(text)})
                    .ok());
  }

  std::vector<int64_t> Keys(const ResultSet& results) {
    std::vector<int64_t> out;
    for (const SearchHit& hit : results.hits) {
      out.push_back(index_->doc(hit.doc).key.AsInt());
    }
    return out;
  }

  storage::Database db_;
  EntityDefinition def_;
  std::unique_ptr<InvertedIndex> index_;
};

// ------------------------------------------------------------------ epochs

TEST_F(QueryCacheTest, EpochAdvancesOnEveryWrite) {
  uint64_t e0 = index_->epoch();
  EXPECT_GT(e0, 0u);  // Build added documents

  AddComment(1, 3, "sql was great");
  ASSERT_TRUE(index_->Refresh(db_, Value(3)).ok());
  uint64_t e1 = index_->epoch();
  EXPECT_GT(e1, e0);

  ASSERT_TRUE(index_->RemoveByKey(Value(5)).ok());
  EXPECT_GT(index_->epoch(), e1);
}

// ------------------------------------------------------------- result cache

TEST_F(QueryCacheTest, RepeatedQueryHitsCache) {
  CachingSearcher cached(index_.get());
  auto first = cached.Search("american");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cached.cache_hits(), 0u);
  auto second = cached.Search("american");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cached.cache_hits(), 1u);
  // Zero-copy: both calls return the same underlying result set.
  EXPECT_EQ(first->get(), second->get());
}

TEST_F(QueryCacheTest, QueryOrderSharesEntry) {
  CachingSearcher cached(index_.get());
  auto a = cached.Search("greek science");
  auto b = cached.Search("science greek");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cached.cache_hits(), 1u);  // conjunction is order-insensitive
}

TEST_F(QueryCacheTest, RefreshInvalidatesCachedQuery) {
  CachingSearcher cached(index_.get());
  auto before = cached.Search("normalization");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->size(), 0u);

  AddComment(10, 3, "the normalization lectures were the highlight");
  ASSERT_TRUE(index_->Refresh(db_, Value(3)).ok());

  auto after = cached.Search("normalization");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ((*after)->size(), 1u);
  EXPECT_EQ(Keys(**after), (std::vector<int64_t>{3}));
}

TEST_F(QueryCacheTest, RemoveByKeyInvalidatesCachedQuery) {
  CachingSearcher cached(index_.get());
  auto before = cached.Search("american");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->size(), 3u);

  ASSERT_TRUE(index_->RemoveByKey(Value(5)).ok());

  auto after = cached.Search("american");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->size(), 2u);
  EXPECT_EQ(cached.cache_hits(), 0u);  // stale entry must not serve
}

TEST_F(QueryCacheTest, LruEvictsOldestEntry) {
  CachingSearcher cached(index_.get(), {}, /*capacity=*/2);
  ASSERT_TRUE(cached.Search("american").ok());
  ASSERT_TRUE(cached.Search("greek").ok());
  ASSERT_TRUE(cached.Search("sql").ok());  // evicts "american"
  EXPECT_EQ(cached.cache_size(), 2u);
  ASSERT_TRUE(cached.Search("american").ok());
  EXPECT_EQ(cached.cache_hits(), 0u);  // all four were computed fresh
}

TEST_F(QueryCacheTest, RefinePrimesCombinedQueryEntry) {
  CachingSearcher cached(index_.get());
  auto base = cached.Search("american");
  ASSERT_TRUE(base.ok());
  auto refined = cached.Refine(**base, "politics");
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ((*refined)->size(), 2u);

  // A later from-scratch query of the combined terms hits the entry the
  // refinement stored.
  uint64_t hits_before = cached.cache_hits();
  auto direct = cached.Search("american politics");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cached.cache_hits(), hits_before + 1);
  EXPECT_EQ(direct->get(), refined->get());
}

TEST_F(QueryCacheTest, RefineOfStaleResultRequeries) {
  CachingSearcher cached(index_.get());
  auto base = cached.Search("american");
  ASSERT_TRUE(base.ok());
  std::shared_ptr<const ResultSet> held = *base;

  // Course 6 gains "american politics" content after the base query.
  AddCourse(6, "Political Americana", "american politics memorabilia");
  EntityExtractor extractor(&db_, def_);
  auto doc = extractor.ExtractOne(Value(6));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(index_->AddDocument(*doc).ok());

  // Refining the stale set must not miss the new document.
  auto refined = cached.Refine(*held, "politics");
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ((*refined)->size(), 3u);  // courses 1, 5, and the new 6
}

TEST_F(QueryCacheTest, StopwordRefinementStillFails) {
  CachingSearcher cached(index_.get());
  auto base = cached.Search("american");
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(cached.Refine(**base, "the of").ok());
}

// -------------------------------------------------------------- cloud cache

TEST_F(QueryCacheTest, CloudCacheHitsAndInvalidates) {
  Searcher searcher(index_.get());
  CachingCloudBuilder clouds(index_.get());

  auto results = searcher.Search("american");
  ASSERT_TRUE(results.ok());
  auto c1 = clouds.Build(*results);
  auto c2 = clouds.Build(*results);
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(clouds.cache_hits(), 1u);

  AddComment(20, 1, "fascinating frontier lectures");
  ASSERT_TRUE(index_->Refresh(db_, Value(1)).ok());

  auto fresh = searcher.Search("american");
  ASSERT_TRUE(fresh.ok());
  auto c3 = clouds.Build(*fresh);
  EXPECT_NE(c1.get(), c3.get());  // old entry was epoch-invalidated
}

// ------------------------------------------------------------- determinism

/// Serializes everything observable about an index so pooled and serial
/// builds can be compared byte for byte.
std::string IndexFingerprint(const InvertedIndex& index) {
  std::string out;
  out += std::to_string(index.num_docs()) + ";" +
         std::to_string(index.num_terms()) + ";";
  for (TermId t = 0; t < index.num_terms(); ++t) {
    out += index.TermString(t);
    out += '\x1f';
    out += std::to_string(index.DocFrequency(t)) + "," +
           std::to_string(index.BigramDocFrequency(t)) + ";";
    const std::vector<Posting>* postings = index.Postings(t);
    if (postings != nullptr) {
      for (const Posting& p : *postings) {
        out += std::to_string(p.doc) + ":" + std::to_string(p.field) + ":" +
               std::to_string(p.tf) + " ";
      }
    }
    out += '\n';
  }
  return out;
}

TEST_F(QueryCacheTest, PooledBuildMatchesSerialBuildByteForByte) {
  ThreadPool pool4(4);
  ThreadPool inline_pool(0);

  InvertedIndex pooled(def_);
  ASSERT_TRUE(pooled.Build(db_, &pool4).ok());
  InvertedIndex serial(def_);
  ASSERT_TRUE(serial.Build(db_, &inline_pool).ok());

  EXPECT_EQ(IndexFingerprint(pooled), IndexFingerprint(serial));

  // Scores, not just match sets, must agree exactly.
  Searcher ps(&pooled);
  Searcher ss(&serial);
  for (const char* q : {"american", "greek science", "american politics"}) {
    auto pr = ps.Search(q);
    auto sr = ss.Search(q);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(sr.ok());
    ASSERT_EQ(pr->size(), sr->size()) << q;
    for (size_t i = 0; i < pr->hits.size(); ++i) {
      EXPECT_EQ(pr->hits[i].doc, sr->hits[i].doc) << q;
      EXPECT_EQ(pr->hits[i].score, sr->hits[i].score) << q;
    }
  }
}

std::string CloudFingerprint(const DataCloud& cloud) {
  std::string out;
  for (const cloud::CloudTerm& t : cloud.terms) {
    out += t.term + "|" + t.display + "|" + std::to_string(t.score) + "|" +
           std::to_string(t.doc_count) + "|" + std::to_string(t.total_tf) +
           "|" + std::to_string(t.font_bucket) + "\n";
  }
  return out;
}

TEST_F(QueryCacheTest, PooledCloudMatchesSerialCloudByteForByte) {
  // A corpus large enough to trigger sharded accumulation (>= 2 shards).
  storage::Database big;
  ASSERT_TRUE(big.CreateTable("Courses",
                              Schema({{"CourseID", ValueType::kInt, false},
                                      {"Title", ValueType::kString, false},
                                      {"Description", ValueType::kString,
                                       true}}),
                              {"CourseID"})
                  .ok());
  const char* topics[] = {"politics", "culture", "migration", "frontier",
                          "poetry", "jazz", "cinema", "democracy"};
  for (int i = 0; i < 700; ++i) {
    std::string topic = topics[i % 8];
    std::string other = topics[(i + 3) % 8];
    ASSERT_TRUE(
        big.FindTable("Courses")
            ->Insert({Value(i), Value("American " + topic),
                      Value("american " + topic + " and " + other +
                            " studies")})
            .ok());
  }
  EntityDefinition def;
  def.name = "course";
  def.primary_table = "Courses";
  def.key_column = "CourseID";
  def.display_column = "Title";
  def.fields = {
      {"title", 3.0, "Courses", "Title", "CourseID"},
      {"description", 1.5, "Courses", "Description", "CourseID"},
  };
  InvertedIndex index(def);
  ASSERT_TRUE(index.Build(big).ok());

  Searcher searcher(&index);
  auto results = searcher.Search("american");
  ASSERT_TRUE(results.ok());
  ASSERT_GE(results->size(), 512u) << "need enough hits to shard";

  ThreadPool pool4(4);
  ThreadPool inline_pool(0);
  CloudBuilder pooled(&index, {}, &pool4);
  CloudBuilder serial(&index, {}, &inline_pool);

  std::string serial_fp = CloudFingerprint(serial.Build(*results));
  ASSERT_FALSE(serial_fp.empty());
  for (int round = 0; round < 3; ++round) {
    // Repeats also exercise scratch-buffer reuse across builds.
    EXPECT_EQ(CloudFingerprint(pooled.Build(*results)), serial_fp);
    EXPECT_EQ(CloudFingerprint(serial.Build(*results)), serial_fp);
  }
}

}  // namespace
}  // namespace courserank::search
