#include <gtest/gtest.h>

#include <filesystem>

#include "storage/csv.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace courserank::storage {
namespace {

Schema PeopleSchema() {
  return Schema({{"id", ValueType::kInt, false},
                 {"name", ValueType::kString, false},
                 {"age", ValueType::kInt, true},
                 {"gpa", ValueType::kDouble, true}});
}

std::unique_ptr<Table> MakePeople() {
  auto table = Table::Create("people", PeopleSchema(), {"id"});
  EXPECT_TRUE(table.ok());
  return std::move(*table);
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = PeopleSchema();
  EXPECT_EQ(*s.FindColumn("ID"), 0u);
  EXPECT_EQ(*s.FindColumn("Name"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, QualifiedLookupThroughPrefix) {
  Schema s = PeopleSchema().WithPrefix("p");
  EXPECT_EQ(s.column(0).name, "p.id");
  EXPECT_TRUE(s.FindColumn("p.id").has_value());
  // Unqualified lookup resolves through the prefix when unambiguous.
  EXPECT_TRUE(s.FindColumn("name").has_value());
}

TEST(SchemaTest, AmbiguousUnqualifiedLookupFails) {
  Schema s = Schema::Concat(PeopleSchema().WithPrefix("a"),
                            PeopleSchema().WithPrefix("b"));
  EXPECT_FALSE(s.FindColumn("id").has_value());
  EXPECT_TRUE(s.FindColumn("a.id").has_value());
  EXPECT_TRUE(s.FindColumn("b.id").has_value());
}

TEST(SchemaTest, ValidateRowChecksArity) {
  Schema s = PeopleSchema();
  EXPECT_FALSE(s.ValidateRow({Value(1)}).ok());
}

TEST(SchemaTest, ValidateRowChecksNullability) {
  Schema s = PeopleSchema();
  EXPECT_FALSE(
      s.ValidateRow({Value(1), Value(), Value(20), Value(3.0)}).ok());
  EXPECT_TRUE(
      s.ValidateRow({Value(1), Value("x"), Value(), Value()}).ok());
}

TEST(SchemaTest, ValidateRowChecksTypes) {
  Schema s = PeopleSchema();
  EXPECT_FALSE(
      s.ValidateRow({Value("x"), Value("n"), Value(1), Value(1.0)}).ok());
  // INT accepted where DOUBLE declared.
  EXPECT_TRUE(
      s.ValidateRow({Value(1), Value("n"), Value(1), Value(3)}).ok());
}

// ---------------------------------------------------------------- Table

TEST(TableTest, InsertAndGet) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("ann"), Value(20), Value(3.5)});
  ASSERT_TRUE(id.ok());
  const Row* row = table->Get(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "ann");
  EXPECT_EQ(table->size(), 1u);
}

TEST(TableTest, PrimaryKeyDuplicateRejected) {
  auto table = MakePeople();
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(), Value()}).ok());
  auto dup = table->Insert({Value(1), Value("b"), Value(), Value()});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table->size(), 1u);
}

TEST(TableTest, PrimaryKeyImpliesNotNull) {
  auto table = MakePeople();
  EXPECT_FALSE(table->Insert({Value(), Value("a"), Value(), Value()}).ok());
}

TEST(TableTest, FindByPrimaryKey) {
  auto table = MakePeople();
  ASSERT_TRUE(table->Insert({Value(7), Value("x"), Value(), Value()}).ok());
  auto rid = table->FindByPrimaryKey({Value(7)});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(table->Get(*rid)->at(1).AsString(), "x");
  EXPECT_EQ(table->FindByPrimaryKey({Value(8)}).status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, DeleteTombstonesRow) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("a"), Value(), Value()});
  ASSERT_TRUE(table->Delete(*id).ok());
  EXPECT_EQ(table->Get(*id), nullptr);
  EXPECT_EQ(table->size(), 0u);
  EXPECT_EQ(table->capacity(), 1u);  // slot kept
  // PK becomes free again.
  EXPECT_TRUE(table->Insert({Value(1), Value("b"), Value(), Value()}).ok());
}

TEST(TableTest, DeleteTwiceFails) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("a"), Value(), Value()});
  ASSERT_TRUE(table->Delete(*id).ok());
  EXPECT_EQ(table->Delete(*id).code(), StatusCode::kNotFound);
}

TEST(TableTest, UpdateReplacesRowAndIndexes) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("a"), Value(20), Value(3.0)});
  ASSERT_TRUE(
      table->Update(*id, {Value(2), Value("b"), Value(21), Value(3.1)}).ok());
  EXPECT_TRUE(table->FindByPrimaryKey({Value(2)}).ok());
  EXPECT_FALSE(table->FindByPrimaryKey({Value(1)}).ok());
}

TEST(TableTest, UpdateToExistingKeyRejected) {
  auto table = MakePeople();
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(), Value()}).ok());
  auto id2 = table->Insert({Value(2), Value("b"), Value(), Value()});
  EXPECT_EQ(
      table->Update(*id2, {Value(1), Value("c"), Value(), Value()}).code(),
      StatusCode::kAlreadyExists);
}

TEST(TableTest, UpdateSameKeyAllowed) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("a"), Value(), Value()});
  EXPECT_TRUE(
      table->Update(*id, {Value(1), Value("renamed"), Value(), Value()}).ok());
}

TEST(TableTest, UpdateColumn) {
  auto table = MakePeople();
  auto id = table->Insert({Value(1), Value("a"), Value(20), Value()});
  ASSERT_TRUE(table->UpdateColumn(*id, 2, Value(21)).ok());
  EXPECT_EQ(table->Get(*id)->at(2).AsInt(), 21);
  EXPECT_FALSE(table->UpdateColumn(*id, 99, Value(1)).ok());
}

TEST(TableTest, ScanVisitsLiveRowsInOrder) {
  auto table = MakePeople();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table->Insert({Value(i), Value("p"), Value(), Value()}).ok());
  }
  ASSERT_TRUE(table->Delete(2).ok());
  std::vector<int64_t> seen;
  table->Scan([&](RowId, const Row& row) { seen.push_back(row[0].AsInt()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 3, 4}));
}

TEST(TableTest, SecondaryHashIndexLookup) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("by_name", {"name"}, false).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value(i), Value(i % 2 == 0 ? "even" : "odd"),
                              Value(), Value()})
                    .ok());
  }
  EXPECT_EQ(table->LookupEqual({"name"}, {Value("even")}).size(), 2u);
  EXPECT_EQ(table->LookupEqual({"name"}, {Value("odd")}).size(), 2u);
  EXPECT_TRUE(table->LookupEqual({"name"}, {Value("none")}).empty());
}

TEST(TableTest, LookupFallsBackToScanWithoutIndex) {
  auto table = MakePeople();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        table->Insert({Value(i), Value("n"), Value(i / 2), Value()}).ok());
  }
  EXPECT_EQ(table->LookupEqual({"age"}, {Value(1)}).size(), 2u);
}

TEST(TableTest, UniqueSecondaryIndexEnforced) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("uniq_name", {"name"}, true).ok());
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(), Value()}).ok());
  EXPECT_EQ(
      table->Insert({Value(2), Value("a"), Value(), Value()}).status().code(),
      StatusCode::kAlreadyExists);
}

TEST(TableTest, CreateIndexOnExistingDataValidatesUniqueness) {
  auto table = MakePeople();
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(), Value()}).ok());
  ASSERT_TRUE(table->Insert({Value(2), Value("a"), Value(), Value()}).ok());
  EXPECT_FALSE(table->CreateHashIndex("uniq_name", {"name"}, true).ok());
  EXPECT_TRUE(table->CreateHashIndex("plain_name", {"name"}, false).ok());
}

TEST(TableTest, DuplicateIndexNameRejected) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("x", {"name"}, false).ok());
  EXPECT_EQ(table->CreateHashIndex("x", {"age"}, false).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, OrderedIndexRangeScan) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateOrderedIndex("by_age", "age").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table->Insert({Value(i), Value("p"), Value(i * 10), Value()}).ok());
  }
  const OrderedIndex* index = table->FindOrderedIndex("age");
  ASSERT_NE(index, nullptr);
  std::vector<RowId> hits = index->Range(Value(25), Value(55));
  ASSERT_EQ(hits.size(), 3u);  // ages 30, 40, 50
  EXPECT_EQ(table->Get(hits[0])->at(2).AsInt(), 30);
  EXPECT_EQ(table->Get(hits[2])->at(2).AsInt(), 50);
  // Unbounded below.
  EXPECT_EQ(index->Range(Value(), Value(15)).size(), 2u);
}

TEST(TableTest, OrderedIndexTracksDeletes) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateOrderedIndex("by_age", "age").ok());
  auto id = table->Insert({Value(1), Value("p"), Value(30), Value()});
  ASSERT_TRUE(table->Delete(*id).ok());
  EXPECT_TRUE(
      table->FindOrderedIndex("age")->Range(Value(0), Value(99)).empty());
}

TEST(TableTest, CompositeIndex) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("name_age", {"name", "age"}, false).ok());
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(20), Value()}).ok());
  ASSERT_TRUE(table->Insert({Value(2), Value("a"), Value(21), Value()}).ok());
  EXPECT_EQ(
      table->LookupEqual({"name", "age"}, {Value("a"), Value(20)}).size(),
      1u);
}

TEST(TableTest, OrderedIndexUnboundedAbove) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateOrderedIndex("by_age", "age").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table->Insert({Value(i), Value("p"), Value(i * 10), Value()}).ok());
  }
  const OrderedIndex* index = table->FindOrderedIndex("age");
  EXPECT_EQ(index->Range(Value(25), Value()).size(), 2u);  // 30, 40
  EXPECT_EQ(index->Range(Value(), Value()).size(), 5u);    // everything
}

TEST(TableTest, OrderedIndexTracksUpdates) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateOrderedIndex("by_age", "age").ok());
  auto id = table->Insert({Value(1), Value("p"), Value(30), Value()});
  ASSERT_TRUE(table->UpdateColumn(*id, 2, Value(70)).ok());
  const OrderedIndex* index = table->FindOrderedIndex("age");
  EXPECT_TRUE(index->Range(Value(25), Value(35)).empty());
  EXPECT_EQ(index->Range(Value(65), Value(75)).size(), 1u);
}

TEST(TableTest, IndexEnumerationForSnapshots) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("by_name", {"name"}, false).ok());
  ASSERT_TRUE(table->CreateOrderedIndex("by_age", "age").ok());
  // "__pk" plus "by_name".
  EXPECT_EQ(table->hash_indexes().size(), 2u);
  EXPECT_EQ(table->ordered_indexes().size(), 1u);
}

TEST(TableTest, NullKeysIndexableAndLookupable) {
  auto table = MakePeople();
  ASSERT_TRUE(table->CreateHashIndex("by_age", {"age"}, false).ok());
  ASSERT_TRUE(table->Insert({Value(1), Value("a"), Value(), Value()}).ok());
  ASSERT_TRUE(table->Insert({Value(2), Value("b"), Value(), Value()}).ok());
  // NULL is a hashable storage value (SQL semantics live in the executor).
  EXPECT_EQ(table->LookupEqual({"age"}, {Value()}).size(), 2u);
}

TEST(TableTest, CreateRejectsBadPrimaryKey) {
  EXPECT_FALSE(Table::Create("t", PeopleSchema(), {"nope"}).ok());
}

// ---------------------------------------------------------------- Database

TEST(DatabaseTest, CreateAndGetTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", PeopleSchema(), {"id"}).ok());
  EXPECT_TRUE(db.GetTable("T").ok());  // case-insensitive
  EXPECT_EQ(db.GetTable("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.CreateTable("t", PeopleSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, ForeignKeyEnforcedOnInsert) {
  Database db;
  ASSERT_TRUE(db.CreateTable("parent", Schema({{"id", ValueType::kInt, false}}),
                             {"id"})
                  .ok());
  ASSERT_TRUE(db.CreateTable("child",
                             Schema({{"id", ValueType::kInt, false},
                                     {"parent_id", ValueType::kInt, true}}),
                             {"id"})
                  .ok());
  ASSERT_TRUE(db.AddForeignKey("child", "parent_id", "parent", "id").ok());

  ASSERT_TRUE(db.Insert("parent", {Value(1)}).ok());
  EXPECT_TRUE(db.Insert("child", {Value(10), Value(1)}).ok());
  EXPECT_EQ(db.Insert("child", {Value(11), Value(99)}).status().code(),
            StatusCode::kFailedPrecondition);
  // NULL FK values are exempt.
  EXPECT_TRUE(db.Insert("child", {Value(12), Value()}).ok());
}

TEST(DatabaseTest, CheckIntegrityFindsDanglingRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable("parent", Schema({{"id", ValueType::kInt, false}}),
                             {"id"})
                  .ok());
  ASSERT_TRUE(db.CreateTable("child",
                             Schema({{"id", ValueType::kInt, false},
                                     {"parent_id", ValueType::kInt, true}}),
                             {"id"})
                  .ok());
  ASSERT_TRUE(db.AddForeignKey("child", "parent_id", "parent", "id").ok());
  ASSERT_TRUE(db.Insert("parent", {Value(1)}).ok());
  ASSERT_TRUE(db.Insert("child", {Value(10), Value(1)}).ok());
  EXPECT_TRUE(db.CheckIntegrity().ok());

  // Delete the parent behind the database's back; integrity now fails.
  Table* parent = db.FindTable("parent");
  ASSERT_TRUE(parent->Delete(*parent->FindByPrimaryKey({Value(1)})).ok());
  EXPECT_FALSE(db.CheckIntegrity().ok());
}

TEST(DatabaseTest, SequencesAreMonotonePerName) {
  Database db;
  EXPECT_EQ(db.NextSequence("a"), 1);
  EXPECT_EQ(db.NextSequence("a"), 2);
  EXPECT_EQ(db.NextSequence("b"), 1);
  EXPECT_EQ(db.NextSequence("A"), 3);  // case-insensitive name
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  Schema schema({{"id", ValueType::kInt, false},
                 {"name", ValueType::kString, true},
                 {"score", ValueType::kDouble, true},
                 {"flag", ValueType::kBool, true}});
  std::vector<Row> rows{
      {Value(1), Value("plain"), Value(3.5), Value(true)},
      {Value(2), Value("comma, quoted \"x\""), Value(), Value(false)},
      {Value(3), Value("line\nbreak"), Value(0.25), Value()},
  };
  std::string text = ToCsv(schema, rows);
  auto parsed = ParseCsv(schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1][1].AsString(), "comma, quoted \"x\"");
  EXPECT_TRUE((*parsed)[1][2].is_null());
  EXPECT_EQ((*parsed)[2][1].AsString(), "line\nbreak");
  EXPECT_DOUBLE_EQ((*parsed)[2][2].AsDouble(), 0.25);
}

TEST(CsvTest, RejectsWrongArity) {
  Schema schema({{"a", ValueType::kInt, true}, {"b", ValueType::kInt, true}});
  EXPECT_FALSE(ParseCsv(schema, "a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RejectsBadCellTypes) {
  Schema schema({{"a", ValueType::kInt, true}});
  EXPECT_FALSE(ParseCsv(schema, "a\nnot_an_int\n").ok());
}

// ---------------------------------------------------------------- WAL

TEST(TableWalTest, MutationsAcrossTablesReplayInLogOrder) {
  std::string wal_path =
      (std::filesystem::temp_directory_path() / "cr_table_wal_test.log")
          .string();
  std::filesystem::remove(wal_path);

  // Interleave mutations across two tables; the WAL must capture them in
  // the exact order applied, and replaying into a fresh database must
  // rebuild both tables slot for slot.
  {
    Database db;
    ASSERT_TRUE(db.CreateTable("people", PeopleSchema(), {"id"}).ok());
    ASSERT_TRUE(db.CreateTable("tags",
                               Schema({{"tag", ValueType::kString, false}}))
                    .ok());
    auto wal = WalWriter::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    db.AttachWal(wal->get());

    ASSERT_TRUE(
        db.Insert("people", {Value(1), Value("ann"), Value(30), Value(3.5)})
            .ok());
    ASSERT_TRUE(db.Insert("tags", {Value("alpha")}).ok());
    ASSERT_TRUE(
        db.Insert("people", {Value(2), Value("bob"), Value(), Value()}).ok());
    Table* people = db.FindTable("people");
    auto id1 = people->FindByPrimaryKey({Value(1)});
    ASSERT_TRUE(id1.ok());
    ASSERT_TRUE(
        people->Update(*id1, {Value(1), Value("ann2"), Value(31), Value(3.9)})
            .ok());
    auto id2 = people->FindByPrimaryKey({Value(2)});
    ASSERT_TRUE(id2.ok());
    ASSERT_TRUE(people->Delete(*id2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    EXPECT_EQ((*wal)->last_lsn(), 5u);
  }

  // Replay order check: record types and tables in append order.
  std::vector<std::string> order;
  auto stats = ReplayWal(wal_path, /*after_lsn=*/0,
                         [&](const WalRecord& r) {
                           order.push_back(
                               std::to_string(static_cast<int>(r.type)) + ":" +
                               r.table);
                           return Status::OK();
                         });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 5u);
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(order, (std::vector<std::string>{"1:people", "1:tags", "1:people",
                                             "2:people", "3:people"}));

  // Replay into a fresh database rebuilds the exact state.
  Database fresh;
  ASSERT_TRUE(fresh.CreateTable("people", PeopleSchema(), {"id"}).ok());
  ASSERT_TRUE(fresh.CreateTable("tags",
                                Schema({{"tag", ValueType::kString, false}}))
                  .ok());
  auto replay = ReplayWal(
      wal_path, 0, [&](const WalRecord& r) -> Status {
        Table* t = fresh.FindTable(r.table);
        if (t == nullptr) return Status::Corruption("unknown table");
        switch (r.type) {
          case WalRecordType::kInsert:
            return t->RestoreRow(r.row_id, r.row);
          case WalRecordType::kUpdate:
            return t->Update(r.row_id, r.row);
          case WalRecordType::kDelete:
            return t->Delete(r.row_id);
          default:
            return Status::OK();
        }
      });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  Table* people = fresh.FindTable("people");
  EXPECT_EQ(people->size(), 1u);
  auto id1 = people->FindByPrimaryKey({Value(1)});
  ASSERT_TRUE(id1.ok());
  const Row* row = people->Get(*id1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "ann2");
  EXPECT_EQ((*row)[2].AsInt(), 31);
  EXPECT_EQ(fresh.FindTable("tags")->size(), 1u);
  std::filesystem::remove(wal_path);
}

}  // namespace
}  // namespace courserank::storage
