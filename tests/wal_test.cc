#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/database.h"
#include "storage/fault.h"

namespace courserank::storage {
namespace {

namespace fs = std::filesystem;

std::string TempWal(const char* name) {
  fs::path dir = fs::temp_directory_path() / "courserank_wal_tests";
  fs::create_directories(dir);
  fs::path p = dir / name;
  fs::remove(p);
  return p.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << bytes;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalPayloadTest, MutationRoundTripsAllValueTypes) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.lsn = 42;
  record.table = "people";
  record.row_id = 7;
  record.row = {Value(), Value(true), Value(int64_t{-5}), Value(0.25),
                Value("héllo\nworld"), Value(std::string())};
  auto payload = EncodeWalPayload(record);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeWalPayload(*payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WalRecordType::kInsert);
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->table, "people");
  EXPECT_EQ(decoded->row_id, 7u);
  ASSERT_EQ(decoded->row.size(), record.row.size());
  for (size_t i = 0; i < record.row.size(); ++i) {
    EXPECT_EQ(decoded->row[i], record.row[i]) << i;
  }
}

TEST(WalPayloadTest, EpochRoundTrips) {
  WalRecord record;
  record.type = WalRecordType::kEpoch;
  record.lsn = 3;
  record.epoch = 99;
  auto payload = EncodeWalPayload(record);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeWalPayload(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecordType::kEpoch);
  EXPECT_EQ(decoded->epoch, 99u);
}

TEST(WalPayloadTest, RejectsListValues) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.table = "t";
  record.row = {Value(Value::List{Value(1)})};
  EXPECT_EQ(EncodeWalPayload(record).status().code(),
            StatusCode::kUnimplemented);
}

TEST(WalPayloadTest, RejectsTruncatedAndTrailingBytes) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.table = "t";
  record.row = {Value(1)};
  auto payload = EncodeWalPayload(record);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(DecodeWalPayload(payload->substr(0, payload->size() - 2))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeWalPayload(*payload + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(WalWriterTest, AppendAndReplayInOrder) {
  std::string path = TempWal("append_replay.wal");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)
                  ->AppendMutation(WalRecordType::kInsert, "t", 0,
                                   {Value(1), Value("a")})
                  .ok());
  ASSERT_TRUE((*wal)->AppendEpoch(5).ok());
  ASSERT_TRUE((*wal)
                  ->AppendMutation(WalRecordType::kDelete, "t", 0, {})
                  .ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->last_lsn(), 3u);

  std::vector<WalRecord> seen;
  auto stats = ReplayWal(path, 0, [&](const WalRecord& r) {
    seen.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 3u);
  EXPECT_FALSE(stats->torn_tail);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].type, WalRecordType::kInsert);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[1].type, WalRecordType::kEpoch);
  EXPECT_EQ(seen[1].epoch, 5u);
  EXPECT_EQ(seen[2].type, WalRecordType::kDelete);
  EXPECT_EQ(seen[2].lsn, 3u);
}

TEST(WalWriterTest, ReplaySkipsRecordsAtOrBelowAfterLsn) {
  std::string path = TempWal("after_lsn.wal");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal)
                    ->AppendMutation(WalRecordType::kInsert, "t",
                                     static_cast<RowId>(i), {Value(i)})
                    .ok());
  }
  auto stats = ReplayWal(path, 3, [](const WalRecord& r) {
    EXPECT_GT(r.lsn, 3u);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);
  EXPECT_EQ(stats->skipped, 3u);
  EXPECT_EQ(stats->last_lsn, 5u);
}

TEST(WalWriterTest, MissingFileIsEmptyLog) {
  auto stats = ReplayWal(TempWal("never_written.wal"), 0,
                         [](const WalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 0u);
  EXPECT_FALSE(stats->torn_tail);
}

TEST(WalWriterTest, TornTailStopsReplayCleanly) {
  std::string path = TempWal("torn.wal");
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)
                      ->AppendMutation(WalRecordType::kInsert, "table_name",
                                       static_cast<RowId>(i),
                                       {Value(i), Value("payload")})
                      .ok());
    }
  }
  std::string bytes = ReadAll(path);
  WriteAll(path, bytes.substr(0, bytes.size() - 5));  // tear the last frame

  uint64_t applied = 0;
  auto stats = ReplayWal(path, 0, [&](const WalRecord&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(stats->last_lsn, 2u);
}

TEST(WalWriterTest, CorruptRecordStopsReplayCleanly) {
  std::string path = TempWal("corrupt.wal");
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)
                      ->AppendMutation(WalRecordType::kInsert, "t",
                                       static_cast<RowId>(i), {Value(i)})
                      .ok());
    }
  }
  std::string bytes = ReadAll(path);
  bytes[bytes.size() - 3] ^= 0x5a;  // flip a bit inside the last payload
  WriteAll(path, bytes);

  uint64_t applied = 0;
  auto stats = ReplayWal(path, 0, [&](const WalRecord&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_EQ(applied, 2u);
}

TEST(WalWriterTest, OpenTruncatesTornTailAndResumesLsns) {
  std::string path = TempWal("reopen.wal");
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)
                    ->AppendMutation(WalRecordType::kInsert, "t", 0,
                                     {Value(1)})
                    .ok());
    ASSERT_TRUE((*wal)
                    ->AppendMutation(WalRecordType::kInsert, "t", 1,
                                     {Value(2)})
                    .ok());
  }
  std::string bytes = ReadAll(path);
  WriteAll(path, bytes.substr(0, bytes.size() - 1));  // torn tail

  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->next_lsn(), 2u);  // record 2 was torn away
    ASSERT_TRUE((*wal)
                    ->AppendMutation(WalRecordType::kInsert, "t", 1,
                                     {Value(3)})
                    .ok());
  }
  std::vector<int64_t> values;
  auto stats = ReplayWal(path, 0, [&](const WalRecord& r) {
    values.push_back(r.row[0].AsInt());
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(values, (std::vector<int64_t>{1, 3}));
}

TEST(WalWriterTest, ResetTruncatesAndKeepsLsnCounter) {
  std::string path = TempWal("reset.wal");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 0, {Value(1)}).ok());
  size_t one_record = fs::file_size(path);
  ASSERT_TRUE((*wal)->Reset().ok());
  // The log now holds only the LSN-floor marker, strictly smaller than the
  // mutation record it replaced.
  EXPECT_LT(fs::file_size(path), one_record);
  EXPECT_GT(fs::file_size(path), 0u);
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 1, {Value(2)}).ok());
  EXPECT_EQ((*wal)->last_lsn(), 2u);  // LSNs keep counting across Reset

  auto stats = ReplayWal(path, 1, [](const WalRecord& r) {
    EXPECT_EQ(r.lsn, 2u);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 1u);
  EXPECT_EQ(stats->last_lsn, 2u);
}

TEST(WalWriterTest, ReopenAfterResetResumesLsnsFromTheFloor) {
  // Regression: checkpoint truncates the log, the process "restarts", and
  // the reopened writer must not restart LSNs at 1 — records numbered at or
  // below the snapshot's wal_lsn would be silently skipped by the next
  // recovery.
  std::string path = TempWal("reset_reopen.wal");
  {
    auto wal = WalWriter::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)
                      ->AppendMutation(WalRecordType::kInsert, "t",
                                       static_cast<RowId>(i), {Value(i)})
                      .ok());
    }
    ASSERT_TRUE((*wal)->Reset().ok());  // as CheckpointDatabase does
  }
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 4u);  // floor record carried the counter
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 3, {Value(9)}).ok());

  // Replay past the checkpoint boundary sees exactly the new record.
  std::vector<uint64_t> lsns;
  auto stats = ReplayWal(path, 3, [&](const WalRecord& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{4}));
  EXPECT_EQ(stats->applied, 1u);
  EXPECT_EQ(stats->skipped, 0u);  // floor markers are not counted
}

TEST(WalWriterTest, OpenHonorsMinNextLsn) {
  // A lost or empty log must still respect an externally-known LSN floor
  // (recovery passes the snapshot's wal_lsn via this option).
  std::string path = TempWal("min_next.wal");
  WalOptions options;
  options.min_next_lsn = 10;
  auto wal = WalWriter::Open(path, options);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 10u);
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 0, {Value(1)}).ok());
  EXPECT_EQ((*wal)->last_lsn(), 10u);

  // An existing log that is already past the floor wins.
  auto reopened = WalWriter::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_lsn(), 11u);
}

TEST(WalPayloadTest, LsnFloorRoundTrips) {
  WalRecord record;
  record.type = WalRecordType::kLsnFloor;
  record.lsn = 17;
  auto payload = EncodeWalPayload(record);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeWalPayload(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecordType::kLsnFloor);
  EXPECT_EQ(decoded->lsn, 17u);
}

TEST(WalWriterTest, InjectedFaultFailsAppendAndWriterStaysFailed) {
  std::string path = TempWal("fault.wal");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 0, {Value(1)}).ok());

  FaultInjector::Default().Arm(FaultInjector::Kind::kFail, 1);
  EXPECT_FALSE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 1, {Value(2)}).ok());
  FaultInjector::Default().Disarm();
  // The writer simulates a crashed process: still failed after disarm.
  EXPECT_EQ((*wal)
                ->AppendMutation(WalRecordType::kInsert, "t", 1, {Value(2)})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  uint64_t applied = 0;
  auto stats = ReplayWal(path, 0, [&](const WalRecord&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(applied, 1u);
}

TEST(WalWriterTest, InjectedTruncationLeavesTornTail) {
  std::string path = TempWal("fault_torn.wal");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(
      (*wal)->AppendMutation(WalRecordType::kInsert, "t", 0, {Value(1)}).ok());

  FaultInjector::Default().Arm(FaultInjector::Kind::kTruncate, 1,
                               /*keep_bytes=*/10);
  EXPECT_FALSE((*wal)
                   ->AppendMutation(WalRecordType::kInsert, "t", 1,
                                    {Value("long payload to truncate")})
                   .ok());
  FaultInjector::Default().Disarm();

  uint64_t applied = 0;
  auto stats = ReplayWal(path, 0, [&](const WalRecord&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_EQ(applied, 1u);
}

TEST(FaultInjectorTest, FiresOnNthWriteThenStaysDead) {
  FaultInjector& f = FaultInjector::Default();
  f.Arm(FaultInjector::Kind::kFail, 2);
  auto d1 = f.BeforeWrite(100);
  EXPECT_FALSE(d1.fail);
  EXPECT_EQ(d1.allowed, 100u);
  auto d2 = f.BeforeWrite(100);
  EXPECT_TRUE(d2.fail);
  EXPECT_EQ(d2.allowed, 0u);
  EXPECT_TRUE(f.dead());
  auto d3 = f.BeforeWrite(100);  // dead: everything fails now
  EXPECT_TRUE(d3.fail);
  f.Disarm();
  EXPECT_FALSE(f.dead());
  auto d4 = f.BeforeWrite(100);
  EXPECT_FALSE(d4.fail);
}

TEST(FaultInjectorTest, TruncateAllowsPrefix) {
  FaultInjector& f = FaultInjector::Default();
  f.Arm(FaultInjector::Kind::kTruncate, 1, 7);
  auto d = f.BeforeWrite(100);
  EXPECT_TRUE(d.fail);
  EXPECT_EQ(d.allowed, 7u);
  f.Disarm();
}

}  // namespace
}  // namespace courserank::storage
