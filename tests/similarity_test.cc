#include <gtest/gtest.h>

#include <cmath>

#include "core/similarity.h"

namespace courserank::flexrecs {
namespace {

using storage::Value;

Value Set(std::vector<int> items) {
  Value::List list;
  for (int i : items) list.push_back(Value(i));
  return Value(std::move(list));
}

Value Pairs(std::vector<std::pair<int, double>> items) {
  Value::List list;
  for (const auto& [k, v] : items) {
    list.push_back(Value(Value::List{Value(k), Value(v)}));
  }
  return Value(std::move(list));
}

double Must(Result<std::optional<double>> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->has_value());
  return **r;
}

bool Missing(Result<std::optional<double>> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return !r->has_value();
}

// ---------------------------------------------------------------- sets

TEST(JaccardTest, BasicOverlap) {
  EXPECT_DOUBLE_EQ(Must(JaccardSets(Set({1, 2, 3}), Set({2, 3, 4}))), 0.5);
  EXPECT_DOUBLE_EQ(Must(JaccardSets(Set({1}), Set({1}))), 1.0);
  EXPECT_DOUBLE_EQ(Must(JaccardSets(Set({1}), Set({2}))), 0.0);
}

TEST(JaccardTest, EmptyBothIsIncomparable) {
  EXPECT_TRUE(Missing(JaccardSets(Set({}), Set({}))));
}

TEST(JaccardTest, PairListsDegradeToKeySets) {
  EXPECT_DOUBLE_EQ(
      Must(JaccardSets(Pairs({{1, 5.0}, {2, 3.0}}), Pairs({{2, 1.0}}))), 0.5);
}

TEST(JaccardTest, NonListIsTypeError) {
  EXPECT_FALSE(JaccardSets(Value(1), Set({1})).ok());
}

TEST(DiceTest, Formula) {
  // 2*1 / (2+2) = 0.5
  EXPECT_DOUBLE_EQ(Must(DiceSets(Set({1, 2}), Set({2, 3}))), 0.5);
}

TEST(OverlapTest, NormalizesBySmallerSet) {
  EXPECT_DOUBLE_EQ(Must(OverlapSets(Set({1, 2}), Set({1, 2, 3, 4}))), 1.0);
  EXPECT_TRUE(Missing(OverlapSets(Set({}), Set({1}))));
}

// ---------------------------------------------------------------- vectors

TEST(CosineTest, ParallelVectors) {
  EXPECT_NEAR(Must(CosinePairs(Pairs({{1, 1.0}, {2, 2.0}}),
                               Pairs({{1, 2.0}, {2, 4.0}}))),
              1.0, 1e-12);
}

TEST(CosineTest, OrthogonalKeys) {
  EXPECT_DOUBLE_EQ(
      Must(CosinePairs(Pairs({{1, 1.0}}), Pairs({{2, 1.0}}))), 0.0);
}

TEST(CosineTest, ZeroNormIncomparable) {
  EXPECT_TRUE(Missing(CosinePairs(Pairs({}), Pairs({{1, 1.0}}))));
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(Must(PearsonPairs(Pairs({{1, 1.0}, {2, 2.0}, {3, 3.0}}),
                                Pairs({{1, 2.0}, {2, 4.0}, {3, 6.0}}))),
              1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(Must(PearsonPairs(Pairs({{1, 1.0}, {2, 2.0}, {3, 3.0}}),
                                Pairs({{1, 3.0}, {2, 2.0}, {3, 1.0}}))),
              -1.0, 1e-12);
}

TEST(PearsonTest, NeedsTwoCommonKeysAndVariance) {
  EXPECT_TRUE(Missing(PearsonPairs(Pairs({{1, 1.0}}), Pairs({{1, 2.0}}))));
  EXPECT_TRUE(Missing(PearsonPairs(Pairs({{1, 1.0}, {2, 1.0}}),
                                   Pairs({{1, 2.0}, {2, 3.0}}))));
}

TEST(InverseEuclideanTest, IdenticalRatingsGiveOne) {
  Value a = Pairs({{1, 4.0}, {2, 3.0}});
  EXPECT_DOUBLE_EQ(Must(InverseEuclideanPairs(a, a)), 1.0);
}

TEST(InverseEuclideanTest, DistanceDecaysScore) {
  // dist = sqrt((4-2)^2) = 2 -> 1/3.
  EXPECT_NEAR(Must(InverseEuclideanPairs(Pairs({{1, 4.0}}),
                                         Pairs({{1, 2.0}}))),
              1.0 / 3.0, 1e-12);
}

TEST(InverseEuclideanTest, NoCommonKeysIncomparable) {
  EXPECT_TRUE(Missing(
      InverseEuclideanPairs(Pairs({{1, 4.0}}), Pairs({{2, 4.0}}))));
}

TEST(InverseManhattanTest, Formula) {
  // |4-2| + |3-5| = 4 -> 1/5.
  EXPECT_NEAR(Must(InverseManhattanPairs(Pairs({{1, 4.0}, {2, 3.0}}),
                                         Pairs({{1, 2.0}, {2, 5.0}}))),
              0.2, 1e-12);
}

// ---------------------------------------------------------------- strings

TEST(TokenJaccardTest, StopwordsIgnored) {
  EXPECT_DOUBLE_EQ(Must(TokenJaccard(Value("Introduction to Programming"),
                                     Value("Advanced Programming"))),
                   1.0 / 2.0);  // {programming} vs {advanced, programming}
}

TEST(TokenJaccardTest, IdenticalTitles) {
  EXPECT_DOUBLE_EQ(
      Must(TokenJaccard(Value("Calculus"), Value("calculus"))), 1.0);
}

TEST(TokenJaccardTest, RequiresStrings) {
  EXPECT_FALSE(TokenJaccard(Value(1), Value("x")).ok());
}

TEST(TrigramTest, SimilarWordsScoreHigh) {
  double close = Must(TrigramSimilarity(Value("programming"),
                                        Value("programs")));
  double far = Must(TrigramSimilarity(Value("programming"),
                                      Value("calculus")));
  EXPECT_GT(close, far);
  EXPECT_DOUBLE_EQ(
      Must(TrigramSimilarity(Value("abc"), Value("ABC"))), 1.0);
}

TEST(LevenshteinTest, RatioProperties) {
  EXPECT_DOUBLE_EQ(Must(LevenshteinRatio(Value("abc"), Value("abc"))), 1.0);
  EXPECT_DOUBLE_EQ(Must(LevenshteinRatio(Value("abc"), Value("abd"))),
                   1.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Must(LevenshteinRatio(Value(""), Value(""))), 1.0);
  EXPECT_DOUBLE_EQ(Must(LevenshteinRatio(Value("abc"), Value(""))), 0.0);
}

// ---------------------------------------------------------------- misc

TEST(NumericProximityTest, Formula) {
  EXPECT_DOUBLE_EQ(Must(NumericProximity(Value(3.0), Value(3.0))), 1.0);
  EXPECT_DOUBLE_EQ(Must(NumericProximity(Value(3.0), Value(4.0))), 0.5);
  EXPECT_TRUE(Missing(NumericProximity(Value(), Value(1.0))));
}

TEST(ExactMatchTest, Indicator) {
  EXPECT_DOUBLE_EQ(Must(ExactMatch(Value("a"), Value("a"))), 1.0);
  EXPECT_DOUBLE_EQ(Must(ExactMatch(Value("a"), Value("b"))), 0.0);
  EXPECT_TRUE(Missing(ExactMatch(Value(), Value("a"))));
}

TEST(RatingOfTest, LooksUpKeyInPairs) {
  Value ratings = Pairs({{10, 4.5}, {20, 2.0}});
  EXPECT_DOUBLE_EQ(Must(RatingOf(Value(10), ratings)), 4.5);
  EXPECT_TRUE(Missing(RatingOf(Value(99), ratings)));
  EXPECT_TRUE(Missing(RatingOf(Value(), ratings)));
}

// ---------------------------------------------------------------- library

TEST(LibraryTest, BuiltinsRegistered) {
  SimilarityLibrary library;
  for (const char* name :
       {"jaccard", "dice", "overlap", "cosine", "pearson", "inv_euclidean",
        "inv_manhattan", "token_jaccard", "trigram", "levenshtein",
        "numeric_proximity", "exact", "rating_of"}) {
    EXPECT_TRUE(library.Has(name)) << name;
  }
  EXPECT_EQ(library.Names().size(), 13u);
}

TEST(LibraryTest, LookupIsCaseInsensitive) {
  SimilarityLibrary library;
  EXPECT_TRUE(library.Get("JACCARD").ok());
  EXPECT_EQ(library.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(LibraryTest, CustomRegistration) {
  SimilarityLibrary library;
  library.Register("always_half", [](const Value&, const Value&) {
    return Result<std::optional<double>>(std::optional<double>(0.5));
  });
  auto fn = library.Get("always_half");
  ASSERT_TRUE(fn.ok());
  EXPECT_DOUBLE_EQ(Must((*fn)(Value(1), Value(2))), 0.5);
}

struct SymmetryCase {
  const char* name;
};

class SymmetryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SymmetryTest, SimilarityIsSymmetric) {
  SimilarityLibrary library;
  auto fn = library.Get(GetParam());
  ASSERT_TRUE(fn.ok());
  Value a = Pairs({{1, 4.0}, {2, 3.0}, {3, 5.0}});
  Value b = Pairs({{2, 2.0}, {3, 4.0}, {4, 1.0}});
  auto ab = (*fn)(a, b);
  auto ba = (*fn)(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  ASSERT_EQ(ab->has_value(), ba->has_value());
  if (ab->has_value()) {
    EXPECT_NEAR(**ab, **ba, 1e-12) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PairFunctions, SymmetryTest,
                         ::testing::Values("jaccard", "dice", "overlap",
                                           "cosine", "pearson",
                                           "inv_euclidean", "inv_manhattan"));

class RangeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RangeTest, ScoreWithinUnitInterval) {
  SimilarityLibrary library;
  auto fn = library.Get(GetParam());
  ASSERT_TRUE(fn.ok());
  // A few random-ish sparse vectors.
  std::vector<Value> vectors = {
      Pairs({{1, 1.0}}), Pairs({{1, 5.0}, {2, 1.0}}),
      Pairs({{2, 3.0}, {3, 3.0}}), Pairs({{1, 2.0}, {2, 2.0}, {3, 2.0}})};
  for (const Value& a : vectors) {
    for (const Value& b : vectors) {
      auto r = (*fn)(a, b);
      ASSERT_TRUE(r.ok());
      if (r->has_value()) {
        EXPECT_GE(**r, 0.0) << GetParam();
        EXPECT_LE(**r, 1.0 + 1e-12) << GetParam();  // fp rounding at 1.0
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UnitRangeFunctions, RangeTest,
                         ::testing::Values("jaccard", "dice", "overlap",
                                           "cosine", "inv_euclidean",
                                           "inv_manhattan"));

}  // namespace
}  // namespace courserank::flexrecs
