#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace courserank::obs {
namespace {

// ----------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketIndexEdges) {
  // Bucket 0 holds v <= 1; bucket i holds 2^(i-1) < v <= 2^i (le semantics),
  // so exact powers of two land in their own bound's bucket.
  EXPECT_EQ(Histogram::BucketIndexFor(0), 0u);
  EXPECT_EQ(Histogram::BucketIndexFor(1), 0u);
  EXPECT_EQ(Histogram::BucketIndexFor(2), 1u);
  EXPECT_EQ(Histogram::BucketIndexFor(3), 2u);
  EXPECT_EQ(Histogram::BucketIndexFor(4), 2u);
  EXPECT_EQ(Histogram::BucketIndexFor(5), 3u);
  EXPECT_EQ(Histogram::BucketIndexFor(8), 3u);
  EXPECT_EQ(Histogram::BucketIndexFor(9), 4u);
  EXPECT_EQ(Histogram::BucketIndexFor(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndexFor(1025), 11u);
  EXPECT_EQ(Histogram::BucketIndexFor(uint64_t{1} << 46), 46u);
  EXPECT_EQ(Histogram::BucketIndexFor((uint64_t{1} << 46) + 1),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndexFor(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperBound(46), uint64_t{1} << 46);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, RecordAndQuantile) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 10u * 1000u);
  EXPECT_EQ(h.bucket_count(0), 90u);
  EXPECT_EQ(h.bucket_count(10), 10u);  // 1000 <= 1024
  // The quantile is the containing bucket's upper bound.
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(0.5), 1u);
  EXPECT_EQ(h.Quantile(0.99), 1024u);
  EXPECT_EQ(h.Quantile(1.0), 1024u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.Quantile(0.5), UINT64_MAX);
}

// ------------------------------------------------------------------ Registry

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("x"), reg.GetCounter("x"));
  EXPECT_NE(reg.GetCounter("x"), reg.GetCounter("y"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
  // Counter / gauge / histogram namespaces are independent.
  reg.GetCounter("shared");
  reg.GetGauge("shared");
  reg.GetHistogram("shared");
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("t_c")->Add(3);
  reg.GetGauge("t_g")->Set(-2);
  Histogram* h = reg.GetHistogram("t_h");
  h->Record(1);
  h->Record(5);
  h->Record(1000);
  std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE t_c counter\nt_c 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t_g gauge\nt_g -2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t_h histogram\n"), std::string::npos);
  // Cumulative buckets: le="1" has 1 sample, le="8" has 2, le="1024" all 3.
  EXPECT_NE(out.find("t_h_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("t_h_bucket{le=\"8\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("t_h_bucket{le=\"1024\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("t_h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("t_h_sum 1006\n"), std::string::npos);
  EXPECT_NE(out.find("t_h_count 3\n"), std::string::npos);
  // Buckets outside the non-empty range are elided.
  EXPECT_EQ(out.find("t_h_bucket{le=\"2048\"}"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("t_c")->Add(3);
  reg.GetGauge("t_g")->Set(-2);
  Histogram* h = reg.GetHistogram("t_h");
  h->Record(1);
  h->Record(5);
  h->Record(1000);
  h->Record(UINT64_MAX);
  std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"t_c\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"t_g\": -2"), std::string::npos);
  EXPECT_NE(out.find("\"t_h\": {\"count\": 4"), std::string::npos);
  // Non-cumulative buckets, only non-empty ones; overflow le is a string.
  EXPECT_NE(out.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(out.find("{\"le\": 8, \"count\": 1}"), std::string::npos);
  EXPECT_NE(out.find("{\"le\": 1024, \"count\": 1}"), std::string::npos);
  EXPECT_NE(out.find("{\"le\": \"+Inf\", \"count\": 1}"), std::string::npos);
  EXPECT_NE(out.find("\"p50\""), std::string::npos);
  // Balanced braces — cheap well-formedness check without a JSON parser.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

TEST(MetricsRegistryTest, EmptyRegistryRendersValidSkeleton) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.RenderPrometheus(), "");
  std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

// --------------------------------------------------------------- Concurrency

// Hammers one counter / gauge / histogram from all pool workers while also
// reading them mid-flight. Run under -DCOURSERANK_SANITIZE=thread this
// certifies the relaxed-atomic design is race-free.
TEST(MetricsConcurrencyTest, ParallelWritesAndReadsAreClean) {
  ThreadPool pool(4);
  Counter counter;
  Gauge gauge;
  Histogram hist;
  constexpr size_t kN = 100000;
  pool.ParallelFor(kN, 1, [&](size_t /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter.Add();
      gauge.Add(1);
      hist.Record(i & 1023);
    }
    // Concurrent reads must also be clean (exposition during load).
    (void)counter.value();
    (void)gauge.value();
    (void)hist.Quantile(0.5);
  });
  EXPECT_EQ(counter.value(), kN);
  EXPECT_EQ(gauge.value(), static_cast<int64_t>(kN));
  EXPECT_EQ(hist.count(), kN);
}

TEST(MetricsConcurrencyTest, RegistryInterningUnderParallelFor) {
  ThreadPool pool(4);
  MetricsRegistry reg;
  std::vector<Counter*> seen(ThreadPool::kMaxChunks, nullptr);
  pool.ParallelFor(ThreadPool::kMaxChunks, 1,
                   [&](size_t chunk, size_t /*begin*/, size_t /*end*/) {
                     Counter* c = reg.GetCounter("contended");
                     c->Add();
                     seen[chunk] = c;
                   });
  Counter* expected = reg.GetCounter("contended");
  uint64_t total = expected->value();
  for (Counter* c : seen) {
    if (c == nullptr) continue;  // fewer chunks than kMaxChunks
    EXPECT_EQ(c, expected);
  }
  EXPECT_GE(total, 1u);
}

// ----------------------------------------------------------------- TraceSink

TEST(TraceSinkTest, SamplingPattern) {
  // Period 4: the thread's first root span is sampled, then every 4th.
  ScopedSpan::ResetSamplingForTest();
  TraceSink sink(16, 4);
  for (int i = 0; i < 8; ++i) {
    ScopedSpan root("r", nullptr, &sink);
  }
  EXPECT_EQ(sink.total_recorded(), 2u);  // roots 0 and 4

  ScopedSpan::ResetSamplingForTest();
  TraceSink off(16, 0);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan root("r", nullptr, &off);
  }
  EXPECT_EQ(off.total_recorded(), 0u);

  sink.set_period(0);
  EXPECT_EQ(sink.period(), 0u);
}

TEST(TraceSinkTest, RingWraparoundKeepsNewestOldestFirst) {
  TraceSink sink(4, 1);
  for (uint64_t i = 1; i <= 10; ++i) sink.Record("s", i, 1, 0);
  EXPECT_EQ(sink.total_recorded(), 10u);
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The 4 newest events, oldest first: seq 7, 8, 9, 10.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7u + i);
    EXPECT_EQ(events[i].start_ns, 7u + i);
  }
  sink.Clear();
  EXPECT_TRUE(sink.Snapshot().empty());
}

// ---------------------------------------------------------------- ScopedSpan

TEST(ScopedSpanTest, NestingRecordsInnerBeforeOuterWithDepths) {
  ScopedSpan::ResetSamplingForTest();
  TraceSink sink(16, 1);  // sample every root
  {
    ScopedSpan outer("outer", nullptr, &sink);
    EXPECT_TRUE(ScopedSpan::active());
    { ScopedSpan a("a", nullptr, &sink); }
    { ScopedSpan b("b", nullptr, &sink); }
  }
  EXPECT_FALSE(ScopedSpan::active());
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at close: inner spans precede the enclosing one.
  EXPECT_STREQ(events[0].stage, "a");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].stage, "b");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].stage, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  // The outer span encloses its children in time.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(ScopedSpanTest, UnsampledRootSkipsHistogramAndSink) {
  ScopedSpan::ResetSamplingForTest();
  TraceSink sink(16, 0);  // tracing off
  Histogram hist;
  { ScopedSpan span("quiet", &hist, &sink); }
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(sink.Snapshot().empty());
}

TEST(ScopedSpanTest, AlwaysModeTimesHistogramEvenWhenTracingOff) {
  TraceSink sink(16, 0);
  Histogram hist;
  {
    ScopedSpan span("always", &hist, &sink, ScopedSpan::Mode::kAlways);
  }
  EXPECT_EQ(hist.count(), 1u);          // histogram sample unconditional
  EXPECT_TRUE(sink.Snapshot().empty());  // but period 0 keeps the ring empty
}

TEST(ScopedSpanTest, SampledChildrenInheritAmbientDecision) {
  ScopedSpan::ResetSamplingForTest();
  TraceSink sink(16, 2);  // roots alternate sampled / unsampled
  Histogram hist;
  for (int root = 0; root < 4; ++root) {
    ScopedSpan outer("root", nullptr, &sink);
    ScopedSpan inner("child", &hist, &sink);
  }
  // Roots 0 and 2 sampled: 2 child + 2 root events, 2 histogram samples.
  EXPECT_EQ(sink.total_recorded(), 4u);
  EXPECT_EQ(hist.count(), 2u);
}

}  // namespace
}  // namespace courserank::obs
