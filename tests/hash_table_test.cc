// RowKeyTable differential fuzz (DESIGN.md §14): random mixed-type keys —
// NULLs, bools, ints, int-tagged doubles (1 vs 1.0, -0.0, NaN), dictionary
// strings, lists — staged into the open-addressing table and checked
// against a std::map oracle keyed by canonical Value::Compare order. Also
// locks down the canonical hash/compare contract in storage::Value and the
// serial-vs-parallel build identity.
//
// Tagged verify-hash-differential: `ctest -L verify-hash-differential`,
// also exercised under the address/thread sanitizer configs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/hash_table.h"
#include "storage/value.h"

namespace courserank::query {
namespace {

using storage::Row;
using storage::RowHash;
using storage::Value;

// ------------------------------------------------ canonical hash/compare

TEST(CanonicalValueTest, IntTaggedDoublesCompareAndHashEqual) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(1.0)), 0);
  EXPECT_EQ(Value(1.0).Compare(Value(int64_t{1})), 0);
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value(int64_t{-7}).Hash(), Value(-7.0).Hash());
  EXPECT_NE(Value(int64_t{1}).Compare(Value(1.5)), 0);
  // -0.0 canonicalizes to 0.0 and to integer 0.
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
  EXPECT_EQ(Value(-0.0).Hash(), Value(int64_t{0}).Hash());
  EXPECT_EQ(Value(-0.0).Compare(Value(int64_t{0})), 0);
}

TEST(CanonicalValueTest, LargeMagnitudeIntDoubleComparisonIsExact) {
  // 2^63 is not representable as int64; every int64 sorts below it.
  const double two63 = 9223372036854775808.0;
  EXPECT_LT(Value(std::numeric_limits<int64_t>::max()).Compare(Value(two63)),
            0);
  EXPECT_GT(Value(two63).Compare(Value(std::numeric_limits<int64_t>::max())),
            0);
  // -2^63 is exactly representable and equals int64 min.
  EXPECT_EQ(
      Value(std::numeric_limits<int64_t>::min()).Compare(Value(-two63)), 0);
  EXPECT_EQ(Value(std::numeric_limits<int64_t>::min()).Hash(),
            Value(-two63).Hash());
  // Above 2^53 doubles lose integer precision; comparison must not. 2^53
  // and 2^53 + 1 both round to the same double, so the ints must compare
  // unequal to prove the path is not double(a) - b.
  const int64_t p53 = int64_t{1} << 53;
  EXPECT_EQ(Value(p53).Compare(Value(static_cast<double>(p53))), 0);
  EXPECT_GT(Value(p53 + 1).Compare(Value(static_cast<double>(p53))), 0);
  // Fractional doubles between adjacent large ints order correctly.
  EXPECT_LT(Value(p53).Compare(Value(static_cast<double>(p53) + 2.5)), 0);
}

TEST(CanonicalValueTest, NaNIsOneEquivalenceClass) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double nan2 = std::nan("0x7777");
  EXPECT_EQ(Value(nan).Compare(Value(nan2)), 0);
  EXPECT_EQ(Value(nan).Hash(), Value(nan2).Hash());
  // NaN sorts below every non-NaN numeric, above nothing else numeric.
  EXPECT_LT(Value(nan).Compare(Value(-1e308)), 0);
  EXPECT_LT(Value(nan).Compare(Value(std::numeric_limits<int64_t>::min())),
            0);
  EXPECT_GT(Value(0.0).Compare(Value(nan)), 0);
}

TEST(CanonicalValueTest, HashConsistentWithCompareOnRandomPairs) {
  Rng rng(20260808);
  auto random_value = [&]() -> Value {
    switch (rng.NextBounded(6)) {
      case 0:
        return Value::Null();
      case 1:
        return Value(rng.NextBounded(2) == 0);
      case 2:
        return Value(rng.NextInt(-4, 4));
      case 3:
        // Mostly int-valued doubles to force cross-type collisions.
        return Value(static_cast<double>(rng.NextInt(-4, 4)) +
                     (rng.NextBounded(3) == 0 ? 0.5 : 0.0));
      case 4:
        return Value("s" + std::to_string(rng.NextBounded(4)));
      default:
        return Value(Value::List{Value(rng.NextInt(0, 2)),
                                 Value(static_cast<double>(rng.NextInt(0, 2)))});
    }
  };
  for (int trial = 0; trial < 20000; ++trial) {
    Value a = random_value();
    Value b = random_value();
    if (a.Compare(b) == 0) {
      EXPECT_EQ(a.Hash(), b.Hash())
          << a.ToString() << " == " << b.ToString() << " but hashes differ";
    }
  }
}

// ------------------------------------------------------ differential fuzz

/// std::map-based oracle: keys ordered by lexicographic Value::Compare, so
/// keys the canonical semantics call equal (1 vs 1.0, NaN vs NaN, NULL vs
/// NULL) land in one bucket.
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

Value RandomCell(Rng& rng) {
  switch (rng.NextBounded(8)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng.NextBounded(2) == 0);
    case 2:
      return Value(rng.NextInt(-6, 6));
    case 3:
      return Value(static_cast<double>(rng.NextInt(-6, 6)));  // int-tagged
    case 4:
      return Value(static_cast<double>(rng.NextInt(-6, 6)) + 0.25);
    case 5:
      return rng.NextBounded(4) == 0
                 ? Value(-0.0)
                 : Value(std::numeric_limits<double>::quiet_NaN());
    case 6:
      return Value("k" + std::to_string(rng.NextBounded(9)));
    default:
      return Value(Value::List{Value(rng.NextInt(0, 2)),
                               Value("t" + std::to_string(rng.NextBounded(2)))});
  }
}

bool RowHasNull(const Row& row) {
  for (const Value& v : row) {
    if (v.is_null()) return true;
  }
  return false;
}

/// One fuzz round: random keys staged into a RowKeyTable and grouped by the
/// oracle; every post-build query must agree with the oracle.
void FuzzRound(uint64_t seed, size_t width, size_t n, bool skip_null_keys,
               ThreadPool* pool) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " width=" + std::to_string(width) + " n=" + std::to_string(n) +
               " skip_null=" + std::to_string(skip_null_keys) +
               " pool=" + std::to_string(pool != nullptr));
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) row.push_back(RandomCell(rng));
    rows.push_back(std::move(row));
  }

  RowKeyTable table(width, /*build_chains=*/true);
  table.Reserve(n);
  for (size_t i = 0; i < n; ++i) table.StageRow(i, rows[i]);
  table.Build(n, skip_null_keys, pool);

  // Oracle groups in first-appearance order.
  std::map<Row, std::vector<uint32_t>, RowLess> oracle;
  size_t oracle_groups = 0;
  std::vector<uint32_t> first_of(n, 0);  // staged index -> leader index
  for (size_t i = 0; i < n; ++i) {
    if (skip_null_keys && RowHasNull(rows[i])) continue;
    auto [it, inserted] = oracle.try_emplace(rows[i]);
    if (inserted) ++oracle_groups;
    it->second.push_back(static_cast<uint32_t>(i));
  }
  ASSERT_EQ(table.entry_count(), oracle_groups);

  // Per staged key: entry assignment, leader flag, chain contents.
  for (auto& [key, members] : oracle) {
    uint32_t entry = table.EntryOf(members[0]);
    ASSERT_NE(entry, RowKeyTable::kNoEntry);
    EXPECT_EQ(table.LeaderRow(entry), members[0]);
    EXPECT_EQ(table.EntryRows(entry), members.size());
    EXPECT_TRUE(table.IsEntryLeader(members[0]));
    std::vector<uint32_t> chained;
    ASSERT_TRUE(table
                    .ForEachEntryRow(entry,
                                     [&](uint32_t r) {
                                       chained.push_back(r);
                                       return Status::OK();
                                     })
                    .ok());
    EXPECT_EQ(chained, members);  // ascending staged order
    for (size_t k = 1; k < members.size(); ++k) {
      EXPECT_EQ(table.EntryOf(members[k]), entry);
      EXPECT_FALSE(table.IsEntryLeader(members[k]));
    }
    // Probing an existing key finds its entry.
    uint64_t steps = 0;
    EXPECT_EQ(table.FindRow(key, &steps), entry);
  }

  // Skipped NULL keys have no entry; probes for them miss.
  for (size_t i = 0; i < n; ++i) {
    if (skip_null_keys && RowHasNull(rows[i])) {
      EXPECT_EQ(table.EntryOf(i), RowKeyTable::kNoEntry);
      EXPECT_FALSE(table.IsEntryLeader(i));
    }
  }

  // Random probe keys: hit iff the oracle has the key.
  for (int probe = 0; probe < 200; ++probe) {
    Row key;
    key.reserve(width);
    for (size_t c = 0; c < width; ++c) key.push_back(RandomCell(rng));
    uint64_t steps = 0;
    uint32_t got = table.FindRow(key, &steps);
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      EXPECT_EQ(got, RowKeyTable::kNoEntry);
    } else {
      EXPECT_EQ(got, table.EntryOf(it->second[0]));
    }
  }
}

TEST(RowKeyTableFuzzTest, MatchesMapOracleSerial) {
  uint64_t seed = 97;
  for (size_t width : {1, 2, 3}) {
    for (size_t n : {0, 1, 7, 64, 1500}) {
      for (bool skip_null : {false, true}) {
        FuzzRound(seed++, width, n, skip_null, nullptr);
      }
    }
  }
}

TEST(RowKeyTableFuzzTest, MatchesMapOracleParallelBuild) {
  ThreadPool pool(3);
  uint64_t seed = 570;
  for (size_t width : {1, 2}) {
    for (size_t n : {64, 1500, 9000}) {
      for (bool skip_null : {false, true}) {
        FuzzRound(seed++, width, n, skip_null, &pool);
      }
    }
  }
}

/// Serial and parallel builds over the same staged keys must agree on
/// every observable: entry ids, leaders, chains, and stats that are
/// structural (entries, staged, max_chain).
TEST(RowKeyTableFuzzTest, ParallelBuildIdenticalToSerial) {
  ThreadPool pool(3);
  Rng rng(4242);
  const size_t kWidth = 2;
  const size_t kN = 4000;
  std::vector<Row> rows;
  rows.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    rows.push_back(Row{RandomCell(rng), RandomCell(rng)});
  }
  RowKeyTable serial(kWidth, /*build_chains=*/true);
  RowKeyTable parallel(kWidth, /*build_chains=*/true);
  serial.Reserve(kN);
  parallel.Reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    serial.StageRow(i, rows[i]);
    parallel.StageRow(i, rows[i]);
  }
  serial.Build(kN, /*skip_null_keys=*/false, nullptr);
  parallel.Build(kN, /*skip_null_keys=*/false, &pool);
  ASSERT_EQ(serial.entry_count(), parallel.entry_count());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(serial.EntryOf(i), parallel.EntryOf(i)) << i;
    EXPECT_EQ(serial.IsEntryLeader(i), parallel.IsEntryLeader(i)) << i;
  }
  HashTableStats a = serial.stats();
  HashTableStats b = parallel.stats();
  EXPECT_EQ(a.staged, b.staged);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.max_chain, b.max_chain);
}

/// The canonical-equality bug the table exists to fix: int-tagged doubles,
/// -0.0, NaN, and NULLs each collapse to one group.
TEST(RowKeyTableTest, CanonicalKeyClasses) {
  std::vector<Row> rows = {
      {Value(int64_t{1})}, {Value(1.0)},                              // same
      {Value(-0.0)},       {Value(0.0)},       {Value(int64_t{0})},  // same
      {Value(std::numeric_limits<double>::quiet_NaN())},
      {Value(std::nan("2"))},                                        // same
      {Value::Null()},     {Value::Null()},                          // same
      {Value(1.5)},
  };
  RowKeyTable table(1, /*build_chains=*/false);
  table.Reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) table.StageRow(i, rows[i]);
  table.Build(rows.size(), /*skip_null_keys=*/false, nullptr);
  EXPECT_EQ(table.entry_count(), 5u);
  EXPECT_EQ(table.EntryOf(0), table.EntryOf(1));
  EXPECT_EQ(table.EntryOf(2), table.EntryOf(3));
  EXPECT_EQ(table.EntryOf(2), table.EntryOf(4));
  EXPECT_EQ(table.EntryOf(5), table.EntryOf(6));
  EXPECT_EQ(table.EntryOf(7), table.EntryOf(8));
  EXPECT_NE(table.EntryOf(9), table.EntryOf(0));
  // Dictionary fast path: a probe string that was never staged misses.
  RowKeyTable strs(1, /*build_chains=*/false);
  strs.Reserve(2);
  Row sa{Value("alpha")};
  Row sb{Value("beta")};
  strs.StageRow(0, sa);
  strs.StageRow(1, sb);
  strs.Build(2, /*skip_null_keys=*/false, nullptr);
  uint64_t steps = 0;
  EXPECT_EQ(strs.Find1(Value("alpha"), &steps), strs.EntryOf(0));
  EXPECT_EQ(strs.Find1(Value("gamma"), &steps), RowKeyTable::kNoEntry);
}

/// Forces saved-hash resize: more distinct keys than the initial slot
/// capacity of any partition can hold without growth.
TEST(RowKeyTableTest, GrowthPreservesEntries) {
  const size_t kN = 200000;
  RowKeyTable table(1, /*build_chains=*/false);
  table.Reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    Row row{Value(static_cast<int64_t>(i))};
    table.StageRow(i, row);
  }
  table.Build(kN, /*skip_null_keys=*/false, nullptr);
  EXPECT_EQ(table.entry_count(), kN);
  EXPECT_GT(table.stats().resizes, 0u);
  uint64_t steps = 0;
  for (size_t i = 0; i < kN; i += 997) {
    EXPECT_EQ(table.Find1(Value(static_cast<int64_t>(i)), &steps),
              table.EntryOf(i));
  }
  EXPECT_EQ(table.Find1(Value(static_cast<int64_t>(kN)), &steps),
            RowKeyTable::kNoEntry);
}

}  // namespace
}  // namespace courserank::query
