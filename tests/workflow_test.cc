#include <gtest/gtest.h>

#include "core/flexrecs_engine.h"
#include "core/workflow.h"
#include "core/workflow_parser.h"
#include "storage/database.h"

namespace courserank::flexrecs {
namespace {

using storage::Schema;
using storage::Value;
using storage::ValueType;

/// A miniature Students/Courses/Ratings world with a known CF answer.
class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto students = db_.CreateTable(
        "Students", Schema({{"SuID", ValueType::kInt, false},
                            {"Name", ValueType::kString, false}}),
        {"SuID"});
    ASSERT_TRUE(students.ok());
    auto courses = db_.CreateTable(
        "Courses", Schema({{"CourseID", ValueType::kInt, false},
                           {"Title", ValueType::kString, false},
                           {"Year", ValueType::kInt, false}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());
    auto ratings = db_.CreateTable(
        "Ratings", Schema({{"SuID", ValueType::kInt, false},
                           {"CourseID", ValueType::kInt, false},
                           {"Score", ValueType::kDouble, false}}),
        {"SuID", "CourseID"});
    ASSERT_TRUE(ratings.ok());

    auto ins = [&](const char* table, storage::Row row) {
      ASSERT_TRUE(db_.FindTable(table)->Insert(std::move(row)).ok());
    };
    ins("Students", {Value(444), Value("target")});
    ins("Students", {Value(1), Value("twin")});      // rates like target
    ins("Students", {Value(2), Value("opposite")});  // rates inversely
    ins("Students", {Value(3), Value("stranger")});  // no overlap

    ins("Courses", {Value(10), Value("Introduction to Programming"),
                    Value(2008)});
    ins("Courses", {Value(11), Value("Advanced Programming"), Value(2008)});
    ins("Courses", {Value(12), Value("Calculus"), Value(2008)});
    ins("Courses", {Value(13), Value("Databases"), Value(2007)});
    ins("Courses", {Value(14), Value("Painting"), Value(2008)});

    // Target rated 10 and 12.
    ins("Ratings", {Value(444), Value(10), Value(5.0)});
    ins("Ratings", {Value(444), Value(12), Value(4.0)});
    // Twin agrees exactly, and also loves 11.
    ins("Ratings", {Value(1), Value(10), Value(5.0)});
    ins("Ratings", {Value(1), Value(12), Value(4.0)});
    ins("Ratings", {Value(1), Value(11), Value(5.0)});
    // Opposite disagrees, likes 14.
    ins("Ratings", {Value(2), Value(10), Value(1.0)});
    ins("Ratings", {Value(2), Value(12), Value(1.0)});
    ins("Ratings", {Value(2), Value(14), Value(4.5)});
    // Stranger rates only 13.
    ins("Ratings", {Value(3), Value(13), Value(3.0)});

    engine_ = std::make_unique<FlexRecsEngine>(&db_);
  }

  Relation MustRun(const WorkflowNode& root, ParamMap params = {}) {
    auto rel = engine_->Run(root, params);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return rel.ok() ? std::move(*rel) : Relation{};
  }

  storage::Database db_;
  std::unique_ptr<FlexRecsEngine> engine_;
};

// ---------------------------------------------------------------- builder

TEST_F(WorkflowTest, TableSelectCompilesToSingleSql) {
  NodePtr wf =
      std::move(Workflow::Table("Courses").Select("Year = 2008")).Build().value();
  auto compiled = engine_->Compile(*wf);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->steps().size(), 1u);
  EXPECT_EQ(compiled->steps()[0].kind, CompiledStep::Kind::kSql);
  EXPECT_NE(compiled->steps()[0].sql.find("WHERE"), std::string::npos);
  Relation rel = MustRun(*wf);
  EXPECT_EQ(rel.rows.size(), 4u);
}

TEST_F(WorkflowTest, ProjectAndTopKStillOneSqlStep) {
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Select("Year = 2008")
                             .Project({{"Title", "Title"}})
                             .TopK("Title", 2, /*descending=*/false))
                   .Build().value();
  auto compiled = engine_->Compile(*wf);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->steps().size(), 1u);
  Relation rel = MustRun(*wf);
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsString(), "Advanced Programming");
}

TEST_F(WorkflowTest, JoinCompilesToSql) {
  NodePtr wf = std::move(Workflow::Table("Ratings")
                             .Join(Workflow::Table("Students"),
                                   "Ratings.SuID = Students.SuID"))
                   .Build().value();
  // Unaliased self-contained join: our From builder uses bare table names.
  auto compiled = engine_->Compile(*wf);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->steps().size(), 1u);
  Relation rel = MustRun(*wf);
  EXPECT_EQ(rel.rows.size(), 9u);
}

TEST_F(WorkflowTest, RecommendRunsPhysically) {
  RecommendSpec spec;
  spec.similarity = "token_jaccard";
  spec.input_attr = "Title";
  spec.reference_attr = "Title";
  spec.agg = RecommendAgg::kMax;
  spec.score_column = "score";
  NodePtr wf =
      std::move(Workflow::Table("Courses")
                    .Recommend(Workflow::Table("Courses")
                                   .Select("CourseID = 10"),
                               spec))
          .Build().value();
  Relation rel = MustRun(*wf);
  ASSERT_EQ(rel.schema.column(rel.schema.num_columns() - 1).name, "score");
  // Course 10 itself scores 1.0 and ranks first.
  EXPECT_EQ(rel.rows[0][0].AsInt(), 10);
  // "Advanced Programming" shares a content word; beats "Calculus".
  EXPECT_EQ(rel.rows[1][0].AsInt(), 11);
}

TEST_F(WorkflowTest, RecommendAggregations) {
  // Reference with two rows: scores for course keys via rating_of.
  for (RecommendAgg agg : {RecommendAgg::kMax, RecommendAgg::kAvg,
                           RecommendAgg::kSum}) {
    RecommendSpec spec;
    spec.similarity = "rating_of";
    spec.input_attr = "CourseID";
    spec.reference_attr = "ratings";
    spec.agg = agg;
    NodePtr wf = std::move(
        Workflow::Table("Courses")
            .Recommend(Workflow::Table("Students")
                           .Extend(Workflow::Table("Ratings"), "SuID",
                                   "SuID", {"CourseID", "Score"}, "ratings")
                           .Select("SuID IN (444, 1)"),
                       spec))
        .Build().value();
    Relation rel = MustRun(*wf);
    // Course 10 rated 5.0 by both refs.
    double expected = agg == RecommendAgg::kSum ? 10.0 : 5.0;
    bool found = false;
    size_t score_col = rel.schema.num_columns() - 1;
    for (const auto& row : rel.rows) {
      if (row[0].AsInt() == 10) {
        EXPECT_DOUBLE_EQ(row[score_col].AsDouble(), expected);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(WorkflowTest, RecommendDropsIncomparableInputs) {
  RecommendSpec spec;
  spec.similarity = "rating_of";
  spec.input_attr = "CourseID";
  spec.reference_attr = "ratings";
  spec.agg = RecommendAgg::kAvg;
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Students")
                         .Extend(Workflow::Table("Ratings"), "SuID", "SuID",
                                 {"CourseID", "Score"}, "ratings")
                         .Select("SuID = 3"),
                     spec))
      .Build().value();
  Relation rel = MustRun(*wf);
  // Stranger only rated course 13, so only course 13 is scoreable.
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 13);
}

TEST_F(WorkflowTest, RecommendTopKAndMinScore) {
  RecommendSpec spec;
  spec.similarity = "token_jaccard";
  spec.input_attr = "Title";
  spec.reference_attr = "Title";
  spec.top_k = 2;
  spec.min_score = 0.01;
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 10"),
                     spec))
      .Build().value();
  Relation rel = MustRun(*wf);
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(WorkflowTest, WeightedAvgUsesWeights) {
  // Two references for course 10: twin (weight 1.0, score 5) and opposite
  // (weight 0.25, score 1): weighted avg = (5 + 0.25) / 1.25 = 4.2.
  Relation refs;
  refs.schema = Schema({{"ratings", ValueType::kList, true},
                        {"w", ValueType::kDouble, false}});
  refs.rows.push_back(
      {Value(Value::List{Value(Value::List{Value(10), Value(5.0)})}),
       Value(1.0)});
  refs.rows.push_back(
      {Value(Value::List{Value(Value::List{Value(10), Value(1.0)})}),
       Value(0.25)});
  RecommendSpec spec;
  spec.similarity = "rating_of";
  spec.input_attr = "CourseID";
  spec.reference_attr = "ratings";
  spec.agg = RecommendAgg::kWeightedAvg;
  spec.weight_attr = "w";
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Recommend(Workflow::Values(std::move(refs)),
                                        spec))
                   .Build().value();
  Relation rel = MustRun(*wf);
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_NEAR(rel.rows.back()[3].AsDouble(), 4.2, 1e-12);
}

TEST_F(WorkflowTest, AntiJoinExcludesKeys) {
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .AntiJoin(Workflow::Table("Ratings").Select("SuID = 444"),
                    "CourseID", "CourseID"))
      .Build().value();
  Relation rel = MustRun(*wf);
  // 5 courses minus the 2 the target rated.
  EXPECT_EQ(rel.rows.size(), 3u);
}

TEST_F(WorkflowTest, UnknownSimilarityFailsAtCompile) {
  RecommendSpec spec;
  spec.similarity = "bogus";
  spec.input_attr = "Title";
  spec.reference_attr = "Title";
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Recommend(Workflow::Table("Courses"), spec))
                   .Build().value();
  Status status = engine_->Compile(*wf).status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CR103"), std::string::npos)
      << status.message();
}

TEST_F(WorkflowTest, MissingAttributeFailsAtExecution) {
  RecommendSpec spec;
  spec.similarity = "exact";
  spec.input_attr = "Nope";
  spec.reference_attr = "Title";
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Recommend(Workflow::Table("Courses"), spec))
                   .Build().value();
  EXPECT_FALSE(engine_->Run(*wf).ok());
}

TEST_F(WorkflowTest, ExplainListsSqlSteps) {
  RecommendSpec spec;
  spec.similarity = "token_jaccard";
  spec.input_attr = "Title";
  spec.reference_attr = "Title";
  NodePtr wf = std::move(
      Workflow::Table("Courses")
          .Select("Year = 2008")
          .Recommend(Workflow::Table("Courses").Select("CourseID = 10"),
                     spec))
      .Build().value();
  auto compiled = engine_->Compile(*wf);
  ASSERT_TRUE(compiled.ok());
  std::string text = compiled->Explain();
  EXPECT_NE(text.find("[SQL]"), std::string::npos);
  EXPECT_NE(text.find("[PHYSICAL]"), std::string::npos);
  EXPECT_NE(text.find("SELECT * FROM Courses WHERE"), std::string::npos);
}

TEST_F(WorkflowTest, CloneProducesIndependentTree) {
  NodePtr wf =
      std::move(Workflow::Table("Courses").Select("Year = 2008")).Build().value();
  NodePtr clone = wf->Clone();
  EXPECT_EQ(wf->ToString(), clone->ToString());
  Relation a = MustRun(*wf);
  Relation b = MustRun(*clone);
  EXPECT_EQ(a.rows.size(), b.rows.size());
}

// ---------------------------------------------------------------- DSL

TEST_F(WorkflowTest, DslRoundTripFig5a) {
  auto wf = ParseWorkflow(R"(
courses = TABLE Courses
recent  = SELECT courses WHERE Year = 2008
target  = SELECT courses WHERE Title = $title
out     = RECOMMEND recent AGAINST target USING token_jaccard(Title, Title) AGG max SCORE score TOP 3
RETURN out
)");
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  ParamMap params;
  params["title"] = Value("Introduction to Programming");
  Relation rel = MustRun(**wf, params);
  ASSERT_EQ(rel.rows.size(), 3u);
  EXPECT_EQ(rel.rows[0][1].AsString(), "Introduction to Programming");
}

TEST_F(WorkflowTest, DslExtendAndRecommend) {
  auto wf = ParseWorkflow(R"(
# Fig. 5(b) in miniature
students = TABLE Students
ratings  = TABLE Ratings
ext      = EXTEND students WITH ratings ON SuID = SuID COLLECT CourseID, Score AS ratings
target   = SELECT ext WHERE SuID = 444
others   = SELECT ext WHERE SuID <> 444
similar  = RECOMMEND others AGAINST target USING inv_euclidean(ratings, ratings) AGG max SCORE sim TOP 2
RETURN similar
)");
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  Relation rel = MustRun(**wf);
  ASSERT_EQ(rel.rows.size(), 2u);
  // Twin (SuID 1) is the most similar with sim = 1.0.
  EXPECT_EQ(rel.rows[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(rel.rows[0][3].AsDouble(), 1.0);
  // Opposite is less similar.
  EXPECT_EQ(rel.rows[1][0].AsInt(), 2);
  EXPECT_LT(rel.rows[1][3].AsDouble(), 0.5);
}

TEST_F(WorkflowTest, DslExceptAndTopK) {
  auto wf = ParseWorkflow(R"(
courses = TABLE Courses
mine    = SQL SELECT CourseID FROM Ratings WHERE SuID = 444
fresh   = EXCEPT courses ON CourseID = CourseID FROM mine
top     = TOPK fresh BY CourseID ASC LIMIT 2
RETURN top
)");
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  Relation rel = MustRun(**wf);
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 11);
  EXPECT_EQ(rel.rows[1][0].AsInt(), 13);
}

TEST_F(WorkflowTest, DslProjectAndJoin) {
  auto wf = ParseWorkflow(R"(
r = TABLE Ratings
s = TABLE Students
j = JOIN r WITH s ON Ratings.SuID = Students.SuID
p = PROJECT j TO Name AS who, Score AS score
RETURN p
)");
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  Relation rel = MustRun(**wf);
  EXPECT_EQ(rel.rows.size(), 9u);
  EXPECT_EQ(rel.schema.column(0).name, "who");
}

TEST_F(WorkflowTest, DslErrors) {
  EXPECT_FALSE(ParseWorkflow("").ok());  // no RETURN
  EXPECT_FALSE(ParseWorkflow("x = TABLE T\n").ok());
  EXPECT_FALSE(ParseWorkflow("RETURN nothing\n").ok());
  EXPECT_FALSE(ParseWorkflow("x = FROBNICATE y\nRETURN x\n").ok());
  EXPECT_FALSE(
      ParseWorkflow("x = SELECT missing WHERE a = 1\nRETURN x\n").ok());
  EXPECT_FALSE(ParseWorkflow(
                   "c = TABLE Courses\n"
                   "x = RECOMMEND c AGAINST c USING broken\nRETURN x\n")
                   .ok());
}

TEST_F(WorkflowTest, DslReferenceReuseClones) {
  // "courses" referenced twice — both uses must work.
  auto wf = ParseWorkflow(R"(
courses = TABLE Courses
a = SELECT courses WHERE Year = 2008
b = SELECT courses WHERE Year = 2007
u = JOIN a WITH b ON a.Year <> b.Year
RETURN u
)");
  // Our join condition references unprefixed columns; just check parsing.
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
}

// ---------------------------------------------------------------- to-DSL

TEST_F(WorkflowTest, WorkflowToDslRoundTripsCannedStrategies) {
  // Serialize each default strategy's tree back to DSL, reparse, and check
  // the operator trees match.
  for (const std::string& dsl :
       {std::string(R"(
c = TABLE Courses
t = SELECT c WHERE Year = 2008
r = RECOMMEND c AGAINST t USING token_jaccard(Title, Title) AGG max SCORE s TOP 5
k = TOPK r BY s DESC LIMIT 3
RETURN k
)"),
        std::string(R"(
s = TABLE Students
r = TABLE Ratings
e = EXTEND s WITH r ON SuID = SuID COLLECT CourseID, Score AS ratings
p = PROJECT e TO Name AS who, ratings AS ratings
RETURN p
)"),
        std::string(R"(
c = TABLE Courses
m = SQL SELECT CourseID FROM Ratings WHERE SuID = 444
f = EXCEPT c ON CourseID = CourseID FROM m
RETURN f
)")}) {
    auto wf = ParseWorkflow(dsl);
    ASSERT_TRUE(wf.ok()) << wf.status().ToString();
    auto text = WorkflowToDsl(**wf);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto reparsed = ParseWorkflow(*text);
    ASSERT_TRUE(reparsed.ok()) << *text;
    EXPECT_EQ((*wf)->ToString(), (*reparsed)->ToString()) << *text;
  }
}

TEST_F(WorkflowTest, WorkflowToDslPreservesRecommendClauses) {
  RecommendSpec spec;
  spec.similarity = "inv_euclidean";
  spec.input_attr = "ratings";
  spec.reference_attr = "ratings";
  spec.agg = RecommendAgg::kWeightedAvg;
  spec.weight_attr = "sim";
  spec.score_column = "blended";
  spec.top_k = 7;
  spec.min_score = 0.25;
  NodePtr wf = std::move(Workflow::Table("Students")
                             .Recommend(Workflow::Table("Students"), spec))
                   .Build().value();
  auto text = WorkflowToDsl(*wf);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("AGG weighted sim"), std::string::npos);
  EXPECT_NE(text->find("SCORE blended"), std::string::npos);
  EXPECT_NE(text->find("TOP 7"), std::string::npos);
  EXPECT_NE(text->find("MIN 0.25"), std::string::npos);
  auto reparsed = ParseWorkflow(*text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)->recommend.min_score, 0.25);
}

TEST_F(WorkflowTest, WorkflowToDslRejectsValuesNodes) {
  Relation rel;
  rel.schema = Schema({{"x", ValueType::kInt, true}});
  NodePtr wf = std::move(Workflow::Values(std::move(rel))).Build().value();
  EXPECT_EQ(WorkflowToDsl(*wf).status().code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------- registry

TEST_F(WorkflowTest, StrategyRegistryRoundTrip) {
  NodePtr wf =
      std::move(Workflow::Table("Courses").Select("Year = $year")).Build().value();
  ASSERT_TRUE(engine_->RegisterStrategy("recent", std::move(wf)).ok());
  ParamMap params;
  params["year"] = Value(2008);
  auto rel = engine_->RunStrategy("recent", params);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->rows.size(), 4u);
  EXPECT_EQ(engine_->RunStrategy("nope").status().code(),
            StatusCode::kNotFound);
  auto explain = engine_->ExplainStrategy("recent");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Select"), std::string::npos);
  EXPECT_EQ(engine_->StrategyNames().size(), 1u);
}

TEST_F(WorkflowTest, RegisterRejectsInvalidWorkflow) {
  RecommendSpec spec;
  spec.similarity = "bogus";
  spec.input_attr = "a";
  spec.reference_attr = "b";
  NodePtr wf = std::move(Workflow::Table("Courses")
                             .Recommend(Workflow::Table("Courses"), spec))
                   .Build().value();
  EXPECT_FALSE(engine_->RegisterStrategy("bad", std::move(wf)).ok());
  EXPECT_FALSE(engine_->RegisterStrategy("null", nullptr).ok());
}

}  // namespace
}  // namespace courserank::flexrecs
