#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "core/baseline_recommender.h"
#include "core/strategies.h"
#include "core/workflow_parser.h"
#include "gen/generator.h"

namespace courserank::flexrecs {
namespace {

using gen::GenConfig;
using gen::Generator;
using social::CourseRankSite;
using storage::Value;

/// One generated Tiny site shared by all strategy tests (generation is the
/// expensive part; strategies only read).
struct SharedSite {
  std::unique_ptr<Generator> generator;
  std::unique_ptr<CourseRankSite> site;
};

SharedSite& Site() {
  static SharedSite* shared = [] {
    auto* s = new SharedSite();
    s->generator = std::make_unique<Generator>(GenConfig::Tiny(11));
    auto site = s->generator->Generate();
    CR_CHECK(site.ok());
    s->site = std::move(*site);
    return s;
  }();
  return *shared;
}

/// A student with at least `n` ratings (needed for CF strategies).
int64_t StudentWithRatings(size_t n = 3) {
  const auto* ratings = Site().site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  for (const auto& [student, count] : counts) {
    if (count >= n) return student;
  }
  return counts.empty() ? 0 : counts.begin()->first;
}

TEST(StrategiesTest, AllDefaultsRegistered) {
  auto names = Site().site->flexrecs().StrategyNames();
  std::set<std::string> set(names.begin(), names.end());
  for (const char* name :
       {"related_courses", "user_cf", "weighted_user_cf", "grade_cf",
        "major_popular", "recommend_major", "best_quarter"}) {
    EXPECT_TRUE(set.count(name)) << name;
  }
}

TEST(StrategiesTest, DslSourcesParse) {
  for (const std::string& dsl :
       {strategies::RelatedCoursesDsl(), strategies::UserCfDsl(),
        strategies::WeightedUserCfDsl(), strategies::GradeCfDsl(),
        strategies::MajorPopularDsl(), strategies::RecommendMajorDsl(),
        strategies::BestQuarterDsl()}) {
    EXPECT_TRUE(ParseWorkflow(dsl).ok());
  }
}

TEST(StrategiesTest, RelatedCoursesExcludesTarget) {
  query::ParamMap params;
  params["title"] = Value("Introduction to Programming");
  params["year"] = Value(int64_t{2005});
  auto rel = Site().site->flexrecs().RunStrategy("related_courses", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  auto title_ci = rel->schema.FindColumn("Title");
  ASSERT_TRUE(title_ci.has_value());
  for (const auto& row : rel->rows) {
    EXPECT_NE(row[*title_ci].AsString(), "Introduction to Programming");
  }
  EXPECT_LE(rel->rows.size(), 10u);
}

TEST(StrategiesTest, UserCfExcludesAlreadyRated) {
  int64_t student = StudentWithRatings();
  ASSERT_NE(student, 0);
  query::ParamMap params;
  params["student"] = Value(student);
  auto rel = Site().site->flexrecs().RunStrategy("user_cf", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  std::set<int64_t> rated;
  const auto* ratings = Site().site->db().FindTable("Ratings");
  for (auto rid : ratings->LookupEqual({"SuID"}, {Value(student)})) {
    rated.insert(ratings->Get(rid)->at(1).AsInt());
  }
  auto course_ci = rel->schema.FindColumn("CourseID");
  ASSERT_TRUE(course_ci.has_value());
  for (const auto& row : rel->rows) {
    EXPECT_EQ(rated.count(row[*course_ci].AsInt()), 0u);
  }
}

TEST(StrategiesTest, UserCfScoresWithinRatingScale) {
  int64_t student = StudentWithRatings();
  query::ParamMap params;
  params["student"] = Value(student);
  auto rel = Site().site->flexrecs().RunStrategy("user_cf", params);
  ASSERT_TRUE(rel.ok());
  size_t score_ci = rel->schema.num_columns() - 1;
  for (const auto& row : rel->rows) {
    double s = row[score_ci].AsDouble();
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 5.0);
  }
}

TEST(StrategiesTest, WeightedVariantRuns) {
  query::ParamMap params;
  params["student"] = Value(StudentWithRatings());
  auto rel =
      Site().site->flexrecs().RunStrategy("weighted_user_cf", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
}

TEST(StrategiesTest, GradeCfRuns) {
  query::ParamMap params;
  params["student"] = Value(Site().generator->artifacts().active_students[0]);
  auto rel = Site().site->flexrecs().RunStrategy("grade_cf", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
}

TEST(StrategiesTest, MajorPopularOrderedByScore) {
  query::ParamMap params;
  params["major"] = Value(Site().generator->artifacts().departments[0]);
  auto rel = Site().site->flexrecs().RunStrategy("major_popular", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  auto score_ci = rel->schema.FindColumn("score");
  ASSERT_TRUE(score_ci.has_value());
  for (size_t i = 1; i < rel->rows.size(); ++i) {
    EXPECT_GE(rel->rows[i - 1][*score_ci].AsDouble(),
              rel->rows[i][*score_ci].AsDouble());
  }
}

TEST(StrategiesTest, RecommendMajorReturnsDepartments) {
  query::ParamMap params;
  params["student"] = Value(Site().generator->artifacts().active_students[0]);
  auto rel = Site().site->flexrecs().RunStrategy("recommend_major", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_LE(rel->rows.size(), 5u);
  EXPECT_TRUE(rel->schema.FindColumn("Name").has_value());
}

TEST(StrategiesTest, BestQuarterGroupsTerms) {
  query::ParamMap params;
  params["course"] = Value(Site().generator->artifacts().calculus);
  auto rel = Site().site->flexrecs().RunStrategy("best_quarter", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_LE(rel->rows.size(), 4u);  // at most four quarters
  auto grade_ci = rel->schema.FindColumn("avg_grade");
  ASSERT_TRUE(grade_ci.has_value());
  for (size_t i = 1; i < rel->rows.size(); ++i) {
    EXPECT_GE(rel->rows[i - 1][*grade_ci].AsDouble(),
              rel->rows[i][*grade_ci].AsDouble());
  }
}

TEST(StrategiesTest, ExplainShowsSqlSequence) {
  auto text = Site().site->flexrecs().ExplainStrategy("user_cf");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Recommend"), std::string::npos);
  EXPECT_NE(text->find("[SQL]"), std::string::npos);
  EXPECT_NE(text->find("Extend"), std::string::npos);
}

TEST(StrategiesTest, FlexRecsUserCfMatchesHardcodedBaseline) {
  // The declarative user_cf strategy and the hand-coded CF engine implement
  // the same algorithm; their top recommendations must agree substantially
  // (tie-breaking may differ).
  int64_t student = StudentWithRatings(4);
  ASSERT_NE(student, 0);

  auto cf = HardcodedCf::Build(Site().site->db());
  ASSERT_TRUE(cf.ok());
  auto baseline = cf->RecommendFor(student);
  ASSERT_TRUE(baseline.ok());

  query::ParamMap params;
  params["student"] = Value(student);
  auto flex = Site().site->flexrecs().RunStrategy("user_cf", params);
  ASSERT_TRUE(flex.ok());

  std::set<int64_t> baseline_set;
  for (const auto& r : *baseline) baseline_set.insert(r.course_id);
  auto course_ci = flex->schema.FindColumn("CourseID");
  size_t agree = 0;
  for (const auto& row : flex->rows) {
    agree += baseline_set.count(row[*course_ci].AsInt());
  }
  ASSERT_FALSE(flex->rows.empty());
  // At least 60% overlap between the two top-10 lists.
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(flex->rows.size()),
            0.6);
}

}  // namespace
}  // namespace courserank::flexrecs
