// Plan-property inference and rewrite-soundness verification (DESIGN.md
// §15): golden tests for the per-operator abstract interpretation, the
// CR5xx verifier (including deliberately-broken rewrites it must catch),
// the SQL planner's claim threading (EXPLAIN STATIC, Distinct elision,
// join build-side choice), and the CR510 runtime claim checker.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/plan_properties.h"
#include "core/flexrecs_engine.h"
#include "core/strategies.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"
#include "obs/metrics.h"
#include "query/plan.h"
#include "query/sql_engine.h"
#include "social/site.h"
#include "storage/database.h"

namespace courserank::analysis {
namespace {

using query::Relation;
using query::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

bool Has(const std::vector<std::string>& names, const std::string& want) {
  for (const std::string& n : names) {
    if (n == want) return true;
  }
  return false;
}

bool HasKey(const PlanProperties& p, const std::vector<std::string>& want) {
  for (const std::vector<std::string>& key : p.keys) {
    if (key == want) return true;
  }
  return false;
}

/// All distinct diagnostic codes in a bag, as their numeric CR values.
std::set<int> Codes(const DiagnosticBag& bag) {
  std::set<int> out;
  for (const Diagnostic& d : bag.items()) {
    out.insert(static_cast<int>(d.code));
  }
  return out;
}

// ==================================================================
// Analyzer property inference over workflow DSL
// ==================================================================

class PlanPropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(
                       "Students",
                       Schema({{"SuID", ValueType::kInt, false},
                               {"Name", ValueType::kString, false},
                               {"Major", ValueType::kString, true}}),
                       {"SuID"})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(
                       "Courses",
                       Schema({{"CourseID", ValueType::kInt, false},
                               {"Title", ValueType::kString, false},
                               {"Units", ValueType::kInt, false}}),
                       {"CourseID"})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(
                       "Ratings",
                       Schema({{"SuID", ValueType::kInt, false},
                               {"CourseID", ValueType::kInt, false},
                               {"Score", ValueType::kDouble, false}}),
                       {"SuID", "CourseID"})
                    .ok());
    engine_ = std::make_unique<flexrecs::FlexRecsEngine>(&db_);
  }

  Analyzer MakeAnalyzer() { return Analyzer(&db_, &engine_->library()); }

  /// Parses + analyzes, asserting both come back clean.
  Analyzer::WorkflowAnalysis Analyze(const std::string& dsl) {
    auto parsed = flexrecs::ParseWorkflow(dsl);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return {};
    DiagnosticBag diags;
    Analyzer::WorkflowAnalysis wa =
        MakeAnalyzer().AnalyzeWorkflowProperties(**parsed, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.ToText();
    return wa;
  }

  PlanProperties Root(const std::string& dsl) { return Analyze(dsl).props; }

  /// Verifies `rewritten` against `original`, returning the diagnostics.
  DiagnosticBag Verify(const std::string& original,
                       const std::string& rewritten, bool* ok = nullptr) {
    auto o = flexrecs::ParseWorkflow(original);
    auto r = flexrecs::ParseWorkflow(rewritten);
    EXPECT_TRUE(o.ok()) << o.status().ToString();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    DiagnosticBag diags;
    bool clean = MakeAnalyzer().VerifyWorkflowRewrite(**o, **r, &diags);
    if (ok != nullptr) *ok = clean;
    return diags;
  }

  storage::Database db_;
  std::unique_ptr<flexrecs::FlexRecsEngine> engine_;
};

// ---- leaves ------------------------------------------------------

TEST_F(PlanPropertiesTest, TableClaimsKeyNonNullAndDictColumns) {
  PlanProperties p = Root("c = TABLE Courses\nRETURN c\n");
  EXPECT_EQ(p.card_min, 0u);
  EXPECT_EQ(p.card_max, kUnboundedCard);  // tables mutate between runs
  EXPECT_TRUE(HasKey(p, {"CourseID"})) << p.ToString();
  EXPECT_TRUE(Has(p.non_null, "CourseID"));
  EXPECT_TRUE(Has(p.non_null, "Title"));
  EXPECT_TRUE(Has(p.non_null, "Units"));
  EXPECT_TRUE(Has(p.dict_id_safe, "Title"));
  EXPECT_TRUE(p.sort_order.empty());
  EXPECT_TRUE(p.fusion_eligible);
}

TEST_F(PlanPropertiesTest, TableCompositeKeyAndNullableColumn) {
  PlanProperties r = Root("r = TABLE Ratings\nRETURN r\n");
  EXPECT_TRUE(HasKey(r, {"SuID", "CourseID"})) << r.ToString();

  PlanProperties s = Root("s = TABLE Students\nRETURN s\n");
  EXPECT_TRUE(Has(s.non_null, "Name"));
  EXPECT_FALSE(Has(s.non_null, "Major"));  // nullable column never claimed
  EXPECT_TRUE(Has(s.dict_id_safe, "Major"));
}

TEST_F(PlanPropertiesTest, ValuesNodeClaimsExactCardinality) {
  Relation rel;
  rel.schema = Schema({{"a", ValueType::kInt, false},
                       {"b", ValueType::kInt, true}});
  rel.rows.push_back({Value(1), Value(2)});
  rel.rows.push_back({Value(3), Value::Null()});
  auto wf = flexrecs::Workflow::Values(std::move(rel));
  auto root = std::move(wf).Build();
  ASSERT_TRUE(root.ok());
  DiagnosticBag diags;
  Analyzer::WorkflowAnalysis wa =
      MakeAnalyzer().AnalyzeWorkflowProperties(**root, &diags);
  EXPECT_EQ(wa.props.card_min, 2u);
  EXPECT_EQ(wa.props.card_max, 2u);
  EXPECT_TRUE(Has(wa.props.non_null, "a"));
  EXPECT_FALSE(Has(wa.props.non_null, "b"));  // a row holds NULL
}

// ---- σ / π -------------------------------------------------------

TEST_F(PlanPropertiesTest, SelectKeepsUpperBoundKeyAndNonNull) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "f = SELECT c WHERE Units = 5\n"
      "RETURN f\n");
  EXPECT_EQ(p.card_min, 0u);  // the filter may drop everything
  EXPECT_TRUE(HasKey(p, {"CourseID"}));
  EXPECT_TRUE(Has(p.non_null, "Title"));
  EXPECT_TRUE(p.fusion_eligible);  // σ over a leaf stays fusable
}

TEST_F(PlanPropertiesTest, ProjectMapsKeyThroughRename) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "p = PROJECT c TO CourseID AS id, Title AS t\n"
      "RETURN p\n");
  EXPECT_TRUE(HasKey(p, {"id"})) << p.ToString();
  EXPECT_TRUE(Has(p.non_null, "id"));
  EXPECT_TRUE(Has(p.non_null, "t"));
  EXPECT_TRUE(Has(p.dict_id_safe, "t"));
}

TEST_F(PlanPropertiesTest, ProjectDroppingKeyColumnDropsKey) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "p = PROJECT c TO Title AS t\n"
      "RETURN p\n");
  EXPECT_TRUE(p.keys.empty()) << p.ToString();
  EXPECT_TRUE(Has(p.non_null, "t"));
}

TEST_F(PlanPropertiesTest, ComputedProjectionClaimsNothing) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "p = PROJECT c TO Units + 1 AS u\n"
      "RETURN p\n");
  EXPECT_TRUE(p.keys.empty());
  EXPECT_FALSE(Has(p.non_null, "u"));  // computed, so never claimed
  EXPECT_TRUE(p.dict_id_safe.empty());
}

TEST_F(PlanPropertiesTest, ProjectPreservesCardinalityBounds) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "p = PROJECT t TO Title AS t2\n"
      "RETURN p\n");
  EXPECT_EQ(p.card_max, 5u);  // π is 1:1 on rows
}

// ---- TOPK --------------------------------------------------------

TEST_F(PlanPropertiesTest, TopKBoundsCardinalityAndClaimsSort) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n");
  EXPECT_EQ(p.card_min, 0u);
  EXPECT_EQ(p.card_max, 5u);
  ASSERT_EQ(p.sort_order.size(), 1u);
  EXPECT_EQ(p.sort_order[0].column, "Units");
  EXPECT_TRUE(p.sort_order[0].descending);
  EXPECT_TRUE(HasKey(p, {"CourseID"}));  // row subset keeps keys
  EXPECT_FALSE(p.fusion_eligible);
}

TEST_F(PlanPropertiesTest, TopKAscendingSort) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Title ASC LIMIT 3\n"
      "RETURN t\n");
  ASSERT_EQ(p.sort_order.size(), 1u);
  EXPECT_FALSE(p.sort_order[0].descending);
}

// Regression: card_max must be min(k, input bound), not just k — a TOPK 7
// over a TOPK 3 can never emit more than 3 rows.
TEST_F(PlanPropertiesTest, TopKOverTighterInputKeepsTighterBound) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "a = TOPK c BY Units DESC LIMIT 3\n"
      "b = TOPK a BY Title ASC LIMIT 7\n"
      "RETURN b\n");
  EXPECT_EQ(p.card_max, 3u);
  ASSERT_EQ(p.sort_order.size(), 1u);
  EXPECT_EQ(p.sort_order[0].column, "Title");  // outer sort wins
}

// ---- recommend / except / extend ---------------------------------

TEST_F(PlanPropertiesTest, RecommendClaimsScoreSortAndTopKBound) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = SELECT c WHERE Units = 5\n"
      "r = RECOMMEND c AGAINST t USING token_jaccard(Title, Title) "
      "AGG max SCORE score TOP 10\n"
      "RETURN r\n");
  EXPECT_EQ(p.card_min, 0u);
  EXPECT_EQ(p.card_max, 10u);
  ASSERT_EQ(p.sort_order.size(), 1u);
  EXPECT_EQ(p.sort_order[0].column, "score");
  EXPECT_TRUE(p.sort_order[0].descending);
  EXPECT_TRUE(Has(p.non_null, "score"));  // the engine always scores
}

TEST_F(PlanPropertiesTest, RecommendWithoutTopKStaysUnbounded) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = SELECT c WHERE Units = 5\n"
      "r = RECOMMEND c AGAINST t USING token_jaccard(Title, Title)\n"
      "RETURN r\n");
  EXPECT_EQ(p.card_max, kUnboundedCard);
  EXPECT_TRUE(Has(p.non_null, "score"));
}

TEST_F(PlanPropertiesTest, ExceptKeepsBoundAndKey) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 4\n"
      "r = TABLE Ratings\n"
      "e = EXCEPT t ON CourseID = CourseID FROM r\n"
      "RETURN e\n");
  EXPECT_EQ(p.card_min, 0u);
  EXPECT_EQ(p.card_max, 4u);  // anti-join only removes rows
  EXPECT_TRUE(HasKey(p, {"CourseID"}));
}

TEST_F(PlanPropertiesTest, ExtendAddsNonNullListColumn) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "r = TABLE Ratings\n"
      "e = EXTEND c WITH r ON CourseID = CourseID COLLECT Score AS scores\n"
      "RETURN e\n");
  EXPECT_TRUE(Has(p.non_null, "scores"));  // ε always emits a list
  EXPECT_TRUE(HasKey(p, {"CourseID"}));    // 1:1 on child rows
}

// ---- join --------------------------------------------------------

TEST_F(PlanPropertiesTest, JoinMultipliesBoundsAndCombinesKeys) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "r = TABLE Ratings\n"
      "a0 = TOPK c BY Units DESC LIMIT 2\n"
      "a = PROJECT a0 TO CourseID AS cid, Units AS u\n"
      "b = TOPK r BY Score DESC LIMIT 3\n"
      "j = JOIN a WITH b ON cid = CourseID\n"
      "RETURN j\n");
  EXPECT_EQ(p.card_min, 0u);  // the condition filters
  EXPECT_EQ(p.card_max, 6u);  // 2 × 3 cross-product bound
  // Combined (left key, right key) identifies each joined row.
  EXPECT_TRUE(HasKey(p, {"cid", "SuID", "CourseID"})) << p.ToString();
}

// ---- SQL escape hatch in a workflow ------------------------------

TEST_F(PlanPropertiesTest, SqlNodeLimitBoundsCardinality) {
  PlanProperties p = Root(
      "a = SQL SELECT CourseID, Title FROM Courses LIMIT 5\n"
      "RETURN a\n");
  EXPECT_EQ(p.card_max, 5u);
  EXPECT_TRUE(Has(p.non_null, "CourseID"));
}

// ---- per-node table, rendering, conversion -----------------------

TEST_F(PlanPropertiesTest, NodeTableIsPreOrderWithDepths) {
  Analyzer::WorkflowAnalysis wa = Analyze(
      "c = TABLE Courses\n"
      "f = SELECT c WHERE Units = 5\n"
      "t = TOPK f BY Units DESC LIMIT 5\n"
      "RETURN t\n");
  ASSERT_EQ(wa.nodes.size(), 3u);
  EXPECT_EQ(wa.nodes[0].depth, 0);  // TopK root
  EXPECT_EQ(wa.nodes[1].depth, 1);  // Select
  EXPECT_EQ(wa.nodes[2].depth, 2);  // Table leaf
  EXPECT_EQ(wa.nodes[0].props.card_max, 5u);
  EXPECT_EQ(wa.nodes[2].props.card_max, kUnboundedCard);
  for (const NodeProperties& n : wa.nodes) {
    EXPECT_FALSE(n.label.empty());
    EXPECT_TRUE(n.schema.has_value());
  }
}

TEST_F(PlanPropertiesTest, ToStringRendersClaimedDimensions) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n");
  std::string s = p.ToString();
  EXPECT_NE(s.find("card=0..5"), std::string::npos) << s;
  EXPECT_NE(s.find("Units desc"), std::string::npos) << s;
  EXPECT_NE(s.find("CourseID"), std::string::npos) << s;
}

TEST_F(PlanPropertiesTest, ToStaticClaimsMapsEveryDimension) {
  PlanProperties p = Root(
      "c = TABLE Courses\n"
      "t = TOPK c BY Title ASC LIMIT 3\n"
      "RETURN t\n");
  query::StaticClaims claims = p.ToStaticClaims();
  EXPECT_EQ(claims.card_max, 3u);
  ASSERT_EQ(claims.sort.size(), 1u);
  EXPECT_EQ(claims.sort[0].column, "Title");
  EXPECT_TRUE(claims.sort[0].ascending);  // descending=false flips
  EXPECT_EQ(claims.key, std::vector<std::string>{"CourseID"});
  EXPECT_TRUE(Has(claims.non_null, "Title"));
}

TEST_F(PlanPropertiesTest, RenderAndJsonCoverEveryNode) {
  Analyzer::WorkflowAnalysis wa = Analyze(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n");
  std::string table = RenderPropertiesTable(wa.nodes);
  EXPECT_NE(table.find("TopK"), std::string::npos) << table;
  EXPECT_NE(table.find("Table"), std::string::npos) << table;
  EXPECT_NE(table.find("card=0..5"), std::string::npos) << table;
  std::string json = PropertiesToJson(wa.nodes);
  EXPECT_NE(json.find("\"card_max\":5"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// ==================================================================
// Rewrite-soundness verifier (CR5xx)
// ==================================================================

TEST_F(PlanPropertiesTest, IdenticalWorkflowVerifies) {
  const std::string dsl =
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n";
  bool ok = false;
  DiagnosticBag bag = Verify(dsl, dsl, &ok);
  EXPECT_TRUE(ok) << bag.ToText();
  EXPECT_FALSE(bag.has_errors());
}

// The acceptance gate: every shipped strategy must survive the shipped
// optimizer with zero CR5xx findings.
TEST_F(PlanPropertiesTest, ShippedStrategiesOptimizeWithZeroCr5xx) {
  const std::vector<std::string> strategies = {
      flexrecs::strategies::RelatedCoursesDsl(),
      flexrecs::strategies::UserCfDsl(),
      flexrecs::strategies::WeightedUserCfDsl(),
      flexrecs::strategies::GradeCfDsl(),
      flexrecs::strategies::MajorPopularDsl(),
      flexrecs::strategies::RecommendMajorDsl(),
      flexrecs::strategies::BestQuarterDsl(),
  };
  // The canonical catalog these strategies resolve against.
  auto site = social::CourseRankSite::Create();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  Analyzer analyzer(&(*site)->db(), &(*site)->flexrecs().library());
  for (const std::string& dsl : strategies) {
    auto parsed = flexrecs::ParseWorkflow(dsl);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    flexrecs::NodePtr optimized = flexrecs::OptimizeWorkflow((*parsed)->Clone());
    DiagnosticBag bag;
    EXPECT_TRUE(analyzer.VerifyWorkflowRewrite(**parsed, *optimized, &bag))
        << dsl << "\n" << bag.ToText();
  }
}

// Deliberately-broken rewrite rules, each caught statically by its code.

TEST_F(PlanPropertiesTest, DroppedTopKIsCaughtAsCr502) {
  DiagnosticBag bag = Verify(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n",
      // A broken rule that "optimizes away" the TOPK entirely.
      "c = TABLE Courses\n"
      "RETURN c\n");
  EXPECT_TRUE(Codes(bag).count(502)) << bag.ToText();  // bound 5 → unbounded
  EXPECT_TRUE(Codes(bag).count(503)) << bag.ToText();  // sort lost too
}

TEST_F(PlanPropertiesTest, ChangedProjectionIsCaughtAsCr501) {
  DiagnosticBag bag = Verify(
      "c = TABLE Courses\n"
      "p = PROJECT c TO Title AS t\n"
      "RETURN p\n",
      "c = TABLE Courses\n"
      "p = PROJECT c TO Units AS t, Title AS extra\n"
      "RETURN p\n");
  EXPECT_TRUE(Codes(bag).count(501)) << bag.ToText();
}

TEST_F(PlanPropertiesTest, FlippedSortDirectionIsCaughtAsCr503) {
  DiagnosticBag bag = Verify(
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n",
      "c = TABLE Courses\n"
      "t = TOPK c BY Units ASC LIMIT 5\n"
      "RETURN t\n");
  std::set<int> codes = Codes(bag);
  EXPECT_TRUE(codes.count(503)) << bag.ToText();
  EXPECT_FALSE(codes.count(501));  // same schema
  EXPECT_FALSE(codes.count(502));  // same bounds
}

TEST_F(PlanPropertiesTest, LostKeyIsCaughtAsCr504) {
  // Both project an INT column named x (same schema by name+type), but
  // only the original's x is a key.
  DiagnosticBag bag = Verify(
      "c = TABLE Courses\n"
      "p = PROJECT c TO CourseID AS x\n"
      "RETURN p\n",
      "c = TABLE Courses\n"
      "p = PROJECT c TO Units AS x\n"
      "RETURN p\n");
  std::set<int> codes = Codes(bag);
  EXPECT_TRUE(codes.count(504)) << bag.ToText();
  EXPECT_FALSE(codes.count(501));
}

TEST_F(PlanPropertiesTest, LostNonNullGuaranteeIsCaughtAsCr505) {
  // Name is NOT NULL, Major is nullable; both are strings named x after
  // the projection, so only the non-NULL fact differs.
  DiagnosticBag bag = Verify(
      "s = TABLE Students\n"
      "p = PROJECT s TO Name AS x\n"
      "RETURN p\n",
      "s = TABLE Students\n"
      "p = PROJECT s TO Major AS x\n"
      "RETURN p\n");
  EXPECT_TRUE(Codes(bag).count(505)) << bag.ToText();
}

TEST_F(PlanPropertiesTest, UnanalyzableRewriteIsCaughtAsCr500) {
  DiagnosticBag bag = Verify(
      "c = TABLE Courses\n"
      "RETURN c\n",
      "c = TABLE NoSuchTable\n"
      "RETURN c\n");
  EXPECT_TRUE(Codes(bag).count(500)) << bag.ToText();
}

TEST_F(PlanPropertiesTest, BrokenOriginalIsNoBaseline) {
  // An original that does not analyze cleanly cannot indict the rewrite.
  bool ok = false;
  DiagnosticBag bag = Verify(
      "c = TABLE NoSuchTable\n"
      "RETURN c\n",
      "c = TABLE Courses\n"
      "RETURN c\n",
      &ok);
  EXPECT_TRUE(ok);
  EXPECT_FALSE(bag.has_errors()) << bag.ToText();
}

// ==================================================================
// SQL planner claims: EXPLAIN STATIC, Distinct elision, build side
// ==================================================================

class SqlStaticTest : public ::testing::Test {
 protected:
  SqlStaticTest() : sql_(&db_) {}

  void SetUp() override {
    Must("CREATE TABLE courses (id INT NOT NULL, dept TEXT NOT NULL, "
         "title TEXT NOT NULL, units INT, PRIMARY KEY (id))");
    Must("CREATE TABLE ratings (student INT NOT NULL, course INT NOT NULL, "
         "score DOUBLE NOT NULL, PRIMARY KEY (student, course))");
    Must("INSERT INTO courses VALUES "
         "(1, 'CS', 'Intro to Programming', 5), "
         "(2, 'CS', 'Operating Systems', 4), "
         "(3, 'MATH', 'Calculus', 5), "
         "(4, 'HISTORY', 'American History', 3), "
         "(5, 'CS', 'Databases', 3), "
         "(6, 'CS', 'Compilers', 4), "
         "(7, 'MATH', 'Linear Algebra', 4), "
         "(8, 'CS', 'Networks', 3), "
         "(9, 'HISTORY', 'World History', 4)");
    Must("INSERT INTO ratings VALUES (100, 1, 5.0), (100, 2, 3.0), "
         "(101, 1, 4.0), (101, 3, 2.0), (102, 5, 4.5)");
  }

  Relation Must(const std::string& stmt) {
    auto rel = sql_.Execute(stmt);
    EXPECT_TRUE(rel.ok()) << stmt << " -> " << rel.status().ToString();
    return rel.ok() ? std::move(*rel) : Relation{};
  }

  std::string Plan(const std::string& select) {
    auto out = sql_.Explain(select);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? *out : "";
  }

  storage::Database db_;
  query::SqlEngine sql_;
};

TEST_F(SqlStaticTest, ExplainStaticRendersPerNodeClaims) {
  auto out = sql_.Execute("EXPLAIN STATIC SELECT * FROM courses");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 1u);
  std::string text = out->rows[0][0].AsString();
  EXPECT_NE(text.find("Scan"), std::string::npos) << text;
  EXPECT_NE(text.find("{card=9..9"), std::string::npos) << text;
  EXPECT_NE(text.find("key=(id)"), std::string::npos) << text;
}

TEST_F(SqlStaticTest, ExplainStaticShowsLimitBoundAndSort) {
  auto out = sql_.Execute(
      "EXPLAIN STATIC SELECT title, units FROM courses "
      "ORDER BY units DESC LIMIT 2");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::string text = out->rows[0][0].AsString();
  // No filter: 9 rows in, so the limit pins both bounds to exactly 2.
  EXPECT_NE(text.find("card=2..2"), std::string::npos) << text;
  EXPECT_NE(text.find("units desc"), std::string::npos) << text;

  // A filter collapses the lower bound but keeps the limit's upper bound.
  auto filtered = sql_.Execute(
      "EXPLAIN STATIC SELECT title FROM courses WHERE units >= 4 LIMIT 3");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_NE(filtered->rows[0][0].AsString().find("card=0..3"),
            std::string::npos)
      << filtered->rows[0][0].AsString();
}

TEST_F(SqlStaticTest, DistinctOnKeyColumnIsElided) {
  obs::Counter* elided =
      obs::MetricsRegistry::Default().GetCounter(
          "cr_planner_distinct_elided_total");
  uint64_t before = elided->value();
  // id is the primary key: rows are already unique on it.
  EXPECT_EQ(Plan("SELECT DISTINCT id FROM courses").find("Distinct"),
            std::string::npos);
  EXPECT_GT(elided->value(), before);
  // dept is not a key, so the Distinct must stay.
  EXPECT_NE(Plan("SELECT DISTINCT dept FROM courses").find("Distinct"),
            std::string::npos);
}

TEST_F(SqlStaticTest, DistinctElisionCanBeDisabled) {
  query::PlannerOptions off;
  off.distinct_elision = false;
  sql_.set_planner_options(off);
  EXPECT_NE(Plan("SELECT DISTINCT id FROM courses").find("Distinct"),
            std::string::npos);
}

TEST_F(SqlStaticTest, DistinctElisionPreservesResults) {
  const std::string q = "SELECT DISTINCT id FROM courses ORDER BY id";
  Relation with = Must(q);
  query::PlannerOptions off;
  off.distinct_elision = false;
  sql_.set_planner_options(off);
  Relation without = Must(q);
  ASSERT_EQ(with.rows.size(), without.rows.size());
  EXPECT_EQ(with.rows, without.rows);
}

TEST_F(SqlStaticTest, JoinBuildSidePicksSmallSideAndPreservesRows) {
  obs::Counter* build_left =
      obs::MetricsRegistry::Default().GetCounter(
          "cr_planner_join_build_left_total");
  // A 1-row left table against 9-row courses: the static bound proves the
  // left side is under a quarter of the right, so the hash build flips.
  Must("CREATE TABLE tiny (id INT NOT NULL, PRIMARY KEY (id))");
  Must("INSERT INTO tiny VALUES (1)");
  const std::string q =
      "SELECT t.id, c.title FROM tiny t JOIN courses c ON t.id = c.id";
  uint64_t before = build_left->value();
  Relation heuristic = Must(q);
  uint64_t after = build_left->value();
  EXPECT_GT(after, before);  // the heuristic fired
  query::PlannerOptions off;
  off.join_build_side = false;
  sql_.set_planner_options(off);
  Relation baseline = Must(q);
  EXPECT_EQ(heuristic.rows, baseline.rows);  // build side never changes rows
  EXPECT_EQ(build_left->value(), after);     // and never fires when off
}

TEST_F(SqlStaticTest, CheckStaticClaimsCleanAcrossQueryShapes) {
  query::ExecOptions exec;
  exec.check_static_claims = true;
  sql_.set_exec_options(exec);
  const std::vector<std::string> queries = {
      "SELECT * FROM courses",
      "SELECT DISTINCT id FROM courses",
      "SELECT DISTINCT dept FROM courses",
      "SELECT title FROM courses WHERE units >= 4 ORDER BY title LIMIT 3",
      "SELECT dept, COUNT(*) AS n FROM courses GROUP BY dept",
      "SELECT COUNT(*) AS n FROM ratings",
      "SELECT r.student, c.title FROM ratings r JOIN courses c "
      "ON r.course = c.id",
      "SELECT c.dept, AVG(r.score) AS s FROM ratings r JOIN courses c "
      "ON r.course = c.id GROUP BY c.dept HAVING s > 1 "
      "ORDER BY s DESC LIMIT 2",
      "SELECT * FROM courses ORDER BY units DESC, title ASC LIMIT 4 OFFSET 1",
  };
  for (const std::string& q : queries) {
    auto rel = sql_.Execute(q);
    EXPECT_TRUE(rel.ok()) << q << " -> " << rel.status().ToString();
  }
}

// ==================================================================
// CR510: the runtime claim checker itself
// ==================================================================

class ClaimCheckTest : public ::testing::Test {
 protected:
  /// A two-column relation: a = 1,2,3 (NOT NULL), b = "x","y",NULL.
  Relation MakeRel() {
    Relation rel;
    rel.schema = Schema({{"a", ValueType::kInt, false},
                         {"b", ValueType::kString, true}});
    rel.rows.push_back({Value(1), Value(std::string("x"))});
    rel.rows.push_back({Value(2), Value(std::string("y"))});
    rel.rows.push_back({Value(3), Value::Null()});
    return rel;
  }

  Status Check(const query::StaticClaims& claims) {
    return query::CheckStaticClaims(MakeRel(), claims);
  }
};

TEST_F(ClaimCheckTest, TrueClaimsPass) {
  query::StaticClaims claims;
  claims.card_min = 3;
  claims.card_max = 3;
  claims.sort = {{"a", /*ascending=*/true}};
  claims.key = {"a"};
  claims.non_null = {"a"};
  EXPECT_TRUE(Check(claims).ok());
}

TEST_F(ClaimCheckTest, CardinalityViolationIsCr510) {
  query::StaticClaims claims;
  claims.card_max = 2;  // rel has 3 rows
  Status st = Check(claims);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string(st.message()).find("CR510"), std::string::npos);
}

TEST_F(ClaimCheckTest, SortViolationIsCr510) {
  query::StaticClaims claims;
  claims.sort = {{"a", /*ascending=*/false}};  // actually ascending
  Status st = Check(claims);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string(st.message()).find("CR510"), std::string::npos);
}

TEST_F(ClaimCheckTest, KeyViolationIsCr510) {
  Relation rel = MakeRel();
  rel.rows.push_back({Value(1), Value(std::string("z"))});  // duplicate a=1
  query::StaticClaims claims;
  claims.key = {"a"};
  Status st = query::CheckStaticClaims(rel, claims);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string(st.message()).find("CR510"), std::string::npos);
}

TEST_F(ClaimCheckTest, NonNullViolationIsCr510) {
  query::StaticClaims claims;
  claims.non_null = {"b"};  // b holds a NULL
  Status st = Check(claims);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string(st.message()).find("CR510"), std::string::npos);
}

TEST_F(ClaimCheckTest, UnresolvableClaimColumnIsSkipped) {
  query::StaticClaims claims;
  claims.non_null = {"no_such_column"};
  claims.key = {"no_such_column"};
  claims.sort = {{"no_such_column", true}};
  EXPECT_TRUE(Check(claims).ok());  // leniency: a miss beats a false alarm
}

TEST_F(ClaimCheckTest, ExecutorEnforcesClaimsWhenEnabled) {
  storage::Database db;
  Relation rel;
  rel.schema = Schema({{"a", ValueType::kInt, false}});
  rel.rows.push_back({Value(1)});
  rel.rows.push_back({Value(2)});
  query::PlanPtr plan = query::MakeValues(std::move(rel));
  query::StaticClaims bogus;
  bogus.card_max = 1;
  plan->set_claims(bogus);

  query::ExecContext off;
  off.db = &db;
  EXPECT_TRUE(plan->Execute(off).ok());  // checker off: claims ignored

  query::ExecContext on;
  on.db = &db;
  on.exec.check_static_claims = true;
  auto result = plan->Execute(on);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string(result.status().message()).find("CR510"),
            std::string::npos);
}

// ==================================================================
// FlexRecs end-to-end: claims checked during workflow execution
// ==================================================================

TEST(FlexRecsClaimsTest, StrategiesRunCleanWithClaimChecking) {
  auto site = social::CourseRankSite::Create();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  flexrecs::FlexRecsEngine& engine = (*site)->flexrecs();
  query::ExecOptions exec = engine.exec_options();
  exec.check_static_claims = true;
  engine.set_exec_options(exec);
  const std::string dsl =
      "c = TABLE Courses\n"
      "t = TOPK c BY Units DESC LIMIT 5\n"
      "RETURN t\n";
  auto parsed = flexrecs::ParseWorkflow(dsl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto rel = engine.Run(**parsed);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_LE(rel->rows.size(), 5u);
}

}  // namespace
}  // namespace courserank::analysis
