// End-to-end scenarios exercising the whole stack the way the paper's
// screenshots do: generate a community, search + cloud + refine (Fig. 3/4),
// recommend (Fig. 5), plan a degree, track requirements.

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "core/data_cloud.h"
#include "gen/generator.h"
#include "planner/plan.h"
#include "planner/requirements.h"
#include "social/site.h"

namespace courserank {
namespace {

using gen::GenConfig;
using gen::Generator;
using social::CourseRankSite;
using storage::Value;

struct SharedWorld {
  std::unique_ptr<Generator> generator;
  std::unique_ptr<CourseRankSite> site;
};

SharedWorld& World() {
  static SharedWorld* world = [] {
    auto* w = new SharedWorld();
    w->generator = std::make_unique<Generator>(GenConfig::Small(99));
    auto site = w->generator->Generate();
    CR_CHECK(site.ok());
    w->site = std::move(*site);
    CR_CHECK(w->site->BuildSearchIndex().ok());
    return w;
  }();
  return *world;
}

TEST(IntegrationTest, Fig3SearchAndCloud) {
  auto searcher = World().site->MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  auto results = searcher->Search("american");
  ASSERT_TRUE(results.ok());
  ASSERT_GT(results->size(), 10u);

  cloud::CloudBuilder builder(&World().site->index());
  cloud::DataCloud cloud = builder.Build(*results);
  ASSERT_GE(cloud.terms.size(), 10u);
  // The cloud surfaces concepts from the American cluster, like Fig. 3.
  bool has_concept = cloud.Contains("latin american") ||
                     cloud.Contains("african american") ||
                     cloud.Contains("native american");
  EXPECT_TRUE(has_concept) << cloud.ToString();
}

TEST(IntegrationTest, Fig4RefinementLoop) {
  auto searcher = World().site->MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  auto base = searcher->Search("american");
  ASSERT_TRUE(base.ok());
  auto refined = searcher->Refine(*base, "african american");
  ASSERT_TRUE(refined.ok());
  EXPECT_GT(refined->size(), 0u);
  EXPECT_LT(refined->size(), base->size());

  // Refinement equals running the conjunctive query from scratch.
  auto direct = searcher->SearchTerms(refined->terms);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), refined->size());
  for (size_t i = 0; i < direct->hits.size(); ++i) {
    EXPECT_EQ(direct->hits[i].doc, refined->hits[i].doc);
  }

  // The refined cloud no longer offers the clicked term.
  cloud::CloudBuilder builder(&World().site->index());
  EXPECT_FALSE(builder.Build(*refined).Contains("african american"));
}

TEST(IntegrationTest, Fig5aRelatedCourses) {
  query::ParamMap params;
  params["title"] = Value("Introduction to Programming");
  params["year"] = Value(int64_t{2005});
  auto rel = World().site->flexrecs().RunStrategy("related_courses", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_GT(rel->rows.size(), 0u);
  // Scores descend.
  size_t score_ci = rel->schema.num_columns() - 1;
  for (size_t i = 1; i < rel->rows.size(); ++i) {
    EXPECT_GE(rel->rows[i - 1][score_ci].AsDouble(),
              rel->rows[i][score_ci].AsDouble());
  }
}

TEST(IntegrationTest, Fig5bUserCf) {
  // Pick a student with a few ratings.
  const auto* ratings = World().site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  int64_t student = 0;
  for (const auto& [s, n] : counts) {
    if (n >= 4) {
      student = s;
      break;
    }
  }
  ASSERT_NE(student, 0);

  query::ParamMap params;
  params["student"] = Value(student);
  auto rel = World().site->flexrecs().RunStrategy("user_cf", params);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_GT(rel->rows.size(), 0u);
  EXPECT_LE(rel->rows.size(), 10u);
}

TEST(IntegrationTest, PlannerOnGeneratedStudent) {
  const auto& artifacts = World().generator->artifacts();
  social::UserId student = artifacts.active_students[0];
  auto plan = planner::AcademicPlan::FromDatabase(World().site->db(),
                                                  student);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->entries().size(), 0u);
  EXPECT_TRUE(plan->CumulativeGpa().has_value());

  auto graph = planner::PrereqGraph::Build(World().site->db());
  ASSERT_TRUE(graph.ok());
  auto issues = plan->Validate(World().site->db(), *graph);
  ASSERT_TRUE(issues.ok());
  // Generated histories may conflict (students enrolled without the
  // planner); just ensure validation runs and classifies.
  for (const auto& issue : *issues) {
    EXPECT_FALSE(issue.message.empty());
  }
}

TEST(IntegrationTest, RequirementTrackerOnGeneratedMajor) {
  const auto& artifacts = World().generator->artifacts();
  // Build a program for CS out of its most popular generated courses.
  const auto* courses = World().site->db().FindTable("Courses");
  std::vector<social::CourseId> cs_courses;
  for (auto rid :
       courses->LookupEqual({"DepID"}, {Value(artifacts.cs_dept)})) {
    cs_courses.push_back(courses->Get(rid)->at(0).AsInt());
  }
  ASSERT_GE(cs_courses.size(), 4u);

  planner::RequirementTracker tracker(&World().site->db());
  std::vector<planner::ReqPtr> kids;
  kids.push_back(planner::RequirementNode::Course(
      "intro", artifacts.intro_programming));
  kids.push_back(planner::RequirementNode::NOfSet(
      "three cs electives", 3, cs_courses));
  ASSERT_TRUE(tracker
                  .DefineProgram(artifacts.cs_dept,
                                 planner::RequirementNode::AllOf(
                                     "cs major", std::move(kids)))
                  .ok());
  // Every active student gets a well-formed report.
  size_t satisfied = 0;
  for (size_t i = 0; i < 20 && i < artifacts.active_students.size(); ++i) {
    auto report =
        tracker.CheckStudent(artifacts.cs_dept, artifacts.active_students[i]);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->leaves.size(), 2u);
    satisfied += report->satisfied;
  }
  (void)satisfied;  // any value is fine; reports just need to be sound
}

TEST(IntegrationTest, SqlOverGeneratedData) {
  auto rel = World().site->sql().Execute(
      "SELECT c.DepID AS dept, COUNT(*) AS n, AVG(r.Score) AS mean "
      "FROM Ratings r JOIN Courses c ON r.CourseID = c.CourseID "
      "GROUP BY c.DepID ORDER BY n DESC LIMIT 5");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_GT(rel->rows.size(), 0u);
  for (const auto& row : rel->rows) {
    double mean = row[2].AsDouble();
    EXPECT_GE(mean, 1.0);
    EXPECT_LE(mean, 5.0);
  }
}

TEST(IntegrationTest, CommentArrivesInSearchIncrementally) {
  auto& site = *World().site;
  const auto& artifacts = World().generator->artifacts();
  auto searcher = site.MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  ASSERT_EQ(searcher->Search("xylophone")->size(), 0u);
  ASSERT_TRUE(site.AddComment(artifacts.active_students[0],
                              artifacts.calculus,
                              "practically a xylophone of derivatives", 400)
                  .ok());
  EXPECT_EQ(searcher->Search("xylophone")->size(), 1u);
}

TEST(IntegrationTest, RoutingFindsAnswerers) {
  auto& site = *World().site;
  ASSERT_TRUE(site.router().Build().ok());
  auto candidates = site.router().Route(
      "which calculus section has the best problem sessions?", 5);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GT(candidates->size(), 0u);
  for (size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_GE((*candidates)[i - 1].score, (*candidates)[i].score);
  }
}

}  // namespace
}  // namespace courserank
