#include <gtest/gtest.h>

#include "planner/scheduler.h"
#include "social/site.h"

namespace courserank::planner {
namespace {

using social::CourseRankSite;

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = CourseRankSite::Create();
    ASSERT_TRUE(site.ok());
    site_ = std::move(*site);
    cs_ = Must(site_->AddDepartment("CS", "Computer Science", "Engineering"));
    intro_ = Must(site_->AddCourse(cs_, 106, "Intro", "", 5));
    ds_ = Must(site_->AddCourse(cs_, 161, "Data Structures", "", 5));
    os_ = Must(site_->AddCourse(cs_, 240, "OS", "", 4));
    alg_ = Must(site_->AddCourse(cs_, 161 + 100, "Algorithms", "", 4));
    ASSERT_TRUE(site_->AddPrereq(ds_, intro_).ok());
    ASSERT_TRUE(site_->AddPrereq(os_, ds_).ok());

    mwf9_ = TimeSlot{static_cast<uint8_t>(kMon | kWed | kFri), 540, 590};
    mwf10_ = TimeSlot{static_cast<uint8_t>(kMon | kWed | kFri), 600, 650};
    tth9_ = TimeSlot{static_cast<uint8_t>(kTue | kThu), 540, 620};
  }

  template <typename T>
  T Must(courserank::Result<T> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  void Offer(CourseId course, int year, Quarter q, TimeSlot slot) {
    Must(site_->AddOffering(course, year, q, "Prof", slot));
  }

  ScheduleSuggestion Suggest(std::vector<CourseId> wanted,
                             std::set<CourseId> completed = {},
                             int num_terms = 4, int max_units = 18) {
    ScheduleRequest request;
    request.wanted = std::move(wanted);
    request.first_term = {2008, Quarter::kAutumn};
    request.num_terms = num_terms;
    request.max_units_per_term = max_units;
    auto graph = PrereqGraph::Build(site_->db());
    EXPECT_TRUE(graph.ok());
    auto suggestion =
        SuggestSchedule(site_->db(), *graph, completed, request);
    EXPECT_TRUE(suggestion.ok()) << suggestion.status().ToString();
    return std::move(*suggestion);
  }

  std::optional<Term> TermOf(const ScheduleSuggestion& s, CourseId c) {
    for (const Placement& p : s.placements) {
      if (p.course == c) return p.term;
    }
    return std::nullopt;
  }

  std::unique_ptr<CourseRankSite> site_;
  social::DeptId cs_ = 0;
  CourseId intro_ = 0, ds_ = 0, os_ = 0, alg_ = 0;
  TimeSlot mwf9_, mwf10_, tth9_;
};

TEST_F(SchedulerTest, PlacesPrereqChainsInOrder) {
  Offer(intro_, 2008, Quarter::kAutumn, mwf9_);
  Offer(ds_, 2008, Quarter::kWinter, mwf9_);
  Offer(os_, 2008, Quarter::kSpring, mwf9_);
  auto s = Suggest({os_, ds_, intro_});
  EXPECT_TRUE(s.unplaced.empty());
  ASSERT_TRUE(TermOf(s, intro_).has_value());
  EXPECT_LT(*TermOf(s, intro_), *TermOf(s, ds_));
  EXPECT_LT(*TermOf(s, ds_), *TermOf(s, os_));
}

TEST_F(SchedulerTest, CompletedPrereqsUnlockImmediately) {
  Offer(ds_, 2008, Quarter::kAutumn, mwf9_);
  auto s = Suggest({ds_}, /*completed=*/{intro_});
  EXPECT_TRUE(s.unplaced.empty());
  EXPECT_EQ(*TermOf(s, ds_), (Term{2008, Quarter::kAutumn}));
}

TEST_F(SchedulerTest, PrereqNotSatisfiableReported) {
  // ds offered but intro never offered in the window.
  Offer(ds_, 2008, Quarter::kWinter, mwf9_);
  auto s = Suggest({ds_, intro_});
  ASSERT_EQ(s.unplaced.size(), 2u);  // intro not offered; ds blocked
}

TEST_F(SchedulerTest, AvoidsTimeConflictsAcrossSections) {
  // Two wanted courses share MWF9, but algorithms has a TTh section too.
  Offer(intro_, 2008, Quarter::kAutumn, mwf9_);
  Offer(alg_, 2008, Quarter::kAutumn, mwf9_);
  Offer(alg_, 2008, Quarter::kAutumn, tth9_);
  auto s = Suggest({intro_, alg_}, {}, /*num_terms=*/1);
  EXPECT_TRUE(s.unplaced.empty());
  EXPECT_EQ(*TermOf(s, intro_), *TermOf(s, alg_));  // same quarter works
}

TEST_F(SchedulerTest, SpillsToLaterTermOnConflict) {
  Offer(intro_, 2008, Quarter::kAutumn, mwf9_);
  Offer(alg_, 2008, Quarter::kAutumn, mwf9_);  // clashes, single section
  Offer(alg_, 2008, Quarter::kWinter, mwf9_);
  auto s = Suggest({intro_, alg_});
  EXPECT_TRUE(s.unplaced.empty());
  EXPECT_NE(*TermOf(s, intro_), *TermOf(s, alg_));
}

TEST_F(SchedulerTest, HonorsUnitCap) {
  // Three 5-unit and one 4-unit course all offered only in Autumn; cap 10.
  Offer(intro_, 2008, Quarter::kAutumn, mwf9_);
  Offer(alg_, 2008, Quarter::kAutumn, mwf10_);
  Offer(ds_, 2008, Quarter::kAutumn, tth9_);
  auto s = Suggest({intro_, alg_}, {}, /*num_terms=*/1, /*max_units=*/5);
  EXPECT_EQ(s.placements.size(), 1u);
  ASSERT_EQ(s.unplaced.size(), 1u);
  EXPECT_NE(s.unplaced[0].reason.find("unit cap"), std::string::npos);
}

TEST_F(SchedulerTest, AlreadyCompletedIsReported) {
  Offer(intro_, 2008, Quarter::kAutumn, mwf9_);
  auto s = Suggest({intro_}, /*completed=*/{intro_});
  ASSERT_EQ(s.unplaced.size(), 1u);
  EXPECT_EQ(s.unplaced[0].reason, "already completed");
}

TEST_F(SchedulerTest, NotOfferedIsReported) {
  auto s = Suggest({intro_});
  ASSERT_EQ(s.unplaced.size(), 1u);
  EXPECT_NE(s.unplaced[0].reason.find("not offered"), std::string::npos);
}

TEST_F(SchedulerTest, EmptyWantedYieldsEmptySuggestion) {
  auto s = Suggest({});
  EXPECT_TRUE(s.placements.empty());
  EXPECT_TRUE(s.unplaced.empty());
}

}  // namespace
}  // namespace courserank::planner
