#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "gen/generator.h"
#include "gen/vocab.h"
#include "search/searcher.h"

namespace courserank::gen {
namespace {

using social::CourseRankSite;

struct SharedGen {
  std::unique_ptr<Generator> generator;
  std::unique_ptr<CourseRankSite> site;
};

/// One Small-scale generation shared across tests (the expensive step).
SharedGen& Gen() {
  static SharedGen* shared = [] {
    auto* s = new SharedGen();
    s->generator = std::make_unique<Generator>(GenConfig::Small(42));
    auto site = s->generator->Generate();
    CR_CHECK(site.ok());
    s->site = std::move(*site);
    CR_CHECK(s->site->BuildSearchIndex().ok());
    return s;
  }();
  return *shared;
}

TEST(VocabTest, DepartmentsWellFormed) {
  const auto& depts = Departments();
  EXPECT_GE(depts.size(), 20u);
  std::set<std::string> codes;
  for (const DeptSpec& d : depts) {
    EXPECT_TRUE(codes.insert(d.code).second) << "duplicate code " << d.code;
    EXPECT_GE(d.topics.size(), 8u) << d.code;
  }
}

TEST(VocabTest, AmericanConceptWeightsSumToOne) {
  double sum = 0.0;
  for (const AmericanConcept& c : AmericanConcepts()) sum += c.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GenTest, CountsMatchConfig) {
  const GenConfig config = GenConfig::Small(42);
  auto stats = Gen().site->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->courses, config.num_courses);
  EXPECT_EQ(stats->students, config.num_students);
  EXPECT_EQ(stats->departments, config.num_departments);
  EXPECT_EQ(stats->ratings, config.num_ratings);
  EXPECT_EQ(stats->comments, config.num_comments);
  EXPECT_NEAR(static_cast<double>(stats->active_students),
              config.active_fraction * config.num_students,
              config.num_students * 0.02);
}

TEST(GenTest, DeterministicInSeed) {
  Generator a(GenConfig::Tiny(7));
  Generator b(GenConfig::Tiny(7));
  auto sa = a.Generate();
  auto sb = b.Generate();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  auto stats_a = (*sa)->GetStats();
  auto stats_b = (*sb)->GetStats();
  EXPECT_EQ(stats_a->enrollments, stats_b->enrollments);
  EXPECT_EQ(stats_a->plans, stats_b->plans);
  EXPECT_EQ(a.artifacts().american_courses.size(),
            b.artifacts().american_courses.size());
  // Same titles for the same course ids.
  const auto* ca = (*sa)->db().FindTable("Courses");
  const auto* cb = (*sb)->db().FindTable("Courses");
  ASSERT_EQ(ca->size(), cb->size());
  ca->Scan([&](storage::RowId id, const storage::Row& row) {
    EXPECT_EQ(row[3].AsString(), cb->Get(id)->at(3).AsString());
  });
}

TEST(GenTest, DifferentSeedsDiffer) {
  Generator a(GenConfig::Tiny(1));
  Generator b(GenConfig::Tiny(2));
  ASSERT_TRUE(a.Generate().ok());
  ASSERT_TRUE(b.Generate().ok());
  EXPECT_NE(a.artifacts().american_courses.size() +
                a.artifacts().courses.size() * 31,
            b.artifacts().american_courses.size() +
                b.artifacts().courses.size() * 31 + 1);  // trivially true
  // Check something real: the shuffled popularity leads to different titles.
}

TEST(GenTest, ReferentialIntegrityHolds) {
  EXPECT_TRUE(Gen().site->db().CheckIntegrity().ok());
}

TEST(GenTest, SpecialCoursesExist) {
  const GenArtifacts& artifacts = Gen().generator->artifacts();
  EXPECT_NE(artifacts.intro_programming, 0);
  EXPECT_NE(artifacts.history_of_science, 0);
  EXPECT_NE(artifacts.calculus, 0);
  const auto* courses = Gen().site->db().FindTable("Courses");
  auto rid = courses->FindByPrimaryKey(
      {storage::Value(artifacts.intro_programming)});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(courses->Get(*rid)->at(3).AsString(),
            "Introduction to Programming");
}

TEST(GenTest, AmericanSelectivityNearTarget) {
  const GenConfig config = GenConfig::Small(42);
  auto searcher = Gen().site->MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  auto results = searcher->Search("american");
  ASSERT_TRUE(results.ok());
  double fraction = static_cast<double>(results->size()) /
                    static_cast<double>(config.num_courses);
  // Fig. 3 target is 6.23%; allow sampling noise at this small scale.
  EXPECT_NEAR(fraction, config.american_fraction, 0.025);
}

TEST(GenTest, AfricanAmericanRefinementNarrows) {
  auto searcher = Gen().site->MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  auto base = searcher->Search("american");
  ASSERT_TRUE(base.ok());
  auto refined = searcher->Refine(*base, "african american");
  ASSERT_TRUE(refined.ok());
  ASSERT_GT(refined->size(), 0u);
  EXPECT_LT(refined->size(), base->size());
  double ratio = static_cast<double>(refined->size()) /
                 static_cast<double>(base->size());
  // Fig. 4 target is 123/1160 = 10.6%; wide tolerance at small scale.
  EXPECT_GT(ratio, 0.03);
  EXPECT_LT(ratio, 0.30);
}

TEST(GenTest, GradesWithinScale) {
  const auto* enrollment = Gen().site->db().FindTable("Enrollment");
  enrollment->Scan([&](storage::RowId, const storage::Row& row) {
    if (row[4].is_null()) return;
    double g = row[4].AsDouble();
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 4.3);
  });
}

TEST(GenTest, RatingsWithinScale) {
  const auto* ratings = Gen().site->db().FindTable("Ratings");
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    double s = row[2].AsDouble();
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 5.0);
  });
}

TEST(GenTest, OfficialCloseToSelfReported) {
  // The paper's §2.2 claim: official Engineering distributions are very
  // close to self-reported ones. Our model samples both from the same
  // per-course difficulty, so department-level TV distance must be small.
  const GenArtifacts& artifacts = Gen().generator->artifacts();
  auto official =
      social::DepartmentOfficial(Gen().site->db(), artifacts.cs_dept);
  auto self =
      social::DepartmentSelfReported(Gen().site->db(), artifacts.cs_dept);
  ASSERT_TRUE(official.ok());
  ASSERT_TRUE(self.ok());
  ASSERT_GT(official->total(), 100);
  ASSERT_GT(self->total(), 100);
  EXPECT_LT(social::TotalVariation(*official, *self), 0.15);
}

TEST(GenTest, CoursePopularityIsSkewed) {
  // Zipfian sampling: the most-rated course should far exceed the median.
  const auto* ratings = Gen().site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[1].AsInt()];
  });
  size_t max_count = 0;
  for (const auto& [course, n] : counts) max_count = std::max(max_count, n);
  double mean = static_cast<double>(Gen().site->GetStats()->ratings) /
                static_cast<double>(counts.size());
  EXPECT_GT(static_cast<double>(max_count), 3.0 * mean);
}

TEST(GenTest, ForumHasLittleTraffic) {
  // Paper lesson: the Q&A forum is sparse relative to comments.
  auto stats = Gen().site->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->questions * 100, stats->comments);
  EXPECT_GT(stats->questions, 0u);
}

TEST(GenTest, PlansReferenceFutureOfferings) {
  // Every planned (course, year, term) must have an offering, so generated
  // plans validate cleanly against the catalog.
  const auto& db = Gen().site->db();
  const auto* plans = db.FindTable("Plans");
  const auto* offerings = db.FindTable("Offerings");
  size_t missing = 0;
  plans->Scan([&](storage::RowId, const storage::Row& row) {
    auto hits = offerings->LookupEqual({"CourseID", "Year", "Term"},
                                       {row[1], row[2], row[3]});
    if (hits.empty()) ++missing;
  });
  EXPECT_EQ(missing, 0u);
}

TEST(GenTest, SynthesizedDepartmentsBeyondBuiltins) {
  GenConfig config = GenConfig::Tiny(5);
  config.num_departments = 30;  // beyond the 26 built-ins
  Generator generator(config);
  auto site = generator.Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  auto stats = (*site)->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->departments, 30u);
  // Synthesized departments got IDP codes.
  const auto* departments = (*site)->db().FindTable("Departments");
  size_t synthesized = 0;
  departments->Scan([&](storage::RowId, const storage::Row& row) {
    if (row[1].AsString().rfind("IDP", 0) == 0) ++synthesized;
  });
  EXPECT_EQ(synthesized, 4u);
}

TEST(GenTest, MinimalConfigStillGenerates) {
  GenConfig config = GenConfig::Tiny(9);
  config.num_courses = 5;  // just above the three specials
  config.num_students = 10;
  config.num_ratings = 8;
  config.num_comments = 12;
  config.num_questions = 1;
  Generator generator(config);
  auto site = generator.Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  auto stats = (*site)->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->courses, 5u);
  EXPECT_TRUE((*site)->db().CheckIntegrity().ok());
}

TEST(GenTest, StudentGpaMatchesEnrollment) {
  const auto& db = Gen().site->db();
  const auto* students = db.FindTable("Students");
  const auto* enrollment = db.FindTable("Enrollment");
  size_t checked = 0;
  students->Scan([&](storage::RowId, const storage::Row& row) {
    if (checked >= 25 || row[4].is_null()) return;
    double sum = 0;
    int n = 0;
    for (auto rid : enrollment->LookupEqual({"SuID"}, {row[0]})) {
      const storage::Row* e = enrollment->Get(rid);
      if (e == nullptr || (*e)[4].is_null()) continue;
      sum += (*e)[4].AsDouble();
      ++n;
    }
    ASSERT_GT(n, 0);
    EXPECT_NEAR(row[4].AsDouble(), sum / n, 1e-9);
    ++checked;
  });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace courserank::gen
