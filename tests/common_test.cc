#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/term.h"
#include "common/thread_pool.h"

namespace courserank {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubler(Result<int> input) {
  CR_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::NotFound("gone")).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("Hello World 42"), "hello world 42");
  EXPECT_EQ(ToUpper("Hello World 42"), "HELLO WORLD 42");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("courserank", "course"));
  EXPECT_FALSE(StartsWith("course", "courserank"));
  EXPECT_TRUE(EndsWith("courserank", "rank"));
  EXPECT_FALSE(EndsWith("rank", "courserank"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("CourseID", "courseid"));
  EXPECT_FALSE(EqualsIgnoreCase("course", "courses"));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Latin American Politics", "AMERICAN"));
  EXPECT_FALSE(ContainsIgnoreCase("Latin", "American"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.match)
      << c.text << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "HELLO", true},
        LikeCase{"hello", "h%", true}, LikeCase{"hello", "%o", true},
        LikeCase{"hello", "%ell%", true}, LikeCase{"hello", "h_llo", true},
        LikeCase{"hello", "h_lo", false}, LikeCase{"hello", "%", true},
        LikeCase{"", "%", true}, LikeCase{"", "_", false},
        LikeCase{"abc", "a%c", true}, LikeCase{"abdc", "a%c", true},
        LikeCase{"ac", "a%c", true}, LikeCase{"ab", "a%c", false},
        LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"mississippi", "%ss%ss%", true},
        LikeCase{"mississippi", "%ssXss%", false}));

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.123456789, 4), "0.1235");
  EXPECT_EQ(FormatDouble(-2.50), "-2.5");
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.NextWeighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(ZipfTest, RankOneMostProbable) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, SamplesInRange) {
  Rng rng(19);
  ZipfSampler zipf(50, GetParam());
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 50u);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest,
                         ::testing::Values(0.0, 0.5, 0.9, 1.2, 2.0));

// ---------------------------------------------------------------- term

TEST(TermTest, Ordering) {
  Term autumn08{2008, Quarter::kAutumn};
  Term winter08{2008, Quarter::kWinter};
  Term autumn09{2009, Quarter::kAutumn};
  EXPECT_LT(autumn08, winter08);
  EXPECT_LT(winter08, autumn09);
  EXPECT_EQ(autumn08, (Term{2008, Quarter::kAutumn}));
}

TEST(TermTest, PlusWrapsYears) {
  // Quarter order within an academic year: Autumn, Winter, Spring, Summer.
  Term t{2008, Quarter::kSpring};
  EXPECT_EQ(t.Plus(1), (Term{2008, Quarter::kSummer}));
  EXPECT_EQ(t.Plus(2), (Term{2009, Quarter::kAutumn}));
  EXPECT_EQ(t.Plus(-3), (Term{2007, Quarter::kSummer}));
  EXPECT_EQ(t.Plus(0), t);
}

TEST(TermTest, ParseRoundTrip) {
  Term t{2008, Quarter::kWinter};
  auto parsed = Term::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, ParseEitherOrder) {
  auto a = Term::Parse("Autumn 2008");
  auto b = Term::Parse("2008 Autumn");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TermTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Term::Parse("whenever").ok());
  EXPECT_FALSE(Term::Parse("Autumn").ok());
  EXPECT_FALSE(Term::Parse("Autumn twenty").ok());
}

TEST(QuarterTest, ParseNamesAndPrefixes) {
  EXPECT_TRUE(ParseQuarter("autumn").ok());
  EXPECT_TRUE(ParseQuarter("WINTER").ok());
  EXPECT_TRUE(ParseQuarter("Sp").ok());
  EXPECT_FALSE(ParseQuarter("fall quarter").ok());
}

// ---------------------------------------------------------------- TimeSlot

TEST(TimeSlotTest, OverlapSameDay) {
  TimeSlot a{kMon | kWed, 9 * 60, 10 * 60};
  TimeSlot b{kWed, 9 * 60 + 30, 11 * 60};
  EXPECT_TRUE(a.ConflictsWith(b));
  EXPECT_TRUE(b.ConflictsWith(a));
}

TEST(TimeSlotTest, NoOverlapDifferentDays) {
  TimeSlot a{kMon | kWed | kFri, 9 * 60, 10 * 60};
  TimeSlot b{kTue | kThu, 9 * 60, 10 * 60};
  EXPECT_FALSE(a.ConflictsWith(b));
}

TEST(TimeSlotTest, BackToBackIsNotConflict) {
  TimeSlot a{kMon, 9 * 60, 10 * 60};
  TimeSlot b{kMon, 10 * 60, 11 * 60};
  EXPECT_FALSE(a.ConflictsWith(b));
}

TEST(TimeSlotTest, EmptySlotNeverConflicts) {
  TimeSlot a{};  // TBA
  TimeSlot b{kMon, 9 * 60, 10 * 60};
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.ConflictsWith(b));
  EXPECT_FALSE(b.ConflictsWith(a));
}

TEST(TimeSlotTest, ToStringFormat) {
  TimeSlot a{kMon | kWed | kFri, 9 * 60, 9 * 60 + 50};
  EXPECT_EQ(a.ToString(), "MWF 09:00-09:50");
  EXPECT_EQ(TimeSlot{}.ToString(), "TBA");
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> seen(1000);
    pool.ParallelFor(seen.size(), /*min_chunk=*/16,
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) ++seen[i];
                     });
    for (size_t i = 0; i < seen.size(); ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkPartitionIgnoresWorkerCount) {
  // The determinism contract: chunk boundaries are a pure function of the
  // item count, so any pool produces identical per-chunk inputs.
  ThreadPool a(0);
  ThreadPool b(4);
  std::vector<std::pair<size_t, size_t>> bounds_a(ThreadPool::kMaxChunks),
      bounds_b(ThreadPool::kMaxChunks);
  a.ParallelFor(5000, 64, [&](size_t c, size_t begin, size_t end) {
    bounds_a[c] = {begin, end};
  });
  b.ParallelFor(5000, 64, [&](size_t c, size_t begin, size_t end) {
    bounds_b[c] = {begin, end};
  });
  EXPECT_EQ(bounds_a, bounds_b);
  EXPECT_EQ(ThreadPool::NumChunks(5000, 64), ThreadPool::kMaxChunks);
  EXPECT_EQ(ThreadPool::NumChunks(0, 64), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(63, 64), 1u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, 1, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // A worker issuing its own ParallelFor must not deadlock on the
      // queue it is supposed to drain.
      pool.ParallelFor(4, 1, [&](size_t, size_t b2, size_t e2) {
        total += static_cast<int>(e2 - b2);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(LoggingTest, RuntimeLevelRoundTripsAndFiltersBelowThreshold) {
  LogLevel before = RuntimeLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(RuntimeLogLevel(), LogLevel::kError);
  // Filtered out at runtime (WARN < ERROR); must still compile and be a
  // plain statement usable without braces.
  if (true) CR_LOG(WARN, "suppressed %d", 1);
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(RuntimeLogLevel(), LogLevel::kWarn);
  CR_LOG(WARN, "one warn line to stderr: %s", "expected in test output");
  SetLogLevel(before);
}

TEST(ThreadPoolTest, SharedPoolDegradesOnSingleCore) {
  // On this container the shared pool may have zero workers; either way
  // ParallelFor must still complete all work.
  std::atomic<int> count{0};
  SharedThreadPool().ParallelFor(100, 10, [&](size_t, size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace courserank
