#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace courserank::text {
namespace {

// ---------------------------------------------------------------- tokenizer

TEST(TokenizerTest, BasicSplitting) {
  EXPECT_EQ(Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  EXPECT_EQ(Tokenize("CS 106 rocks"),
            (std::vector<std::string>{"cs", "106", "rocks"}));
}

TEST(TokenizerTest, ApostrophesCollapse) {
  EXPECT_EQ(Tokenize("don't O'Brien's"),
            (std::vector<std::string>{"dont", "obriens"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, PositionedTokensContiguousWithinSentence) {
  auto tokens = TokenizePositioned("latin american politics");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position + 1, tokens[1].position);
  EXPECT_EQ(tokens[1].position + 1, tokens[2].position);
}

TEST(TokenizerTest, PositionedTokensGapAtSentenceBoundary) {
  auto tokens = TokenizePositioned("was brutal. Great coverage");
  ASSERT_EQ(tokens.size(), 4u);
  // "brutal" and "great" must not be adjacent.
  EXPECT_GT(tokens[2].position, tokens[1].position + 1);
  // "great coverage" stays adjacent.
  EXPECT_EQ(tokens[3].position, tokens[2].position + 1);
}

TEST(TokenizerTest, NormalizeToken) {
  EXPECT_EQ(NormalizeToken("Hello!"), "hello");
  EXPECT_EQ(NormalizeToken("***"), "");
}

// ---------------------------------------------------------------- stopwords

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "and", "of", "is", "a", "to"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, CatalogBoilerplateIsStopword) {
  for (const char* w : {"course", "students", "topics", "introduction",
                        "prerequisite", "units"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNot) {
  for (const char* w : {"american", "java", "calculus", "politics",
                        "history"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ListIsSortedForBinarySearch) {
  // Spot-check via behavior: words at both ends of the alphabet resolve.
  EXPECT_TRUE(IsStopword("a"));
  EXPECT_TRUE(IsStopword("yourself"));
  EXPECT_GT(StopwordCount(), 100u);
}

// ---------------------------------------------------------------- stemmer

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterTest, MatchesReferenceVectors) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem) << GetParam().word;
}

// Reference outputs from the original Porter (1980) algorithm.
INSTANTIATE_TEST_SUITE_P(
    Vectors, PorterTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}, StemCase{"programming", "program"},
        StemCase{"databases", "databas"}, StemCase{"american", "american"},
        StemCase{"politics", "polit"}, StemCase{"at", "at"},
        StemCase{"by", "by"}));

TEST(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
}

TEST(PorterTest, SameStemForRelatedForms) {
  EXPECT_EQ(PorterStem("recommend"), PorterStem("recommendation"));
  EXPECT_EQ(PorterStem("connect"), PorterStem("connected"));
  EXPECT_EQ(PorterStem("connect"), PorterStem("connections"));
}

// ---------------------------------------------------------------- analyzer

TEST(AnalyzerTest, PipelineStopsAndStems) {
  Analyzer analyzer;
  auto tokens = analyzer.Analyze("The programming assignments were great");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].term, "program");
  EXPECT_EQ(tokens[0].surface, "programming");
  EXPECT_EQ(tokens[1].term, "assign");
  EXPECT_EQ(tokens[2].term, "great");
}

TEST(AnalyzerTest, DropsNumericTokensByDefault) {
  Analyzer analyzer;
  auto tokens = analyzer.Analyze("cs 106 in 2008");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].term, "cs");
}

TEST(AnalyzerTest, OptionsDisablePipelineStages) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  opts.drop_numeric = false;
  Analyzer analyzer(opts);
  auto tokens = analyzer.Analyze("The 2 programs");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].term, "programs");
}

TEST(AnalyzerTest, AnalyzeQueryReturnsTerms) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeQuery("American History"),
            (std::vector<std::string>{"american", "histori"}));
  EXPECT_TRUE(analyzer.AnalyzeQuery("the of and").empty());
}

TEST(AnalyzerTest, BigramsRequireAdjacency) {
  Analyzer analyzer;
  auto tokens = analyzer.Analyze("latin american politics");
  auto bigrams = Analyzer::Bigrams(tokens);
  ASSERT_EQ(bigrams.size(), 2u);
  EXPECT_EQ(bigrams[0].term, "latin american");
  EXPECT_EQ(bigrams[1].term, "american polit");
}

TEST(AnalyzerTest, BigramsSkipStopwordGaps) {
  Analyzer analyzer;
  // "history of science": "of" removed leaves a positional gap.
  auto tokens = analyzer.Analyze("history of science");
  auto bigrams = Analyzer::Bigrams(tokens);
  EXPECT_TRUE(bigrams.empty());
}

TEST(AnalyzerTest, BigramsDoNotCrossSentences) {
  Analyzer analyzer;
  auto tokens = analyzer.Analyze("pace was brutal. Great material");
  for (const auto& bg : Analyzer::Bigrams(tokens)) {
    EXPECT_EQ(bg.term.find("brutal great"), std::string::npos);
  }
}

TEST(SurfaceRegistryTest, MostFrequentSurfaceWins) {
  SurfaceRegistry registry;
  registry.Record("polit", "political");
  registry.Record("polit", "politics");
  registry.Record("polit", "politics");
  EXPECT_EQ(registry.DisplayForm("polit"), "politics");
  EXPECT_EQ(registry.DisplayForm("unknown"), "unknown");
}

}  // namespace
}  // namespace courserank::text
