#include <gtest/gtest.h>

#include <set>

#include "core/data_cloud.h"
#include "search/searcher.h"
#include "storage/database.h"

namespace courserank::cloud {
namespace {

using search::EntityDefinition;
using search::InvertedIndex;
using search::ResultSet;
using search::Searcher;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class CloudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto courses = db_.CreateTable(
        "Courses",
        Schema({{"CourseID", ValueType::kInt, false},
                {"Title", ValueType::kString, false},
                {"Description", ValueType::kString, true}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());

    int id = 0;
    // Ten "american" courses with co-occurring concepts; politics appears
    // in several, "latin american" in three, "african american" in two.
    Add(++id, "American Politics", "american politics and democracy");
    Add(++id, "American Culture", "american culture and politics");
    Add(++id, "American West", "the american west and its frontier");
    Add(++id, "Latin American History", "latin american revolutions");
    Add(++id, "Latin American Film", "latin american cinema and culture");
    Add(++id, "Latin American Poetry", "latin american poets");
    Add(++id, "African American Studies", "african american migration");
    Add(++id, "African American Music", "african american jazz and blues");
    Add(++id, "American Foreign Policy", "american diplomacy and politics");
    Add(++id, "American Novels", "novels of american writers");
    // Unrelated courses.
    Add(++id, "Databases", "relational algebra and sql");
    Add(++id, "Compilers", "parsing and code generation");

    EntityDefinition def;
    def.name = "course";
    def.primary_table = "Courses";
    def.key_column = "CourseID";
    def.display_column = "Title";
    def.fields = {
        {"title", 3.0, "Courses", "Title", "CourseID"},
        {"description", 1.5, "Courses", "Description", "CourseID"},
    };
    index_ = std::make_unique<InvertedIndex>(def);
    ASSERT_TRUE(index_->Build(db_).ok());
    searcher_ = std::make_unique<Searcher>(index_.get());
  }

  void Add(int id, const std::string& title, const std::string& desc) {
    ASSERT_TRUE(db_.FindTable("Courses")
                    ->Insert({Value(id), Value(title), Value(desc)})
                    .ok());
  }

  ResultSet Search(const std::string& q) {
    auto r = searcher_->Search(q);
    EXPECT_TRUE(r.ok());
    return std::move(*r);
  }

  storage::Database db_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<Searcher> searcher_;
};

TEST_F(CloudTest, CloudExcludesQueryTerms) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  for (const CloudTerm& t : cloud.terms) {
    EXPECT_NE(t.term, "american") << "query term leaked into cloud";
  }
}

TEST_F(CloudTest, CloudSurfacesCoOccurringConcepts) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  EXPECT_TRUE(cloud.Contains("politics")) << cloud.ToString();
  EXPECT_TRUE(cloud.Contains("latin american")) << cloud.ToString();
  EXPECT_TRUE(cloud.Contains("african american")) << cloud.ToString();
}

TEST_F(CloudTest, CloudOmitsTermsAbsentFromResults) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  EXPECT_FALSE(cloud.Contains("sql"));
  EXPECT_FALSE(cloud.Contains("parsing"));
}

TEST_F(CloudTest, MinDocCountFiltersSingletons) {
  CloudOptions opts;
  opts.min_doc_count = 3;
  CloudBuilder builder(index_.get(), opts);
  DataCloud cloud = builder.Build(Search("american"));
  for (const CloudTerm& t : cloud.terms) {
    EXPECT_GE(t.doc_count, 3u) << t.term;
  }
}

TEST_F(CloudTest, MaxTermsCapsCloudSize) {
  CloudOptions opts;
  opts.max_terms = 3;
  opts.min_doc_count = 1;
  CloudBuilder builder(index_.get(), opts);
  DataCloud cloud = builder.Build(Search("american"));
  EXPECT_LE(cloud.terms.size(), 3u);
}

TEST_F(CloudTest, TermsSortedByScoreDescending) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  for (size_t i = 1; i < cloud.terms.size(); ++i) {
    EXPECT_GE(cloud.terms[i - 1].score, cloud.terms[i].score);
  }
}

TEST_F(CloudTest, FontBucketsSpanRange) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  ASSERT_FALSE(cloud.terms.empty());
  EXPECT_EQ(cloud.terms.front().font_bucket, 5);  // highest score
  EXPECT_EQ(cloud.terms.back().font_bucket, 1);   // lowest selected
  for (const CloudTerm& t : cloud.terms) {
    EXPECT_GE(t.font_bucket, 1);
    EXPECT_LE(t.font_bucket, 5);
  }
}

TEST_F(CloudTest, EmptyResultsYieldEmptyCloud) {
  CloudBuilder builder(index_.get());
  ResultSet empty;
  empty.terms = {"nothing"};
  EXPECT_TRUE(builder.Build(empty).terms.empty());
}

TEST_F(CloudTest, ScoringModesDiffer) {
  ResultSet results = Search("american");
  CloudOptions tf_opts;
  tf_opts.scoring = TermScoring::kTf;
  CloudOptions pop_opts;
  pop_opts.scoring = TermScoring::kPopularity;
  DataCloud tf = CloudBuilder(index_.get(), tf_opts).Build(results);
  DataCloud pop = CloudBuilder(index_.get(), pop_opts).Build(results);
  ASSERT_FALSE(tf.terms.empty());
  ASSERT_FALSE(pop.terms.empty());
  // Popularity scoring equals the doc count by definition.
  for (const CloudTerm& t : pop.terms) {
    if (!t.is_phrase) {
      EXPECT_DOUBLE_EQ(t.score,
                       static_cast<double>(t.doc_count));
    }
  }
}

TEST_F(CloudTest, ReanalysisOracleMatchesPrecomputed) {
  CloudBuilder builder(index_.get());
  ResultSet results = Search("american");
  DataCloud fast = builder.Build(results);
  DataCloud slow = builder.BuildByReanalysis(results);
  ASSERT_EQ(fast.terms.size(), slow.terms.size());
  for (size_t i = 0; i < fast.terms.size(); ++i) {
    EXPECT_EQ(fast.terms[i].term, slow.terms[i].term);
    EXPECT_DOUBLE_EQ(fast.terms[i].score, slow.terms[i].score);
    EXPECT_EQ(fast.terms[i].doc_count, slow.terms[i].doc_count);
  }
}

TEST_F(CloudTest, RefinementLoopNarrowsResults) {
  // The Fig. 3 -> Fig. 4 interaction: search, click a cloud term, get a
  // smaller result set and a new cloud.
  CloudBuilder builder(index_.get());
  ResultSet results = Search("american");
  DataCloud cloud = builder.Build(results);
  ASSERT_TRUE(cloud.Contains("african american"));

  auto refined = searcher_->Refine(results, "african american");
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined->size(), 2u);
  EXPECT_LT(refined->size(), results.size());

  DataCloud refined_cloud = builder.Build(*refined);
  // The clicked term's components are now query terms and excluded.
  EXPECT_FALSE(refined_cloud.Contains("african american"));
}

TEST_F(CloudTest, CloudTermRefinementByDisplayForm) {
  // Clicking uses the display form; stems resolve identically.
  ResultSet results = Search("american");
  auto by_display = searcher_->Refine(results, "politics");
  auto by_stem = searcher_->Refine(results, "polit");
  ASSERT_TRUE(by_display.ok());
  ASSERT_TRUE(by_stem.ok());
  EXPECT_EQ(by_display->size(), by_stem->size());
}

TEST_F(CloudTest, SubsumedUnigramsSuppressed) {
  // "latin" appears only inside "latin american"; with dedup on, the
  // unigram should not ride along with the stronger phrase.
  CloudOptions opts;
  opts.bigram_boost = 10.0;  // phrases picked first
  opts.min_doc_count = 2;
  opts.dedup_subsumed_unigrams = true;
  DataCloud with_dedup =
      CloudBuilder(index_.get(), opts).Build(Search("american"));
  EXPECT_TRUE(with_dedup.Contains("latin american"));
  EXPECT_FALSE(with_dedup.Contains("latin")) << with_dedup.ToString();

  opts.dedup_subsumed_unigrams = false;
  DataCloud without =
      CloudBuilder(index_.get(), opts).Build(Search("american"));
  EXPECT_TRUE(without.Contains("latin")) << without.ToString();
}

TEST_F(CloudTest, ContainsMatchesStemOrDisplay) {
  CloudBuilder builder(index_.get());
  DataCloud cloud = builder.Build(Search("american"));
  ASSERT_TRUE(cloud.Contains("politics"));  // display form
  EXPECT_TRUE(cloud.Contains("polit"));     // stem form
  EXPECT_FALSE(cloud.Contains("nonexistent term"));
}

TEST_F(CloudTest, SingleFontBucketWhenScoresEqual) {
  CloudOptions opts;
  opts.scoring = TermScoring::kPopularity;
  opts.max_terms = 50;
  opts.min_doc_count = 2;
  CloudBuilder builder(index_.get(), opts);
  // A query whose results produce some equal-score terms: buckets stay in
  // [1, font_buckets] regardless.
  DataCloud cloud = builder.Build(Search("latin"));
  for (const CloudTerm& t : cloud.terms) {
    EXPECT_GE(t.font_bucket, 1);
    EXPECT_LE(t.font_bucket, opts.font_buckets);
  }
}

TEST_F(CloudTest, BigramBoostPromotesPhrases) {
  CloudOptions boosted;
  boosted.bigram_boost = 10.0;
  boosted.min_doc_count = 2;
  DataCloud cloud =
      CloudBuilder(index_.get(), boosted).Build(Search("american"));
  ASSERT_FALSE(cloud.terms.empty());
  EXPECT_TRUE(cloud.terms.front().is_phrase) << cloud.ToString();
}

}  // namespace
}  // namespace courserank::cloud
