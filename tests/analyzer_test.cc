#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "core/flexrecs_engine.h"
#include "core/strategies.h"
#include "core/workflow_parser.h"
#include "social/site.h"
#include "storage/database.h"

namespace courserank::analysis {
namespace {

using storage::Schema;
using storage::Value;
using storage::ValueType;

/// A catalog with enough shape to exercise every check: typed columns,
/// nullable columns, list-typed attributes via ε, and a similarity library.
class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(
                       "Students",
                       Schema({{"SuID", ValueType::kInt, false},
                               {"Name", ValueType::kString, false},
                               {"Major", ValueType::kString, true}}),
                       {"SuID"})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(
                       "Courses",
                       Schema({{"CourseID", ValueType::kInt, false},
                               {"Title", ValueType::kString, false},
                               {"Units", ValueType::kInt, false}}),
                       {"CourseID"})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(
                       "Ratings",
                       Schema({{"SuID", ValueType::kInt, false},
                               {"CourseID", ValueType::kInt, false},
                               {"Score", ValueType::kDouble, false}}),
                       {"SuID", "CourseID"})
                    .ok());
    engine_ = std::make_unique<flexrecs::FlexRecsEngine>(&db_);
  }

  /// Lints DSL text with the engine's similarity library.
  DiagnosticBag Lint(const std::string& dsl, bool pedantic = false) {
    AnalyzerOptions options;
    options.pedantic = pedantic;
    Analyzer analyzer(&db_, &engine_->library(), options);
    return analyzer.LintDsl(dsl);
  }

  DiagnosticBag LintSql(const std::string& sql) {
    return Analyzer(&db_, &engine_->library()).LintSql(sql);
  }

  /// The single diagnostic in the bag, asserted to exist.
  const Diagnostic& Only(const DiagnosticBag& bag) {
    EXPECT_EQ(bag.size(), 1u) << bag.ToText();
    static Diagnostic fallback{};
    return bag.empty() ? fallback : bag.items()[0];
  }

  storage::Database db_;
  std::unique_ptr<flexrecs::FlexRecsEngine> engine_;
};

// ---- golden diagnostics: one per check -------------------------------

TEST_F(AnalyzerTest, ParseErrorCarriesStatementSpan) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = FROBNICATE a\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kParseDsl);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.col, 1);
  EXPECT_NE(d.message.find("FROBNICATE"), std::string::npos) << d.message;
}

TEST_F(AnalyzerTest, SqlParseErrorInWorkflowIsCr002) {
  DiagnosticBag bag = Lint(
      "a = SQL SELECT FROM WHERE\n"
      "RETURN a\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kParseSql);
  EXPECT_EQ(d.span.line, 1);
}

TEST_F(AnalyzerTest, NonSelectSqlNodeIsCr003) {
  DiagnosticBag bag = Lint(
      "a = SQL DELETE FROM Courses\n"
      "RETURN a\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kSqlNotSelect);
  EXPECT_EQ(d.severity, Severity::kError);
}

TEST_F(AnalyzerTest, UnknownTableIsCr101WithSpan) {
  DiagnosticBag bag = Lint(
      "a = TABLE Coursez\n"
      "RETURN a\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kUnknownTable);
  EXPECT_EQ(d.span.line, 1);
  EXPECT_NE(d.message.find("Coursez"), std::string::npos) << d.message;
}

TEST_F(AnalyzerTest, UnknownColumnIsCr102WithSpan) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Titel = 'Calculus'\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kUnknownColumn);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_NE(d.message.find("Titel"), std::string::npos) << d.message;
}

TEST_F(AnalyzerTest, UnknownSimilarityIsCr103) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "r = RECOMMEND a AGAINST a USING bogus(Title, Title) AGG max SCORE "
      "s\n"
      "RETURN r\n");
  ASSERT_TRUE(bag.Has(Code::kUnknownSimilarity)) << bag.ToText();
  EXPECT_TRUE(bag.has_errors());
}

TEST_F(AnalyzerTest, CrossTypeCompareIsCr201Warning) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Title > 5\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kCrossTypeCompare);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.span.line, 2);
}

TEST_F(AnalyzerTest, NonBooleanPredicateIsCr202) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Units + 1\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kNonBooleanPredicate);
  EXPECT_EQ(d.severity, Severity::kError);
}

TEST_F(AnalyzerTest, ArithmeticOnStringIsCr203) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Title * 2 > 3\n"
      "RETURN b\n");
  ASSERT_TRUE(bag.Has(Code::kArithmeticType)) << bag.ToText();
  EXPECT_TRUE(bag.has_errors());
}

TEST_F(AnalyzerTest, LikeOnNumericIsCr204) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Units LIKE '%x%'\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kArgumentType);
  EXPECT_NE(d.message.find("LIKE"), std::string::npos) << d.message;
}

TEST_F(AnalyzerTest, UnknownFunctionIsCr205) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE FROB(Title) = 'x'\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kBadCall);
}

TEST_F(AnalyzerTest, WrongArityIsCr205) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE LOWER(Title, Title) = 'x'\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kBadCall);
}

TEST_F(AnalyzerTest, SetSimilarityOverScalarAttrIsCr206) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "r = RECOMMEND a AGAINST a USING jaccard(Title, Title) AGG max SCORE "
      "s\n"
      "RETURN r\n");
  ASSERT_TRUE(bag.Has(Code::kSimilaritySignature)) << bag.ToText();
  for (const Diagnostic& d : bag.items()) {
    EXPECT_EQ(d.span.line, 2);
  }
}

TEST_F(AnalyzerTest, NonNumericWeightIsCr207) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "r = RECOMMEND s AGAINST s USING exact(SuID, SuID) AGG weighted "
      "Name SCORE score\n"
      "RETURN r\n");
  ASSERT_TRUE(bag.Has(Code::kWeightNotNumeric)) << bag.ToText();
}

TEST_F(AnalyzerTest, ExtendKeyTypeMismatchIsCr208) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "c = TABLE Courses\n"
      "e = EXTEND s WITH c ON SuID = Title COLLECT CourseID AS taken\n"
      "t = TOPK e BY taken DESC LIMIT 5\n"
      "RETURN t\n");
  ASSERT_TRUE(bag.Has(Code::kKeyTypeMismatch)) << bag.ToText();
}

TEST_F(AnalyzerTest, ConstantFalsePredicateIsCr301) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE 1 = 2\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kAlwaysFalse);
  EXPECT_EQ(d.severity, Severity::kWarning);
}

TEST_F(AnalyzerTest, ComparisonWithNullLiteralIsCr301) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "b = SELECT s WHERE Major = NULL\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kAlwaysFalse);
  EXPECT_NE(d.message.find("IS NULL"), std::string::npos) << d.message;
}

TEST_F(AnalyzerTest, CrossTypeEqualityConjunctIsCr301) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Units > 2 AND Title = 7\n"
      "RETURN b\n");
  ASSERT_TRUE(bag.Has(Code::kAlwaysFalse)) << bag.ToText();
}

TEST_F(AnalyzerTest, ConstantTruePredicateIsCr302) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE 1 = 1\n"
      "RETURN b\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kAlwaysTrue);
  EXPECT_EQ(d.severity, Severity::kWarning);
}

TEST_F(AnalyzerTest, JoinWithoutEquiConjunctIsCr401) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "c = TABLE Courses\n"
      "j = JOIN s WITH c ON SuID > CourseID\n"
      "RETURN j\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kCartesianProduct);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.span.line, 3);
}

TEST_F(AnalyzerTest, UnboundedResultIsPedanticOnlyCr402) {
  const char* dsl =
      "a = TABLE Courses\n"
      "RETURN a\n";
  EXPECT_TRUE(Lint(dsl).empty()) << Lint(dsl).ToText();
  DiagnosticBag pedantic = Lint(dsl, /*pedantic=*/true);
  ASSERT_TRUE(pedantic.Has(Code::kUnboundedResult)) << pedantic.ToText();
  EXPECT_FALSE(pedantic.has_errors());
}

TEST_F(AnalyzerTest, UnconsumedExtendColumnIsCr403) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "r = TABLE Ratings\n"
      "e = EXTEND s WITH r ON SuID = SuID COLLECT CourseID AS taken\n"
      "p = PROJECT e TO Name\n"
      "RETURN p\n");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kUnusedColumn);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.span.line, 3);
}

// ---- clean inputs produce zero diagnostics ---------------------------

TEST_F(AnalyzerTest, CleanWorkflowHasNoDiagnostics) {
  DiagnosticBag bag = Lint(
      "s = TABLE Students\n"
      "r = TABLE Ratings\n"
      "e = EXTEND s WITH r ON SuID = SuID COLLECT CourseID, Score AS "
      "prefs\n"
      "mine = SELECT e WHERE SuID = $student\n"
      "rest = SELECT e WHERE SuID <> $student\n"
      "sim = RECOMMEND rest AGAINST mine USING inv_euclidean(prefs, prefs) "
      "AGG max SCORE sim TOP 10\n"
      "t = TOPK sim BY sim DESC LIMIT 10\n"
      "RETURN t\n");
  EXPECT_TRUE(bag.empty()) << bag.ToText();
}

TEST_F(AnalyzerTest, DefaultStrategiesLintClean) {
  // The canned strategies reference the canonical site schema; lint them
  // against it exactly as an administrator would.
  auto site = social::CourseRankSite::Create();
  ASSERT_TRUE(site.ok());
  Analyzer analyzer(&(*site)->db(), &(*site)->flexrecs().library());
  for (const std::string& dsl :
       {flexrecs::strategies::RelatedCoursesDsl(),
        flexrecs::strategies::UserCfDsl(),
        flexrecs::strategies::WeightedUserCfDsl(),
        flexrecs::strategies::GradeCfDsl(),
        flexrecs::strategies::MajorPopularDsl(),
        flexrecs::strategies::RecommendMajorDsl(),
        flexrecs::strategies::BestQuarterDsl()}) {
    DiagnosticBag bag = analyzer.LintDsl(dsl);
    EXPECT_TRUE(bag.empty()) << dsl << "\n" << bag.ToText();
  }
}

// ---- SQL statement analysis ------------------------------------------

TEST_F(AnalyzerTest, SqlUnknownColumnIsCr102) {
  DiagnosticBag bag = LintSql("SELECT Titel FROM Courses");
  const Diagnostic& d = Only(bag);
  EXPECT_EQ(d.code, Code::kUnknownColumn);
}

TEST_F(AnalyzerTest, SqlJoinWithoutEqualityIsCr401) {
  DiagnosticBag bag = LintSql(
      "SELECT c.Title FROM Courses c JOIN Ratings r ON c.Units > r.Score");
  ASSERT_TRUE(bag.Has(Code::kCartesianProduct)) << bag.ToText();
}

TEST_F(AnalyzerTest, SqlInsertArityMismatchIsCr204) {
  DiagnosticBag bag =
      LintSql("INSERT INTO Courses (CourseID, Title) VALUES (1)");
  ASSERT_TRUE(bag.Has(Code::kArgumentType)) << bag.ToText();
}

TEST_F(AnalyzerTest, SqlInsertTypeMismatchIsCr204) {
  DiagnosticBag bag = LintSql(
      "INSERT INTO Courses (CourseID, Title, Units) VALUES ('x', 'T', 3)");
  ASSERT_TRUE(bag.Has(Code::kArgumentType)) << bag.ToText();
}

TEST_F(AnalyzerTest, SqlUpdateAssignmentTypeIsCr204) {
  DiagnosticBag bag = LintSql("UPDATE Courses SET Units = 'many'");
  ASSERT_TRUE(bag.Has(Code::kArgumentType)) << bag.ToText();
}

TEST_F(AnalyzerTest, CleanSqlHasNoDiagnostics) {
  DiagnosticBag bag = LintSql(
      "SELECT c.Title, AVG(r.Score) AS avg_score FROM Courses c JOIN "
      "Ratings r ON c.CourseID = r.CourseID WHERE c.Units >= 3 GROUP BY "
      "c.Title ORDER BY avg_score DESC LIMIT 10");
  EXPECT_TRUE(bag.empty()) << bag.ToText();
}

// ---- engine integration ----------------------------------------------

TEST_F(AnalyzerTest, EngineRejectsInvalidPlanWithDiagnosticsNotAbort) {
  auto parsed = flexrecs::ParseWorkflow(
      "a = TABLE Coursez\n"
      "RETURN a\n");
  ASSERT_TRUE(parsed.ok());
  auto compiled = engine_->Compile(**parsed);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("CR101"), std::string::npos)
      << compiled.status().message();
}

TEST_F(AnalyzerTest, EngineSqlPathRejectsBadStatement) {
  auto parsed = flexrecs::ParseWorkflow(
      "a = SQL SELECT Titel FROM Courses\n"
      "RETURN a\n");
  ASSERT_TRUE(parsed.ok());
  auto compiled = engine_->Compile(**parsed);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("CR102"), std::string::npos)
      << compiled.status().message();
}

TEST_F(AnalyzerTest, WarningsDoNotBlockExecution) {
  auto parsed = flexrecs::ParseWorkflow(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE 1 = 1\n"
      "RETURN b\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(engine_->Compile(**parsed).ok());
}

// ---- rendering --------------------------------------------------------

TEST_F(AnalyzerTest, JsonRenderingIsStable) {
  DiagnosticBag bag = Lint(
      "a = TABLE Coursez\n"
      "RETURN a\n");
  std::string json = bag.ToJson();
  EXPECT_NE(json.find("\"code\":\"CR101\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
}

TEST_F(AnalyzerTest, TextRenderingIncludesCodeAndSpan) {
  DiagnosticBag bag = Lint(
      "a = TABLE Courses\n"
      "b = SELECT a WHERE Titel = 'x'\n"
      "RETURN b\n");
  EXPECT_NE(bag.ToText().find("error CR102 at 2:1:"), std::string::npos)
      << bag.ToText();
}

}  // namespace
}  // namespace courserank::analysis
