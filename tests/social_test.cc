#include <gtest/gtest.h>

#include "social/site.h"

namespace courserank::social {
namespace {

using storage::Value;

/// Fresh hand-built site per fixture: 2 departments, 3 courses, a handful
/// of users. Small enough that every expectation is exact.
class SocialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = CourseRankSite::Create();
    ASSERT_TRUE(site.ok()) << site.status().ToString();
    site_ = std::move(*site);

    cs_ = Must(site_->AddDepartment("CS", "Computer Science", "Engineering"));
    hist_ = Must(site_->AddDepartment("HIST", "History",
                                      "Humanities and Sciences"));
    intro_ = Must(site_->AddCourse(cs_, 106, "Intro to Programming",
                                   "java programming basics", 5));
    db_ = Must(site_->AddCourse(cs_, 245, "Databases",
                                "relational systems", 4));
    amhist_ = Must(site_->AddCourse(hist_, 150, "American History",
                                    "american politics since 1900", 4));

    ASSERT_TRUE(site_->RegisterStudent(1, "Sally", "Junior", cs_).ok());
    ASSERT_TRUE(site_->RegisterStudent(2, "Bob", "Senior", cs_).ok());
    ASSERT_TRUE(site_->RegisterStudent(3, "Carol", "Freshman",
                                       std::nullopt).ok());
    ASSERT_TRUE(site_->RegisterFaculty(50, "Prof. Knuth").ok());
    ASSERT_TRUE(site_->RegisterStaff(90, "Dean Smith").ok());
  }

  template <typename T>
  T Must(Result<T> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  std::unique_ptr<CourseRankSite> site_;
  DeptId cs_ = 0;
  DeptId hist_ = 0;
  CourseId intro_ = 0;
  CourseId db_ = 0;
  CourseId amhist_ = 0;
};

// ---------------------------------------------------------------- model

TEST(GradeModelTest, BucketsRoundTrip) {
  for (size_t i = 0; i < kNumGradeBuckets; ++i) {
    EXPECT_EQ(GradeBucket(kGradePoints[i]), i) << kGradeLetters[i];
    auto points = GradePointsFor(kGradeLetters[i]);
    ASSERT_TRUE(points.ok());
    EXPECT_DOUBLE_EQ(*points, kGradePoints[i]);
  }
  EXPECT_FALSE(GradePointsFor("Z").ok());
  EXPECT_STREQ(GradeLetter(4.3), "A+");
  EXPECT_STREQ(GradeLetter(0.0), "F");
  EXPECT_STREQ(GradeLetter(3.85), "A");
}

TEST(RoleTest, ParseAndName) {
  EXPECT_EQ(*ParseRole("student"), Role::kStudent);
  EXPECT_EQ(*ParseRole("FACULTY"), Role::kFaculty);
  EXPECT_FALSE(ParseRole("wizard").ok());
}

// ---------------------------------------------------------------- auth

TEST_F(SocialTest, AuthKnowsRoles) {
  EXPECT_TRUE(site_->auth().IsMember(1));
  EXPECT_FALSE(site_->auth().IsMember(999));
  EXPECT_EQ(*site_->auth().RoleOf(1), Role::kStudent);
  EXPECT_EQ(*site_->auth().RoleOf(50), Role::kFaculty);
  EXPECT_EQ(*site_->auth().RoleOf(90), Role::kStaff);
  EXPECT_TRUE(site_->auth().Require(1, Role::kStudent).ok());
  EXPECT_EQ(site_->auth().Require(50, Role::kStudent).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(site_->auth().Require(999, Role::kStudent).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(*site_->auth().NameOf(2), "Bob");
}

TEST_F(SocialTest, DuplicateUserIdRejected) {
  EXPECT_FALSE(site_->RegisterStudent(1, "Clone", "Senior",
                                      std::nullopt).ok());
}

// ---------------------------------------------------------------- actions

TEST_F(SocialTest, OnlyStudentsRateAndComment) {
  EXPECT_EQ(site_->RateCourse(50, intro_, 5.0, 1).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(site_->AddComment(50, intro_, "nice", 1).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(site_->RateCourse(999, intro_, 5.0, 1).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(SocialTest, RatingValidatesRangeAndCourse) {
  EXPECT_TRUE(site_->RateCourse(1, intro_, 4.0, 1).ok());
  EXPECT_FALSE(site_->RateCourse(1, intro_, 0.5, 1).ok());
  EXPECT_FALSE(site_->RateCourse(1, intro_, 5.5, 1).ok());
  EXPECT_EQ(site_->RateCourse(1, 9999, 4.0, 1).code(),
            StatusCode::kNotFound);
}

TEST_F(SocialTest, RatingUpsertsPerStudentCourse) {
  ASSERT_TRUE(site_->RateCourse(1, intro_, 2.0, 1).ok());
  ASSERT_TRUE(site_->RateCourse(1, intro_, 5.0, 2).ok());
  const auto* ratings = site_->db().FindTable("Ratings");
  EXPECT_EQ(ratings->size(), 1u);
  auto rid = ratings->FindByPrimaryKey({Value(int64_t{1}), Value(intro_)});
  ASSERT_TRUE(rid.ok());
  EXPECT_DOUBLE_EQ(ratings->Get(*rid)->at(2).AsDouble(), 5.0);
}

TEST_F(SocialTest, CommentsEarnPointsUpToDailyCap) {
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        site_->AddComment(1, intro_, "comment body number " +
                          std::to_string(i), /*day=*/1).ok());
  }
  // CourseRank scheme: 3 points per comment, capped at 5 per day.
  EXPECT_EQ(*site_->incentives().PointsOf(1), 15);
  // Next day the cap resets.
  ASSERT_TRUE(site_->AddComment(1, intro_, "fresh day comment", 2).ok());
  EXPECT_EQ(*site_->incentives().PointsOf(1), 18);
}

TEST_F(SocialTest, EmptyCommentRejected) {
  EXPECT_FALSE(site_->AddComment(1, intro_, "", 1).ok());
}

TEST_F(SocialTest, CommentVotingRules) {
  CommentId c = Must(site_->AddComment(1, intro_, "useful review text", 1));
  // Self-vote denied.
  EXPECT_EQ(site_->VoteComment(1, c, true).code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(site_->VoteComment(2, c, true).ok());
  // Double vote denied by PK.
  EXPECT_EQ(site_->VoteComment(2, c, false).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(site_->VoteComment(3, c, false).ok());
  // Faculty may vote too.
  EXPECT_TRUE(site_->VoteComment(50, c, true).ok());

  auto ranked = site_->comment_ranker().RankedForCourse(intro_);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 1u);
  EXPECT_EQ((*ranked)[0].helpful, 2);
  EXPECT_EQ((*ranked)[0].unhelpful, 1);
}

TEST_F(SocialTest, CommentTrustOrdersByVotes) {
  CommentId good = Must(site_->AddComment(
      1, intro_, "a long and careful review of the assignments and exams",
      1));
  CommentId bad = Must(site_->AddComment(
      2, intro_, "another detailed writeup of lectures and problem sets",
      1));
  for (UserId voter : {2, 3, 50, 90}) {
    if (voter != 2) ASSERT_TRUE(site_->VoteComment(voter, good, true).ok());
  }
  ASSERT_TRUE(site_->VoteComment(1, bad, false).ok());
  ASSERT_TRUE(site_->VoteComment(3, bad, false).ok());

  auto ranked = site_->comment_ranker().RankedForCourse(intro_);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].id, good);
  EXPECT_GT((*ranked)[0].trust, (*ranked)[1].trust);
}

TEST_F(SocialTest, ShortCommentsPenalized) {
  CommentRanker ranker(&site_->db());
  double longer = ranker.TrustScore(2, 0, 0.5, 120);
  double shorter = ranker.TrustScore(2, 0, 0.5, 10);
  EXPECT_GT(longer, shorter);
}

TEST_F(SocialTest, ReportCourseTakenUpdatesGpa) {
  ASSERT_TRUE(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  ASSERT_TRUE(site_->ReportCourseTaken(1, db_, 2007, Quarter::kWinter,
                                       3.0).ok());
  // Unreported grade doesn't shift GPA.
  ASSERT_TRUE(site_->ReportCourseTaken(1, amhist_, 2007, Quarter::kSpring,
                                       std::nullopt).ok());
  const auto* students = site_->db().FindTable("Students");
  auto rid = students->FindByPrimaryKey({Value(int64_t{1})});
  ASSERT_TRUE(rid.ok());
  EXPECT_DOUBLE_EQ(students->Get(*rid)->at(4).AsDouble(), 3.5);
}

TEST_F(SocialTest, DuplicateEnrollmentRejected) {
  ASSERT_TRUE(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  EXPECT_EQ(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                     3.0).code(),
            StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------- forum

TEST_F(SocialTest, QaLifecycleWithPoints) {
  QuestionId q = Must(site_->AskQuestion(1, "Is Databases hard?", 1, cs_));
  AnswerId a = Must(site_->AnswerQuestion(2, q, "Manageable with 106.", 1));
  // Only the asker may accept.
  EXPECT_EQ(site_->AcceptAnswer(2, a, 1).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(site_->AcceptAnswer(1, a, 1).ok());
  // Bob earned answer (2) + best_answer (5).
  EXPECT_EQ(*site_->incentives().PointsOf(2), 7);
}

TEST_F(SocialTest, AnswerToMissingQuestionFails) {
  EXPECT_FALSE(site_->AnswerQuestion(2, 999, "?", 1).ok());
}

TEST_F(SocialTest, FaqSeedingIsStaffOnly) {
  std::vector<FaqSeed> seeds = DefaultFaqSeeds();
  EXPECT_EQ(site_->SeedFaqs(1, seeds, 1).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(site_->SeedFaqs(90, seeds, 1).ok());
  EXPECT_EQ(site_->db().FindTable("Questions")->size(), seeds.size());
  EXPECT_EQ(site_->db().FindTable("Answers")->size(), seeds.size());
}

TEST_F(SocialTest, QuestionRoutingPrefersExperts) {
  // Sally took and discussed the programming course; Bob took history.
  ASSERT_TRUE(site_->ReportCourseTaken(1, intro_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  ASSERT_TRUE(site_->AddComment(1, intro_,
                                "great java programming assignments", 1)
                  .ok());
  ASSERT_TRUE(site_->ReportCourseTaken(2, amhist_, 2007, Quarter::kAutumn,
                                       3.7).ok());
  ASSERT_TRUE(site_->AddComment(2, amhist_,
                                "american politics discussions were lively",
                                1).ok());

  ASSERT_TRUE(site_->router().Build().ok());
  auto candidates =
      site_->router().Route("which java programming class to take?", 2);
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  EXPECT_EQ((*candidates)[0].user, 1);

  auto hist_candidates =
      site_->router().Route("looking for american politics material", 2);
  ASSERT_TRUE(hist_candidates.ok());
  ASSERT_FALSE(hist_candidates->empty());
  EXPECT_EQ((*hist_candidates)[0].user, 2);
}

TEST_F(SocialTest, RoutingRequiresBuild) {
  EXPECT_EQ(site_->router().Route("anything", 3).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------- privacy

TEST_F(SocialTest, PlanSharingRespectsOptOut) {
  ASSERT_TRUE(site_->PlanCourse(1, db_, 2008, Quarter::kAutumn).ok());
  ASSERT_TRUE(site_->PlanCourse(2, db_, 2008, Quarter::kAutumn).ok());
  auto planners = site_->WhoIsPlanning(3, db_);
  ASSERT_TRUE(planners.ok());
  EXPECT_EQ(*planners, (std::vector<UserId>{1, 2}));

  // Bob opts out; Sally stays visible (the Sally-and-Bob anecdote).
  ASSERT_TRUE(site_->SetSharePlans(2, false).ok());
  planners = site_->WhoIsPlanning(3, db_);
  ASSERT_TRUE(planners.ok());
  EXPECT_EQ(*planners, (std::vector<UserId>{1}));

  // Non-members see nothing at all.
  EXPECT_EQ(site_->WhoIsPlanning(999, db_).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(SocialTest, UnplanRemovesEntry) {
  ASSERT_TRUE(site_->PlanCourse(1, db_, 2008, Quarter::kAutumn).ok());
  ASSERT_TRUE(site_->UnplanCourse(1, db_, 2008, Quarter::kAutumn).ok());
  EXPECT_FALSE(site_->UnplanCourse(1, db_, 2008, Quarter::kAutumn).ok());
  EXPECT_TRUE(site_->WhoIsPlanning(3, db_)->empty());
}

TEST_F(SocialTest, SmallCohortDistributionSuppressed) {
  // Three self-reported grades < min_cohort of 5.
  ASSERT_TRUE(site_->ReportCourseTaken(1, db_, 2007, Quarter::kAutumn,
                                       4.0).ok());
  ASSERT_TRUE(site_->ReportCourseTaken(2, db_, 2007, Quarter::kAutumn,
                                       3.0).ok());
  ASSERT_TRUE(site_->ReportCourseTaken(3, db_, 2007, Quarter::kAutumn,
                                       3.7).ok());
  EXPECT_EQ(site_->GradeDistributionFor(1, db_).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(SocialTest, EngineeringShowsOfficialDistribution) {
  // CS is in Engineering, whose official release is on.
  ASSERT_TRUE(site_->LoadOfficialGrades(db_, "A", 20).ok());
  ASSERT_TRUE(site_->LoadOfficialGrades(db_, "B", 10).ok());
  auto dist = site_->GradeDistributionFor(1, db_);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(dist->total(), 30);
  EXPECT_EQ(dist->counts[GradeBucket(4.0)], 20);
}

TEST_F(SocialTest, NonEngineeringFallsBackToSelfReported) {
  // History's official release is withheld even if loaded.
  ASSERT_TRUE(site_->LoadOfficialGrades(amhist_, "A", 50).ok());
  for (UserId s : {1, 2, 3}) {
    ASSERT_TRUE(site_->ReportCourseTaken(s, amhist_, 2007, Quarter::kAutumn,
                                         3.0).ok());
  }
  // 3 self-reported < cohort 5 -> suppressed despite 50 official grades.
  EXPECT_EQ(site_->GradeDistributionFor(1, amhist_).status().code(),
            StatusCode::kPermissionDenied);

  PrivacyGuard relaxed(&site_->db(), PrivacyPolicy{.min_cohort = 2});
  auto dist = relaxed.VisibleDistribution(amhist_);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->total(), 3);  // self-reported, not the official 50
}

// ---------------------------------------------------------------- grades

TEST_F(SocialTest, DistributionMathAndTotalVariation) {
  GradeDistribution a;
  a.counts[0] = 10;  // A+
  a.counts[11] = 10; // F
  GradeDistribution b;
  b.counts[0] = 20;
  EXPECT_DOUBLE_EQ(TotalVariation(a, a), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation(a, b), 0.5);
  GradeDistribution empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(a.Fraction(0), 0.5);
  EXPECT_NE(a.ToString().find("A+:10"), std::string::npos);
}

TEST_F(SocialTest, FacultyUpdatesDescription) {
  EXPECT_EQ(site_->UpdateCourseDescription(1, intro_, "hax").code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(site_->UpdateCourseDescription(
                      50, intro_, "programming methodology and abstraction")
                  .ok());
  const auto* courses = site_->db().FindTable("Courses");
  auto rid = courses->FindByPrimaryKey({Value(intro_)});
  EXPECT_NE(courses->Get(*rid)->at(4).AsString().find("methodology"),
            std::string::npos);
}

TEST_F(SocialTest, TextbookReportsAreStudentVolunteered) {
  EXPECT_EQ(site_->ReportTextbook(50, intro_, "TAOCP", 1).status().code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(site_->ReportTextbook(1, intro_, "The Art of Java", 1).ok());
  EXPECT_EQ(site_->db().FindTable("Textbooks")->size(), 1u);
}

TEST_F(SocialTest, IncentiveCountTodayTracksPerDay) {
  ASSERT_TRUE(site_->AddComment(1, intro_, "first comment of the day", 3)
                  .ok());
  ASSERT_TRUE(site_->AddComment(1, intro_, "second comment of the day", 3)
                  .ok());
  EXPECT_EQ(*site_->incentives().CountToday(1, "comment", 3), 2);
  EXPECT_EQ(*site_->incentives().CountToday(1, "comment", 4), 0);
  EXPECT_EQ(*site_->incentives().CountToday(2, "comment", 3), 0);
}

TEST_F(SocialTest, UncappedActionKeepsEarning) {
  IncentiveScheme yahoo = IncentiveScheme::YahooAnswers();
  IncentiveEngine engine(&site_->db(), yahoo);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(engine.Record(1, "best_answer", 1).ok());
  }
  EXPECT_EQ(*engine.PointsOf(1), 120);  // no cap on best answers
  // But login caps at once per day.
  EXPECT_EQ(*engine.Record(1, "login", 1), 1);
  EXPECT_EQ(*engine.Record(1, "login", 1), 0);
  EXPECT_EQ(*engine.Record(1, "login", 2), 1);
}

TEST_F(SocialTest, UnknownIncentiveActionEarnsNothing) {
  EXPECT_EQ(*site_->incentives().Record(1, "poke_friend", 1), 0);
  EXPECT_EQ(*site_->incentives().PointsOf(1), 0);
}

TEST_F(SocialTest, RouterTruncatesToK) {
  for (UserId s : {1, 2, 3}) {
    ASSERT_TRUE(site_->ReportCourseTaken(s, intro_, 2007, Quarter::kAutumn,
                                         3.0).ok());
  }
  ASSERT_TRUE(site_->router().Build().ok());
  auto candidates = site_->router().Route("intro programming advice?", 2);
  ASSERT_TRUE(candidates.ok());
  EXPECT_LE(candidates->size(), 2u);
}

TEST_F(SocialTest, IncentiveLeaderboard) {
  ASSERT_TRUE(site_->AddComment(1, intro_, "long enough comment one", 1).ok());
  ASSERT_TRUE(site_->AddComment(1, intro_, "long enough comment two", 1).ok());
  ASSERT_TRUE(site_->RateCourse(2, intro_, 4.0, 1).ok());
  auto board = site_->incentives().Leaderboard(10);
  ASSERT_TRUE(board.ok());
  ASSERT_EQ(board->size(), 2u);
  EXPECT_EQ((*board)[0].first, 1);
  EXPECT_EQ((*board)[0].second, 6);
  EXPECT_EQ((*board)[1].second, 1);
}

TEST_F(SocialTest, YahooSchemeShapeMatchesPaper) {
  IncentiveScheme yahoo = IncentiveScheme::YahooAnswers();
  EXPECT_EQ(yahoo.rules.at("best_answer").points, 10);
  EXPECT_EQ(yahoo.rules.at("login").points, 1);
  EXPECT_EQ(yahoo.rules.at("login").daily_cap, 1);
  EXPECT_EQ(yahoo.rules.at("vote_best").points, 1);
}

TEST_F(SocialTest, SearchIndexRefreshOnComment) {
  ASSERT_TRUE(site_->BuildSearchIndex().ok());
  auto searcher = site_->MakeSearcher();
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ(searcher->Search("recursion")->size(), 0u);
  ASSERT_TRUE(site_->AddComment(1, intro_,
                                "the recursion unit was mind bending", 1)
                  .ok());
  EXPECT_EQ(searcher->Search("recursion")->size(), 1u);
}

TEST_F(SocialTest, StatsCountContributions) {
  ASSERT_TRUE(site_->RateCourse(1, intro_, 4.0, 1).ok());
  ASSERT_TRUE(site_->AddComment(2, db_, "solid course overall", 1).ok());
  auto stats = site_->GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->departments, 2u);
  EXPECT_EQ(stats->courses, 3u);
  EXPECT_EQ(stats->students, 3u);
  EXPECT_EQ(stats->faculty, 1u);
  EXPECT_EQ(stats->staff, 1u);
  EXPECT_EQ(stats->ratings, 1u);
  EXPECT_EQ(stats->comments, 1u);
  EXPECT_EQ(stats->active_students, 2u);  // Sally and Bob contributed
}

// ------------------------------------------------ course descriptor (Fig. 1)

TEST_F(SocialTest, CourseDescriptorAggregatesEverything) {
  ASSERT_TRUE(site_->AddPrereq(db_, intro_).ok());
  TimeSlot slot{static_cast<uint8_t>(kMon | kWed), 600, 650};
  ASSERT_TRUE(site_->AddOffering(db_, 2007, Quarter::kAutumn, "Prof. Widom",
                                 slot).ok());
  ASSERT_TRUE(site_->AddOffering(db_, 2008, Quarter::kAutumn, "Prof. Widom",
                                 slot).ok());
  ASSERT_TRUE(site_->RateCourse(1, db_, 5.0, 1).ok());
  ASSERT_TRUE(site_->RateCourse(2, db_, 4.0, 1).ok());
  ASSERT_TRUE(site_->AddComment(1, db_, "query optimization was the best "
                                        "unit of the whole year", 1).ok());
  ASSERT_TRUE(site_->ReportTextbook(1, db_, "Database Systems: The "
                                            "Complete Book", 1).ok());
  ASSERT_TRUE(site_->PlanCourse(3, db_, 2008, Quarter::kAutumn).ok());
  ASSERT_TRUE(site_->LoadOfficialGrades(db_, "A", 12).ok());
  ASSERT_TRUE(site_->LoadOfficialGrades(db_, "B", 6).ok());

  auto page = site_->GetCourseDescriptor(2, db_);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->dept_code, "CS");
  EXPECT_EQ(page->number, 245);
  EXPECT_EQ(page->title, "Databases");
  EXPECT_EQ(page->units, 4);
  EXPECT_EQ(page->instructors, std::vector<std::string>{"Prof. Widom"});
  EXPECT_EQ(page->num_ratings, 2u);
  EXPECT_DOUBLE_EQ(*page->avg_rating, 4.5);
  ASSERT_EQ(page->comments.size(), 1u);
  ASSERT_TRUE(page->grades.ok());  // CS is Engineering: official released
  EXPECT_EQ(page->grades->total(), 18);
  EXPECT_EQ(page->textbooks.size(), 1u);
  EXPECT_EQ(page->planners, std::vector<UserId>{3});
  EXPECT_EQ(page->prerequisites, std::vector<CourseId>{intro_});

  std::string text = page->ToString();
  EXPECT_NE(text.find("CS 245: Databases"), std::string::npos);
  EXPECT_NE(text.find("4.5/5 from 2 ratings"), std::string::npos);
  EXPECT_NE(text.find("Prof. Widom"), std::string::npos);
}

TEST_F(SocialTest, CourseDescriptorCarriesSuppressionReason) {
  // One self-reported grade in a non-Engineering course: suppressed, but
  // the page still renders with the reason instead of the distribution.
  ASSERT_TRUE(site_->ReportCourseTaken(1, amhist_, 2007, Quarter::kAutumn,
                                       3.7).ok());
  auto page = site_->GetCourseDescriptor(1, amhist_);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_FALSE(page->grades.ok());
  EXPECT_EQ(page->grades.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(page->ToString().find("suppressed"), std::string::npos);
}

TEST_F(SocialTest, CourseDescriptorRequiresMembership) {
  EXPECT_EQ(site_->GetCourseDescriptor(999, db_).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(site_->GetCourseDescriptor(1, 424242).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SocialTest, ReferentialIntegrityHolds) {
  ASSERT_TRUE(site_->RateCourse(1, intro_, 4.0, 1).ok());
  ASSERT_TRUE(site_->AddComment(1, intro_, "decent intro material", 1).ok());
  EXPECT_TRUE(site_->db().CheckIntegrity().ok());
}

}  // namespace
}  // namespace courserank::social
