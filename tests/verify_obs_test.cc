/// End-to-end observability fixture (the `verify-obs` CTest label): drives a
/// real query workload through CachingSearcher + CachingCloudBuilder and
/// asserts the metrics layer observed it — non-zero latency samples,
/// cache-counter conservation, a trace with the documented stage names, and
/// one Prometheus dump covering search, cloud, cache, and pool metrics.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/data_cloud.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/entity.h"
#include "search/inverted_index.h"
#include "search/query_cache.h"
#include "search/searcher.h"
#include "storage/database.h"

namespace courserank::search {
namespace {

using cloud::CachingCloudBuilder;
using cloud::DataCloud;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class VerifyObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Trace every root span so a single query deterministically produces a
    // full stage breakdown regardless of the sampling period env default.
    obs::TraceSink::Default().set_period(1);
    obs::TraceSink::Default().Clear();
    obs::ScopedSpan::ResetSamplingForTest();

    auto courses = db_.CreateTable(
        "Courses",
        Schema({{"CourseID", ValueType::kInt, false},
                {"Title", ValueType::kString, false},
                {"Description", ValueType::kString, true}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());
    AddCourse(1, "American History",
              "Surveys american politics and culture since 1900.");
    AddCourse(2, "Latin American Literature",
              "Novels and poetry from latin american writers.");
    AddCourse(3, "Databases", "Relational model, SQL, and transactions.");
    AddCourse(4, "Greek Science",
              "History of science covering the famous greek scientists.");
    AddCourse(5, "African American Studies",
              "African american politics, music, and migration.");

    def_.name = "course";
    def_.primary_table = "Courses";
    def_.key_column = "CourseID";
    def_.display_column = "Title";
    def_.fields = {
        {"title", 3.0, "Courses", "Title", "CourseID"},
        {"description", 1.5, "Courses", "Description", "CourseID"},
    };
    index_ = std::make_unique<InvertedIndex>(def_);
    ASSERT_TRUE(index_->Build(db_).ok());
  }

  void AddCourse(int id, const std::string& title, const std::string& desc) {
    ASSERT_TRUE(db_.FindTable("Courses")
                    ->Insert({Value(id), Value(title), Value(desc)})
                    .ok());
  }

  storage::Database db_;
  EntityDefinition def_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(VerifyObsTest, QueryWorkloadProducesTraceMetricsAndCounters) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Histogram* query_ns = reg.GetHistogram("cr_search_cached_query_ns");
  obs::Histogram* cloud_ns = reg.GetHistogram("cr_cloud_cached_build_ns");
  uint64_t query_samples_before = query_ns->count();
  uint64_t cloud_samples_before = cloud_ns->count();

  CachingSearcher searcher(index_.get());
  CachingCloudBuilder clouds(index_.get());

  // Cold query + warm repeat + refinement + a second distinct query.
  auto first = searcher.Search("american");
  ASSERT_TRUE(first.ok());
  auto repeat = searcher.Search("american");
  ASSERT_TRUE(repeat.ok());
  auto refined = searcher.Refine(**first, "politics");
  ASSERT_TRUE(refined.ok());
  auto other = searcher.Search("greek science");
  ASSERT_TRUE(other.ok());

  std::shared_ptr<const DataCloud> cloud_a = clouds.Build(**first);
  std::shared_ptr<const DataCloud> cloud_b = clouds.Build(**repeat);
  ASSERT_NE(cloud_a, nullptr);
  EXPECT_EQ(cloud_a.get(), cloud_b.get());  // second build served from cache

  // (1) Latency histograms gained non-zero samples from this workload.
  EXPECT_GT(query_ns->count(), query_samples_before);
  EXPECT_GT(query_ns->sum(), 0u);
  EXPECT_GT(cloud_ns->count(), cloud_samples_before);
  EXPECT_GT(cloud_ns->sum(), 0u);

  // (2) Cache counter conservation: every probe is either a hit or a miss.
  // The searcher probed once per Search (3×) and once for the refinement.
  EXPECT_EQ(searcher.cache_hits() + searcher.cache_misses(), 4u);
  EXPECT_EQ(searcher.cache_hits(), 1u);
  EXPECT_EQ(clouds.cache_hits() + clouds.cache_misses(), 2u);
  EXPECT_EQ(clouds.cache_hits(), 1u);
  // The shared registry aggregates at least this instance's traffic.
  EXPECT_GE(reg.GetCounter("cr_search_result_cache_hits_total")->value(),
            searcher.cache_hits());
  EXPECT_GE(reg.GetCounter("cr_search_result_cache_misses_total")->value(),
            searcher.cache_misses());
  EXPECT_GE(reg.GetCounter("cr_cloud_cache_hits_total")->value(),
            clouds.cache_hits());

  // (3) The trace contains the documented stage breakdown: at least four
  // distinct named stages from the query path.
  std::set<std::string> stages;
  for (const obs::TraceEvent& ev : obs::TraceSink::Default().Snapshot()) {
    stages.insert(ev.stage);
  }
  EXPECT_GE(stages.size(), 4u);
  EXPECT_TRUE(stages.count(obs::stage::kCachedQuery));
  EXPECT_TRUE(stages.count(obs::stage::kCacheProbe));
  EXPECT_TRUE(stages.count(obs::stage::kQuery));
  EXPECT_TRUE(stages.count(obs::stage::kCloudBuild));

  // (4) One Prometheus dump exposes search, cloud, cache, and pool metrics.
  std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("cr_search_cached_query_ns_count"), std::string::npos);
  EXPECT_NE(prom.find("cr_search_postings_advanced_total"), std::string::npos);
  EXPECT_NE(prom.find("cr_search_result_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("cr_cloud_cached_build_ns_count"), std::string::npos);
  EXPECT_NE(prom.find("cr_cloud_cache_misses_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cr_pool_queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("cr_storage_rows_scanned_total"), std::string::npos);

  // And the JSON rendering of the same snapshot is well-formed enough to
  // embed in bench output.
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"cr_search_cached_query_ns\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(VerifyObsTest, EvictionAndStaleDropCountersAreExported) {
  CachingSearcher small(index_.get(), {}, /*capacity=*/2);
  ASSERT_TRUE(small.Search("american").ok());
  ASSERT_TRUE(small.Search("greek").ok());
  ASSERT_TRUE(small.Search("sql").ok());  // evicts the LRU entry
  EXPECT_EQ(small.cache_evictions(), 1u);

  CachingSearcher stale(index_.get());
  ASSERT_TRUE(stale.Search("american").ok());
  ASSERT_TRUE(index_->RemoveByKey(Value(5)).ok());  // bumps the epoch
  ASSERT_TRUE(stale.Search("american").ok());       // stale entry dropped
  EXPECT_EQ(stale.cache_stale_drops(), 1u);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  EXPECT_GE(reg.GetCounter("cr_search_result_cache_evictions_total")->value(),
            1u);
  EXPECT_GE(reg.GetCounter("cr_search_result_cache_stale_drops_total")->value(),
            1u);
}

}  // namespace
}  // namespace courserank::search
