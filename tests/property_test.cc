// Property-style tests: randomized inputs checked against independent
// oracles or algebraic invariants. All randomness is seeded — failures
// reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "analysis/analyzer.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/similarity.h"
#include "core/workflow_parser.h"
#include "gen/generator.h"
#include "planner/requirements.h"
#include "query/plan.h"
#include "query/sql_parser.h"
#include "search/inverted_index.h"
#include "search/searcher.h"
#include "social/site.h"
#include "storage/database.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

namespace courserank {
namespace {

using storage::Schema;
using storage::Value;
using storage::ValueType;

// ------------------------------------------------------------- LikeMatch

/// Exponential-time but obviously-correct LIKE oracle.
bool LikeOracle(std::string_view text, std::string_view pattern) {
  if (pattern.empty()) return text.empty();
  char p = pattern[0];
  if (p == '%') {
    for (size_t i = 0; i <= text.size(); ++i) {
      if (LikeOracle(text.substr(i), pattern.substr(1))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (p == '_' || std::tolower(static_cast<unsigned char>(p)) ==
                      std::tolower(static_cast<unsigned char>(text[0]))) {
    return LikeOracle(text.substr(1), pattern.substr(1));
  }
  return false;
}

class LikePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikePropertyTest, AgreesWithOracle) {
  Rng rng(GetParam());
  const char kChars[] = "ab%_";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    for (size_t i = rng.NextBounded(7); i > 0; --i) {
      text += static_cast<char>('a' + rng.NextBounded(2));
    }
    std::string pattern;
    for (size_t i = rng.NextBounded(6); i > 0; --i) {
      pattern += kChars[rng.NextBounded(4)];
    }
    EXPECT_EQ(LikeMatch(text, pattern), LikeOracle(text, pattern))
        << "'" << text << "' LIKE '" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikePropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------- stemmer

TEST(StemmerProperty, NeverGrowsAndStaysLowerAlpha) {
  Rng rng(99);
  const std::string kSuffixes[] = {"ing",  "ed",    "s",     "es",
                                   "ation", "ness", "ously", "izer",
                                   "ful",  "ment",  "ity",   "al"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string word;
    for (size_t i = 3 + rng.NextBounded(6); i > 0; --i) {
      word += static_cast<char>('a' + rng.NextBounded(26));
    }
    word += kSuffixes[rng.NextBounded(12)];
    std::string stem = text::PorterStem(word);
    EXPECT_LE(stem.size(), word.size()) << word;
    EXPECT_GE(stem.size(), 1u) << word;
    for (char c : stem) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word << " -> " << stem;
    }
    // Stems are prefixes of the word except for tail rewrites; at least the
    // first two characters always survive.
    EXPECT_EQ(stem.substr(0, 2), word.substr(0, 2)) << word;
  }
}

// ------------------------------------------------------------- sort oracle

TEST(SortOperatorProperty, MatchesStdStableSort) {
  Rng rng(7);
  storage::Database db;
  auto table = db.CreateTable("t", Schema({{"k", ValueType::kInt, true},
                                           {"v", ValueType::kInt, false}}),
                              {});
  ASSERT_TRUE(table.ok());
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int i = 0; i < 300; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(20));
    rows.push_back({k, i});
    ASSERT_TRUE((*table)->Insert({Value(k), Value(int64_t{i})}).ok());
  }
  std::vector<query::SortKey> keys;
  auto expr = query::ParseExpression("k");
  ASSERT_TRUE(expr.ok());
  keys.push_back({std::move(*expr), true});
  auto plan = query::MakeSort(query::MakeTableScan("t"), std::move(keys));
  auto rel = query::Run(*plan, db);
  ASSERT_TRUE(rel.ok());

  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  ASSERT_EQ(rel->rows.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rel->rows[i][0].AsInt(), rows[i].first);
    EXPECT_EQ(rel->rows[i][1].AsInt(), rows[i].second);  // stability
  }
}

// ----------------------------------------------- index add/remove inverse

TEST(IndexProperty, RemoveRestoresDocFrequencies) {
  Rng rng(17);
  storage::Database db;
  auto courses = db.CreateTable(
      "Courses", Schema({{"CourseID", ValueType::kInt, false},
                         {"Title", ValueType::kString, false},
                         {"Description", ValueType::kString, true}}),
      {"CourseID"});
  ASSERT_TRUE(courses.ok());
  const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int i = 1; i <= 40; ++i) {
    std::string title;
    for (int w = 0; w < 3; ++w) {
      title += std::string(kWords[rng.NextBounded(5)]) + " ";
    }
    ASSERT_TRUE(
        (*courses)->Insert({Value(i), Value(title), Value("")}).ok());
  }
  search::EntityDefinition def;
  def.name = "course";
  def.primary_table = "Courses";
  def.key_column = "CourseID";
  def.display_column = "Title";
  def.fields = {{"title", 1.0, "Courses", "Title", "CourseID", ""}};

  search::InvertedIndex index(def);
  ASSERT_TRUE(index.Build(db).ok());

  auto df_snapshot = [&]() {
    std::map<std::string, size_t> out;
    for (const char* w : kWords) {
      search::TermId t = index.LookupTerm(text::PorterStem(w));
      out[w] = t == search::kNoTerm ? 0 : index.DocFrequency(t);
    }
    return out;
  };
  auto before = df_snapshot();

  // Remove 15 random docs, re-add them, expect identical statistics.
  std::vector<int> doomed;
  for (int i = 0; i < 15; ++i) {
    doomed.push_back(1 + static_cast<int>(rng.NextBounded(40)));
  }
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  search::EntityExtractor extractor(&db, def);
  for (int id : doomed) {
    ASSERT_TRUE(index.RemoveByKey(Value(id)).ok());
  }
  for (int id : doomed) {
    auto doc = extractor.ExtractOne(Value(id));
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(index.AddDocument(std::move(*doc)).ok());
  }
  EXPECT_EQ(df_snapshot(), before);
  EXPECT_EQ(index.num_docs(), 40u);
}

// ------------------------------------------------ refine == requery

TEST(RefineProperty, RefineEqualsConjunctiveRequery) {
  storage::Database db;
  auto courses = db.CreateTable(
      "Courses", Schema({{"CourseID", ValueType::kInt, false},
                         {"Title", ValueType::kString, false},
                         {"Description", ValueType::kString, true}}),
      {"CourseID"});
  ASSERT_TRUE(courses.ok());
  Rng rng(23);
  const char* kWords[] = {"history", "politics", "science",  "culture",
                          "music",   "writing",  "networks", "markets"};
  for (int i = 1; i <= 120; ++i) {
    std::string text;
    for (int w = 0; w < 5; ++w) {
      text += std::string(kWords[rng.NextBounded(8)]) + " ";
    }
    ASSERT_TRUE((*courses)->Insert({Value(i), Value(text), Value("")}).ok());
  }
  search::EntityDefinition def;
  def.name = "course";
  def.primary_table = "Courses";
  def.key_column = "CourseID";
  def.display_column = "Title";
  def.fields = {{"title", 1.0, "Courses", "Title", "CourseID", ""}};
  search::InvertedIndex index(def);
  ASSERT_TRUE(index.Build(db).ok());
  search::Searcher searcher(&index);

  for (const char* base : kWords) {
    auto results = searcher.Search(base);
    ASSERT_TRUE(results.ok());
    for (const char* refine : kWords) {
      if (std::string(base) == refine) continue;
      auto refined = searcher.Refine(*results, refine);
      ASSERT_TRUE(refined.ok());
      auto direct = searcher.SearchTerms(refined->terms);
      ASSERT_TRUE(direct.ok());
      ASSERT_EQ(refined->size(), direct->size()) << base << "+" << refine;
      for (size_t i = 0; i < refined->hits.size(); ++i) {
        EXPECT_EQ(refined->hits[i].doc, direct->hits[i].doc);
        EXPECT_NEAR(refined->hits[i].score, direct->hits[i].score, 1e-9);
      }
    }
  }
}

// ---------------------------------------------- matching dominates greedy

TEST(RequirementProperty, MatchingNeverWorseThanGreedy) {
  // Random overlapping requirement structures over a tiny catalog: on every
  // instance, maximum matching must satisfy the tree whenever greedy does.
  auto site = social::CourseRankSite::Create();
  ASSERT_TRUE(site.ok());
  auto dept = (*site)->AddDepartment("X", "Xology", "Engineering");
  ASSERT_TRUE(dept.ok());
  std::vector<int64_t> catalog;
  for (int i = 0; i < 8; ++i) {
    auto c = (*site)->AddCourse(*dept, 100 + i, "X " + std::to_string(i), "",
                                3);
    ASSERT_TRUE(c.ok());
    catalog.push_back(*c);
  }
  planner::RequirementTracker tracker(&(*site)->db());
  Rng rng(31);

  for (int trial = 0; trial < 200; ++trial) {
    // Random tree: 2-3 NOfSet leaves with random sets.
    std::vector<planner::ReqPtr> kids;
    size_t num_leaves = 2 + rng.NextBounded(2);
    for (size_t l = 0; l < num_leaves; ++l) {
      std::vector<int64_t> set;
      for (int64_t c : catalog) {
        if (rng.NextBool(0.5)) set.push_back(c);
      }
      if (set.empty()) set.push_back(catalog[0]);
      size_t need = 1 + rng.NextBounded(std::min<size_t>(2, set.size()));
      kids.push_back(planner::RequirementNode::NOfSet(
          "leaf" + std::to_string(l), need, std::move(set)));
    }
    auto root = planner::RequirementNode::AllOf("random", std::move(kids));

    std::vector<int64_t> taken;
    for (int64_t c : catalog) {
      if (rng.NextBool(0.6)) taken.push_back(c);
    }

    auto matched = tracker.Check(*root, taken,
                                 planner::MatchStrategy::kMaximumMatching);
    auto greedy =
        tracker.Check(*root, taken, planner::MatchStrategy::kGreedy);
    ASSERT_TRUE(matched.ok());
    ASSERT_TRUE(greedy.ok());
    // Dominance: greedy satisfied => matching satisfied.
    if (greedy->satisfied) {
      EXPECT_TRUE(matched->satisfied) << "trial " << trial;
    }
    // Matching also never assigns fewer total courses.
    size_t matched_used = 0;
    size_t greedy_used = 0;
    for (const auto& leaf : matched->leaves) matched_used += leaf.used.size();
    for (const auto& leaf : greedy->leaves) greedy_used += leaf.used.size();
    EXPECT_GE(matched_used, greedy_used) << "trial " << trial;
  }
}

// ---------------------------------------------- expression round-trips

TEST(ExprProperty, RandomExpressionsRoundTripThroughToString) {
  Rng rng(41);
  Schema schema({{"a", ValueType::kInt, true},
                 {"b", ValueType::kDouble, true},
                 {"s", ValueType::kString, true}});
  storage::Row row{Value(5), Value(2.5), Value("xy")};

  // Random expression generator over a safe grammar (no division: avoids
  // synthesized div-by-zero errors that would end evaluation early).
  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    if (depth <= 0 || rng.NextBool(0.3)) {
      switch (rng.NextBounded(4)) {
        case 0:
          return "a";
        case 1:
          return "b";
        case 2:
          return std::to_string(rng.NextBounded(9));
        default:
          return "s";
      }
    }
    switch (rng.NextBounded(5)) {
      case 0:
        return "(" + gen(depth - 1) + " + " + gen(depth - 1) + ")";
      case 1:
        return "(" + gen(depth - 1) + " * " + gen(depth - 1) + ")";
      case 2:
        return "(" + gen(depth - 1) + " = " + gen(depth - 1) + ")";
      case 3:
        return "(" + gen(depth - 1) + " < " + gen(depth - 1) + ")";
      default:
        return "COALESCE(" + gen(depth - 1) + ", " + gen(depth - 1) + ")";
    }
  };

  int evaluated = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = gen(3);
    auto e1 = query::ParseExpression(text);
    ASSERT_TRUE(e1.ok()) << text;
    std::string rendered = (*e1)->ToString();
    auto e2 = query::ParseExpression(rendered);
    ASSERT_TRUE(e2.ok()) << rendered;
    ASSERT_TRUE((*e1)->Bind(schema, nullptr).ok()) << text;
    ASSERT_TRUE((*e2)->Bind(schema, nullptr).ok()) << rendered;
    auto v1 = (*e1)->Eval(row);
    auto v2 = (*e2)->Eval(row);
    ASSERT_EQ(v1.ok(), v2.ok()) << text;
    if (v1.ok()) {
      EXPECT_EQ(*v1, *v2) << text << " vs " << rendered;
      ++evaluated;
    }
  }
  EXPECT_GT(evaluated, 100);  // most random expressions evaluate cleanly
}

// ---------------------------------------------- similarity triangle-ish

TEST(SimilarityProperty, JaccardSelfIsOneAndBounded) {
  Rng rng(53);
  for (int trial = 0; trial < 200; ++trial) {
    Value::List items;
    size_t n = 1 + rng.NextBounded(10);
    for (size_t i = 0; i < n; ++i) {
      items.push_back(Value(static_cast<int64_t>(rng.NextBounded(12))));
    }
    Value set(std::move(items));
    auto self = flexrecs::JaccardSets(set, set);
    ASSERT_TRUE(self.ok());
    EXPECT_DOUBLE_EQ(**self, 1.0);
  }
}

// ------------------------------------------- analyzer soundness

/// Emits random workflow DSL over the canonical schema. Roughly half the
/// outputs contain a seeded mistake (bogus column/table/similarity, type
/// confusion) so the corpus exercises both accept and reject paths.
class RandomWorkflowGen {
 public:
  explicit RandomWorkflowGen(Rng* rng) : rng_(*rng) {}

  std::string Next() {
    std::string dsl;
    dsl += "base = TABLE " + TableName() + "\n";
    std::string cur = "base";
    size_t ops = 1 + rng_.NextBounded(3);
    for (size_t i = 0; i < ops; ++i) {
      switch (rng_.NextBounded(4)) {
        case 0:
          dsl += "s" + std::to_string(i) + " = SELECT " + cur + " WHERE " +
                 Predicate() + "\n";
          cur = "s" + std::to_string(i);
          break;
        case 1: {
          dsl += "e" + std::to_string(i) + " = EXTEND " + cur +
                 " WITH base ON " + ColumnName() + " = " + ColumnName() +
                 " COLLECT " + ColumnName() + " AS bag" +
                 std::to_string(i) + "\n";
          cur = "e" + std::to_string(i);
          break;
        }
        case 2: {
          dsl += "r" + std::to_string(i) + " = RECOMMEND " + cur +
                 " AGAINST base USING " + Similarity() + "(" +
                 ColumnName() + ", " + ColumnName() +
                 ") AGG max SCORE sc" + std::to_string(i) + " TOP 5\n";
          cur = "r" + std::to_string(i);
          break;
        }
        default:
          dsl += "t" + std::to_string(i) + " = TOPK " + cur + " BY " +
                 ColumnName() + " DESC LIMIT 5\n";
          cur = "t" + std::to_string(i);
          break;
      }
    }
    dsl += "RETURN " + cur + "\n";
    return dsl;
  }

 private:
  /// One-in-ten draws are deliberately wrong (bogus name, set similarity
  /// over a scalar) so the rejected path stays covered.
  bool Sabotage() { return rng_.NextBounded(10) == 0; }

  std::string TableName() {
    if (Sabotage()) return "Studentz";
    static const char* kTables[] = {"Students", "Courses", "Ratings",
                                    "Offerings"};
    table_ = rng_.NextBounded(4);
    return kTables[table_];
  }
  std::string ColumnName() {
    if (Sabotage()) return "Bogus";
    // Columns of the base table chosen by TableName(), same order.
    static const std::vector<const char*> kColumns[] = {
        {"SuID", "Name", "Class", "GPA"},
        {"CourseID", "Title", "Number", "Units"},
        {"SuID", "CourseID", "Score", "Day"},
        {"OfferingID", "CourseID", "Year", "Term"}};
    const auto& cols = kColumns[table_];
    return cols[rng_.NextBounded(cols.size())];
  }
  std::string Similarity() {
    if (Sabotage()) return "frobnitz";
    static const char* kSims[] = {"exact", "numeric_proximity",
                                  "token_jaccard"};
    return kSims[rng_.NextBounded(3)];
  }
  std::string Predicate() {
    static const char* kOps[] = {"=", "<>", "<", ">="};
    std::string lhs = ColumnName();
    std::string rhs;
    switch (rng_.NextBounded(3)) {
      case 0:
        rhs = std::to_string(rng_.NextBounded(100));
        break;
      case 1:
        rhs = "'x" + std::to_string(rng_.NextBounded(10)) + "'";
        break;
      default:
        rhs = ColumnName();
        break;
    }
    return lhs + " " + kOps[rng_.NextBounded(4)] + " " + rhs;
  }
  Rng& rng_;
  size_t table_ = 0;  ///< index of the last base table drawn
};

class AnalyzerSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

/// Analyzer soundness over random workflows: any plan the analyzer accepts
/// (zero error diagnostics) must execute through the FlexRecs engine
/// without runtime type or schema failures.
TEST_P(AnalyzerSoundnessTest, AcceptedWorkflowsExecuteCleanly) {
  auto site = gen::Generator(gen::GenConfig::Tiny(GetParam())).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  auto& engine = (*site)->flexrecs();
  analysis::Analyzer analyzer(&(*site)->db(), &engine.library());

  Rng rng(GetParam() * 7919 + 17);
  RandomWorkflowGen gen(&rng);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::string dsl = gen.Next();
    analysis::DiagnosticBag bag = analyzer.LintDsl(dsl);
    if (bag.has_errors()) {
      ++rejected;
      // The engine must agree: compilation reports the problem as a
      // Status, never an abort.
      auto parsed = flexrecs::ParseWorkflow(dsl);
      if (parsed.ok()) {
        EXPECT_FALSE(engine.Compile(**parsed).ok()) << dsl;
      }
      continue;
    }
    ++accepted;
    auto parsed = flexrecs::ParseWorkflow(dsl);
    ASSERT_TRUE(parsed.ok()) << dsl;
    auto result = engine.Run(**parsed);
    EXPECT_TRUE(result.ok()) << dsl << "\n" << result.status().ToString();
  }
  // The corpus must exercise both paths to mean anything.
  EXPECT_GT(accepted, 10) << "corpus skewed: " << accepted << " accepted";
  EXPECT_GT(rejected, 10) << "corpus skewed: " << rejected << " rejected";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerSoundnessTest,
                         ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace courserank
