#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gen/generator.h"
#include "storage/snapshot.h"

namespace courserank::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "courserank_snapshot_tests" /
                 name;
  fs::remove_all(dir);
  return dir.string();
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parent = db_.CreateTable(
        "parent", Schema({{"id", ValueType::kInt, false},
                          {"name", ValueType::kString, false}}),
        {"id"});
    ASSERT_TRUE(parent.ok());
    ASSERT_TRUE((*parent)->CreateHashIndex("by_name", {"name"}, false).ok());
    ASSERT_TRUE((*parent)->CreateOrderedIndex("by_id_ordered", "id").ok());
    auto child = db_.CreateTable(
        "child", Schema({{"id", ValueType::kInt, false},
                         {"parent_id", ValueType::kInt, true},
                         {"weight", ValueType::kDouble, true},
                         {"flag", ValueType::kBool, true}}),
        {"id"});
    ASSERT_TRUE(child.ok());
    ASSERT_TRUE(db_.AddForeignKey("child", "parent_id", "parent", "id").ok());

    ASSERT_TRUE(db_.Insert("parent", {Value(1), Value("alpha, with comma")})
                    .ok());
    ASSERT_TRUE(db_.Insert("parent", {Value(2), Value("beta \"quoted\"")})
                    .ok());
    ASSERT_TRUE(
        db_.Insert("child", {Value(10), Value(1), Value(2.5), Value(true)})
            .ok());
    ASSERT_TRUE(
        db_.Insert("child", {Value(11), Value(), Value(), Value(false)})
            .ok());
  }

  Database db_;
};

TEST_F(SnapshotTest, RoundTripPreservesRowsAndConstraints) {
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveDatabase(db_, dir).ok());

  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database& db2 = **loaded;

  auto parent = db2.GetTable("parent");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ((*parent)->size(), 2u);
  auto child = db2.GetTable("child");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ((*child)->size(), 2u);

  // PK survives.
  auto rid = (*parent)->FindByPrimaryKey({Value(1)});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ((*parent)->Get(*rid)->at(1).AsString(), "alpha, with comma");
  // NULLs survive.
  auto crow = (*child)->FindByPrimaryKey({Value(11)});
  ASSERT_TRUE(crow.ok());
  EXPECT_TRUE((*child)->Get(*crow)->at(1).is_null());
  EXPECT_FALSE((*child)->Get(*crow)->at(3).AsBool());
  // Secondary indexes survive.
  EXPECT_NE((*parent)->FindHashIndex({"name"}), nullptr);
  EXPECT_NE((*parent)->FindOrderedIndex("id"), nullptr);
  // FK survives and is enforced.
  EXPECT_FALSE(db2.Insert("child", {Value(12), Value(99), Value(), Value()})
                   .ok());
  EXPECT_TRUE(db2.CheckIntegrity().ok());
}

TEST_F(SnapshotTest, PkUniquenessEnforcedAfterLoad) {
  std::string dir = TempDir("pk");
  ASSERT_TRUE(SaveDatabase(db_, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)
                ->Insert("parent", {Value(1), Value("dup")})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SnapshotTest, LoadMissingDirFails) {
  EXPECT_EQ(LoadDatabase("/nonexistent/surely/missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotTest, CorruptManifestFails) {
  std::string dir = TempDir("corrupt");
  ASSERT_TRUE(SaveDatabase(db_, dir).ok());
  std::ofstream f(fs::path(dir) / "_manifest.txt", std::ios::app);
  f << "gibberish line here\n";
  f.close();
  EXPECT_EQ(LoadDatabase(dir).status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotTest, MalformedWalLsnInManifestIsCorruption) {
  // A non-numeric wal_lsn must fail loudly, not strtoull-silently become 0
  // (which would make recovery re-replay records the snapshot already
  // contains).
  std::string dir = TempDir("bad_wal_lsn");
  ASSERT_TRUE(SaveDatabase(db_, dir).ok());
  std::string manifest_path = (fs::path(dir) / "_manifest.txt").string();
  std::ifstream in(manifest_path);
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(manifest_path, std::ios::trunc);
  out << "wal_lsn not-a-number\n" << manifest;
  out.close();
  EXPECT_EQ(LoadDatabase(dir).status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotTest, MalformedRowIdSidecarIsCorruption) {
  std::string dir = TempDir("bad_rowids");
  ASSERT_TRUE(SaveDatabase(db_, dir).ok());
  std::ofstream out(fs::path(dir) / "parent.rowids", std::ios::trunc);
  out << "0\nxyz\n";  // two entries for two rows, second one garbage
  out.close();
  EXPECT_EQ(LoadDatabase(dir).status().code(), StatusCode::kCorruption);
}

TEST(SnapshotSiteTest, GeneratedSiteRoundTrips) {
  // Snapshot a whole generated community and reload it.
  gen::Generator generator(gen::GenConfig::Tiny(3));
  auto site = generator.Generate();
  ASSERT_TRUE(site.ok());

  std::string dir = TempDir("site");
  ASSERT_TRUE(SaveDatabase((*site)->db(), dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const std::string& table : (*site)->db().TableNames()) {
    auto original = (*site)->db().GetTable(table);
    auto restored = (*loaded)->GetTable(table);
    ASSERT_TRUE(restored.ok()) << table;
    EXPECT_EQ((*original)->size(), (*restored)->size()) << table;
  }
  EXPECT_TRUE((*loaded)->CheckIntegrity().ok());
}

}  // namespace
}  // namespace courserank::storage
