// Query-level profiling tests (DESIGN.md §13): the profile tree a
// collector records must have exactly the Explain() tree's shape with
// consistent row accounting, profiling must never change results, the
// flight recorder must evict in order and keep the true slowest set, the
// slow-query threshold must fire its counter, trace drops must be counted,
// and the debug HTTP endpoint must answer its routes.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/flexrecs_engine.h"
#include "core/workflow_parser.h"
#include "gen/generator.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/profile_recorder.h"
#include "obs/trace.h"
#include "query/profile.h"
#include "query/sql_engine.h"
#include "social/site.h"
#include "storage/database.h"

namespace courserank {
namespace {

using flexrecs::CompiledWorkflow;
using flexrecs::FlexRecsEngine;
using flexrecs::WorkflowProfile;
using gen::GenConfig;
using gen::Generator;
using obs::ProfileRecorder;
using obs::RecordedProfile;
using query::ExecOptions;
using query::ParamMap;
using query::PlanProfileNode;
using query::QueryProfile;
using query::Relation;
using query::SqlEngine;
using storage::Database;
using storage::Value;

/// Multi-worker fan-out on toy inputs (exec_parallel_test's Aggressive).
ExecOptions Aggressive(size_t morsel_rows = 3) {
  static ThreadPool pool(3);
  ExecOptions o;
  o.parallel = true;
  o.morsel_rows = morsel_rows;
  o.min_parallel_rows = 0;
  o.pool = &pool;
  return o;
}

/// Byte-identity check (exec_parallel_test contract): same schema, same
/// rows, same order, same value types.
void ExpectSameRelation(const Relation& a, const Relation& b,
                        const std::string& what) {
  ASSERT_EQ(a.schema.num_columns(), b.schema.num_columns()) << what;
  for (size_t c = 0; c < a.schema.num_columns(); ++c) {
    EXPECT_EQ(a.schema.column(c).name, b.schema.column(c).name) << what;
    EXPECT_EQ(a.schema.column(c).type, b.schema.column(c).type) << what;
  }
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << what << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_EQ(a.rows[r][c].type(), b.rows[r][c].type())
          << what << " row " << r << " col " << c;
      EXPECT_TRUE(a.rows[r][c] == b.rows[r][c])
          << what << " row " << r << " col " << c;
    }
  }
}

/// Re-renders a profile tree in Explain()'s exact format: indent, describe,
/// newline, children. Equal strings == equal tree shapes.
void RebuildExplain(const PlanProfileNode& node, int indent,
                    std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += node.describe;
  *out += "\n";
  for (const auto& child : node.children) {
    RebuildExplain(*child, indent + 1, out);
  }
}

/// Every non-leaf's rows_in must be the sum of its children's rows_out
/// (leaves set rows_in themselves: scans count examined rows), and wall
/// time must cover the children.
void CheckRowAndTimeConsistency(const PlanProfileNode& node,
                                const std::string& what) {
  if (!node.children.empty()) {
    uint64_t child_rows = 0;
    uint64_t child_ns = 0;
    for (const auto& child : node.children) {
      child_rows += child->rows_out;
      child_ns += child->wall_ns;
      CheckRowAndTimeConsistency(*child, what);
    }
    EXPECT_EQ(node.rows_in, child_rows) << what << " at " << node.describe;
    EXPECT_GE(node.wall_ns, child_ns) << what << " at " << node.describe;
  }
  EXPECT_FALSE(node.error) << what << " at " << node.describe;
}

uint64_t SumSelfNs(const PlanProfileNode& node) {
  uint64_t total = node.self_ns();
  for (const auto& child : node.children) total += SumSelfNs(*child);
  return total;
}

// Random workflow DSL over the canonical schema — the sabotage-free
// generator from exec_parallel_test.cc.
class RandomWorkflowGen {
 public:
  explicit RandomWorkflowGen(Rng* rng) : rng_(*rng) {}

  std::string Next() {
    std::string dsl;
    dsl += "base = TABLE " + TableName() + "\n";
    std::string cur = "base";
    size_t ops = 1 + rng_.NextBounded(3);
    for (size_t i = 0; i < ops; ++i) {
      switch (rng_.NextBounded(4)) {
        case 0:
          dsl += "s" + std::to_string(i) + " = SELECT " + cur + " WHERE " +
                 Predicate() + "\n";
          cur = "s" + std::to_string(i);
          break;
        case 1:
          dsl += "e" + std::to_string(i) + " = EXTEND " + cur +
                 " WITH base ON " + ColumnName() + " = " + ColumnName() +
                 " COLLECT " + ColumnName() + " AS bag" + std::to_string(i) +
                 "\n";
          cur = "e" + std::to_string(i);
          break;
        case 2:
          dsl += "r" + std::to_string(i) + " = RECOMMEND " + cur +
                 " AGAINST base USING " + Similarity() + "(" + ColumnName() +
                 ", " + ColumnName() + ") AGG max SCORE sc" +
                 std::to_string(i) + " TOP 5\n";
          cur = "r" + std::to_string(i);
          break;
        default:
          dsl += "t" + std::to_string(i) + " = TOPK " + cur + " BY " +
                 ColumnName() + " DESC LIMIT 5\n";
          cur = "t" + std::to_string(i);
          break;
      }
    }
    dsl += "RETURN " + cur + "\n";
    return dsl;
  }

 private:
  std::string TableName() {
    static const char* kTables[] = {"Students", "Courses", "Ratings",
                                    "Offerings"};
    table_ = rng_.NextBounded(4);
    return kTables[table_];
  }
  std::string ColumnName() {
    static const std::vector<const char*> kColumns[] = {
        {"SuID", "Name", "Class", "GPA"},
        {"CourseID", "Title", "Number", "Units"},
        {"SuID", "CourseID", "Score", "Day"},
        {"OfferingID", "CourseID", "Year", "Term"}};
    const auto& cols = kColumns[table_];
    return cols[rng_.NextBounded(cols.size())];
  }
  std::string Similarity() {
    static const char* kSims[] = {"exact", "numeric_proximity",
                                  "token_jaccard"};
    return kSims[rng_.NextBounded(3)];
  }
  std::string Predicate() {
    static const char* kOps[] = {"=", "<>", "<", ">="};
    std::string lhs = ColumnName();
    std::string rhs;
    switch (rng_.NextBounded(3)) {
      case 0:
        rhs = std::to_string(rng_.NextBounded(100));
        break;
      case 1:
        rhs = "'x" + std::to_string(rng_.NextBounded(10)) + "'";
        break;
      default:
        rhs = ColumnName();
        break;
    }
    return lhs + " " + kOps[rng_.NextBounded(4)] + " " + rhs;
  }
  Rng& rng_;
  size_t table_ = 0;
};

// -------------------------------------------------- SQL profile trees

const char* kSqlQueries[] = {
    "SELECT * FROM Courses",
    "SELECT Title FROM Courses WHERE Units >= 3 ORDER BY Title LIMIT 7",
    "SELECT Title, Number FROM Courses WHERE Number < 200 "
    "ORDER BY Number DESC, Title LIMIT 5 OFFSET 2",
    "SELECT DISTINCT Units FROM Courses ORDER BY Units",
    "SELECT Day, COUNT(*) AS n, AVG(Score) AS mean FROM Ratings "
    "GROUP BY Day ORDER BY n DESC LIMIT 3",
    "SELECT c.Title, r.Score FROM Courses c "
    "JOIN Ratings r ON c.CourseID = r.CourseID "
    "WHERE r.Score > 2 ORDER BY r.Score DESC, c.Title LIMIT 10",
    "SELECT UPPER(Title) AS t FROM Courses WHERE Title LIKE '%a%' "
    "ORDER BY t LIMIT 4",
};

class SqlProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = Generator(GenConfig::Tiny(7)).Generate();
    ASSERT_TRUE(site.ok()) << site.status().ToString();
    site_ = std::move(*site);
  }

  std::unique_ptr<social::CourseRankSite> site_;
};

TEST_F(SqlProfileTest, ProfileTreeMatchesExplainShape) {
  for (const ExecOptions& exec : {ExecOptions{}, Aggressive()}) {
    SqlEngine engine(&site_->db());
    engine.set_exec_options(exec);
    for (const char* sql : kSqlQueries) {
      QueryProfile qp;
      auto rel = engine.Execute(sql, {}, &qp);
      ASSERT_TRUE(rel.ok()) << sql << " -> " << rel.status().ToString();
      ASSERT_NE(qp.root, nullptr) << sql;
      EXPECT_EQ(qp.statement, sql);

      auto explain = engine.Explain(sql);
      ASSERT_TRUE(explain.ok()) << sql;
      std::string rebuilt;
      RebuildExplain(*qp.root, 0, &rebuilt);
      EXPECT_EQ(rebuilt, *explain) << sql;

      CheckRowAndTimeConsistency(*qp.root, sql);
      // The root's rows_out is the result itself.
      EXPECT_EQ(qp.root->rows_out, rel->rows.size()) << sql;
      // Statement wall covers the plan; self times telescope to the root.
      EXPECT_GE(qp.total_ns, qp.root->wall_ns) << sql;
      EXPECT_EQ(SumSelfNs(*qp.root), qp.root->wall_ns) << sql;
    }
  }
}

TEST_F(SqlProfileTest, ProfilingChangesNoResults) {
  SqlEngine engine(&site_->db());
  engine.set_exec_options(Aggressive());
  for (const char* sql : kSqlQueries) {
    auto plain = engine.Execute(sql);
    ASSERT_TRUE(plain.ok()) << sql;
    QueryProfile qp;
    auto profiled = engine.Execute(sql, {}, &qp);
    ASSERT_TRUE(profiled.ok()) << sql;
    ExpectSameRelation(*plain, *profiled, sql);
  }
}

TEST_F(SqlProfileTest, ExplainAnalyzeStatementPrefix) {
  SqlEngine engine(&site_->db());
  const std::string inner =
      "SELECT Title FROM Courses WHERE Units >= 3 ORDER BY Title LIMIT 7";

  // EXPLAIN: the plain plan tree, one line per row of the `plan` column.
  auto explained = engine.Execute("EXPLAIN " + inner);
  ASSERT_TRUE(explained.ok());
  ASSERT_EQ(explained->schema.num_columns(), 1u);
  EXPECT_EQ(explained->schema.column(0).name, "plan");
  auto tree = engine.Explain(inner);
  ASSERT_TRUE(tree.ok());
  std::string joined;
  for (const auto& row : explained->rows) {
    joined += row[0].AsString() + "\n";
  }
  EXPECT_EQ(joined, *tree);

  // EXPLAIN ANALYZE: executed plan with timings; keyword case-insensitive.
  for (const std::string prefix : {"EXPLAIN ANALYZE ", "explain  analyze "}) {
    auto analyzed = engine.Execute(prefix + inner);
    ASSERT_TRUE(analyzed.ok()) << prefix;
    ASSERT_GE(analyzed->rows.size(), 2u);
    const std::string header = analyzed->rows[0][0].AsString();
    EXPECT_NE(header.find("[total "), std::string::npos) << header;
    std::string body;
    for (const auto& row : analyzed->rows) body += row[0].AsString();
    EXPECT_NE(body.find("TableScan"), std::string::npos);
    EXPECT_NE(body.find("rows"), std::string::npos);
    EXPECT_NE(body.find("self "), std::string::npos);
  }

  // Not a word boundary: parses (and fails) as a regular statement.
  EXPECT_FALSE(engine.Execute("EXPLAINANALYZE " + inner).ok());
  // EXPLAIN of DML is rejected, and nothing was executed.
  EXPECT_FALSE(engine.Execute("EXPLAIN DELETE FROM Courses").ok());
}

TEST_F(SqlProfileTest, ProfiledEngineSubmitsToRecorder) {
  ProfileRecorder& rec = ProfileRecorder::Default();
  uint64_t before = rec.total_submitted();
  SqlEngine engine(&site_->db());
  engine.set_profiling(true);
  ASSERT_TRUE(engine.Execute("SELECT * FROM Courses").ok());
  ASSERT_TRUE(
      engine.Execute("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM Ratings")
          .ok());
  EXPECT_GE(rec.total_submitted(), before + 2);
  auto recent = rec.Recent();
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent.back().kind, "sql");
  EXPECT_NE(recent.back().text.find("[total "), std::string::npos);
}

// ---------------------------------------------- workflow profile trees

TEST(WorkflowProfileTest, StepsMirrorCompiledWorkflow) {
  auto site = Generator(GenConfig::Tiny(43)).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  analysis::Analyzer analyzer(&(*site)->db(), &engine.library());

  Rng rng(271);
  RandomWorkflowGen gen(&rng);
  int executed = 0;
  for (int trial = 0; trial < 40 && executed < 12; ++trial) {
    std::string dsl = gen.Next();
    if (analyzer.LintDsl(dsl).has_errors()) continue;
    auto parsed = flexrecs::ParseWorkflow(dsl);
    ASSERT_TRUE(parsed.ok()) << dsl;
    auto compiled = engine.Compile(**parsed);
    ASSERT_TRUE(compiled.ok()) << dsl;

    auto plain = engine.Execute(*compiled, {});
    ASSERT_TRUE(plain.ok()) << dsl << "\n" << plain.status().ToString();

    WorkflowProfile wp;
    auto profiled = engine.Execute(*compiled, {}, &wp);
    ASSERT_TRUE(profiled.ok()) << dsl;
    ExpectSameRelation(*plain, *profiled, dsl);

    // One step profile per compiled step, kinds aligned, SQL plans shaped
    // exactly like an independent Explain of the same statement.
    ASSERT_EQ(wp.steps.size(), compiled->steps().size()) << dsl;
    for (size_t i = 0; i < wp.steps.size(); ++i) {
      const auto& step = compiled->steps()[i];
      const auto& sp = wp.steps[i];
      switch (step.kind) {
        case flexrecs::CompiledStep::Kind::kSql: {
          EXPECT_EQ(sp.kind, "sql") << dsl;
          EXPECT_EQ(sp.label, step.sql) << dsl;
          ASSERT_NE(sp.plan, nullptr) << dsl;
          SqlEngine probe(&(*site)->db());
          auto explain = probe.Explain(step.sql);
          ASSERT_TRUE(explain.ok()) << step.sql;
          std::string rebuilt;
          RebuildExplain(*sp.plan, 0, &rebuilt);
          EXPECT_EQ(rebuilt, *explain) << dsl;
          CheckRowAndTimeConsistency(*sp.plan, dsl);
          break;
        }
        case flexrecs::CompiledStep::Kind::kValues:
          EXPECT_EQ(sp.kind, "values") << dsl;
          EXPECT_EQ(sp.plan, nullptr) << dsl;
          break;
        case flexrecs::CompiledStep::Kind::kPhysical: {
          EXPECT_EQ(sp.kind, "physical") << dsl;
          // Non-last members of a fusion group are skipped: they profile as
          // a stub pointing at the fused step and carry no plan tree.
          bool fused_stub = false;
          for (const auto& g : compiled->fusion_groups()) {
            for (size_t mi : g.members) {
              if (mi == i && g.members.back() != i) fused_stub = true;
            }
          }
          if (fused_stub) {
            EXPECT_EQ(sp.plan, nullptr) << dsl;
            EXPECT_NE(sp.label.find("[fused -> step "), std::string::npos)
                << dsl;
          } else {
            ASSERT_NE(sp.plan, nullptr) << dsl;
            CheckRowAndTimeConsistency(*sp.plan, dsl);
          }
          break;
        }
      }
    }
    EXPECT_EQ(wp.steps.back().rows_out, profiled->rows.size()) << dsl;
    EXPECT_GT(wp.total_ns, 0u) << dsl;

    // Renderings carry the step structure.
    std::string text = wp.Render();
    EXPECT_NE(text.find("[total "), std::string::npos);
    EXPECT_NE(text.find("step 1 ["), std::string::npos);
    std::string json = wp.RenderJson();
    EXPECT_NE(json.find("\"steps\": ["), std::string::npos);
    ++executed;
  }
  EXPECT_GE(executed, 5) << "corpus skewed toward rejection";
}

TEST(WorkflowProfileTest, RunStrategyProfiledRecordsAndMatches) {
  auto site = Generator(GenConfig::Tiny(11)).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  engine.set_exec_options(Aggressive());
  ParamMap params{{"major", Value((*site)->db().FindTable("Students") != nullptr
                                      ? std::string("CS")
                                      : std::string("CS"))}};
  // major_popular only needs a major param; any value yields a (possibly
  // empty) result.
  auto plain = engine.RunStrategy("major_popular", params);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  ProfileRecorder& rec = ProfileRecorder::Default();
  uint64_t before = rec.total_submitted();
  WorkflowProfile wp;
  auto profiled = engine.RunStrategyProfiled("major_popular", params, &wp);
  ASSERT_TRUE(profiled.ok());
  ExpectSameRelation(*plain, *profiled, "major_popular");
  EXPECT_EQ(wp.name, "major_popular");
  EXPECT_FALSE(wp.steps.empty());
  EXPECT_EQ(rec.total_submitted(), before + 1);
  auto recent = rec.Recent();
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent.back().kind, "flexrecs");
  EXPECT_EQ(recent.back().query, "major_popular");

  // set_profiling routes the plain entry points through the recorder too.
  engine.set_profiling(true);
  ASSERT_TRUE(engine.RunStrategy("major_popular", params).ok());
  engine.set_profiling(false);
  EXPECT_EQ(rec.total_submitted(), before + 2);
}

// ------------------------------------------------------ flight recorder

RecordedProfile MakeProfile(const std::string& query, uint64_t total_ns) {
  RecordedProfile p;
  p.kind = "sql";
  p.query = query;
  p.total_ns = total_ns;
  p.text = query + " rendered";
  p.json = "{\"statement\": \"" + query + "\"}";
  return p;
}

TEST(ProfileRecorderTest, RecentEvictsOldestSlowestKeepsSlowest) {
  ProfileRecorder rec(/*recent_capacity=*/3, /*slowest_capacity=*/2);
  rec.Submit(MakeProfile("q1", 10));
  rec.Submit(MakeProfile("q2", 50));
  rec.Submit(MakeProfile("q3", 20));
  rec.Submit(MakeProfile("q4", 40));
  rec.Submit(MakeProfile("q5", 30));

  EXPECT_EQ(rec.total_submitted(), 5u);
  auto recent = rec.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].query, "q3");  // oldest retained first
  EXPECT_EQ(recent[1].query, "q4");
  EXPECT_EQ(recent[2].query, "q5");
  EXPECT_EQ(recent[0].id, 3u);

  auto slowest = rec.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].query, "q2");  // 50ns — evicted from recent, kept here
  EXPECT_EQ(slowest[1].query, "q4");  // 40ns

  rec.Clear();
  EXPECT_TRUE(rec.Recent().empty());
  EXPECT_TRUE(rec.Slowest().empty());
  EXPECT_EQ(rec.total_submitted(), 0u);
}

TEST(ProfileRecorderTest, SlowestTiesKeepEarlierSubmission) {
  ProfileRecorder rec(8, 2);
  rec.Submit(MakeProfile("first", 100));
  rec.Submit(MakeProfile("second", 100));
  rec.Submit(MakeProfile("third", 100));
  auto slowest = rec.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].query, "first");
  EXPECT_EQ(slowest[1].query, "second");
}

TEST(ProfileRecorderTest, SlowThresholdFiresCounter) {
  obs::Counter* slow =
      obs::MetricsRegistry::Default().GetCounter("cr_slow_queries_total");
  obs::Counter* profiled = obs::MetricsRegistry::Default().GetCounter(
      "cr_exec_profiled_queries_total");
  ProfileRecorder rec(4, 4);
  rec.set_slow_threshold_ns(1'000'000);
  uint64_t slow_before = slow->value();
  uint64_t profiled_before = profiled->value();
  rec.Submit(MakeProfile("fast", 999'999));
  EXPECT_EQ(slow->value(), slow_before);
  rec.Submit(MakeProfile("slow", 1'000'000));  // at threshold: fires
  rec.Submit(MakeProfile("slower", 5'000'000));
  EXPECT_EQ(slow->value(), slow_before + 2);
  EXPECT_EQ(profiled->value(), profiled_before + 3);

  // Threshold 0 disables the slow-query log entirely.
  rec.set_slow_threshold_ns(0);
  rec.Submit(MakeProfile("huge", 9'000'000'000));
  EXPECT_EQ(slow->value(), slow_before + 2);
}

TEST(ProfileRecorderTest, RenderJsonShape) {
  ProfileRecorder rec(4, 2);
  rec.Submit(MakeProfile("SELECT \"x\" FROM t", 123));
  std::string json = rec.RenderJson();
  EXPECT_NE(json.find("\"total_submitted\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recent\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"slowest\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\": 123"), std::string::npos) << json;
  // The quote inside the query text must be escaped.
  EXPECT_NE(json.find("SELECT \\\"x\\\" FROM t"), std::string::npos) << json;
}

// --------------------------------------------------- trace drop counting

TEST(TraceDropTest, OverwrittenEventsAreCounted) {
  obs::Counter* dropped_total =
      obs::MetricsRegistry::Default().GetCounter("cr_trace_dropped_total");
  uint64_t before = dropped_total->value();
  obs::TraceSink sink(/*capacity=*/4, /*period=*/1);
  for (uint64_t i = 0; i < 6; ++i) {
    sink.Record(obs::stage::kSqlExec, i * 100, 10, 0);
  }
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.total_recorded(), 6u);
  EXPECT_EQ(sink.Snapshot().size(), 4u);
  EXPECT_EQ(dropped_total->value(), before + 2);

  std::string json = sink.RenderJson();
  EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_recorded\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\": \"sql.exec\""), std::string::npos) << json;

  sink.Clear();
  EXPECT_EQ(sink.dropped(), 0u);
}

// ------------------------------------------------------- debug endpoint

TEST(DebugRouteTest, RoutesAnswer) {
  obs::HttpResponse health = obs::HandleDebugRoute("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  // Each gtest case runs in its own process; touch a counter so the
  // exposition is non-empty.
  obs::MetricsRegistry::Default().GetCounter("cr_http_requests_total");
  obs::HttpResponse metrics = obs::HandleDebugRoute("/metrics?x=1");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("cr_"), std::string::npos);

  obs::HttpResponse profiles = obs::HandleDebugRoute("/debug/profiles");
  EXPECT_EQ(profiles.status, 200);
  EXPECT_EQ(profiles.content_type, "application/json");
  EXPECT_NE(profiles.body.find("\"recent\""), std::string::npos);

  obs::HttpResponse traces = obs::HandleDebugRoute("/debug/traces");
  EXPECT_EQ(traces.status, 200);
  EXPECT_NE(traces.body.find("\"events\""), std::string::npos);

  EXPECT_EQ(obs::HandleDebugRoute("/").status, 200);
  EXPECT_EQ(obs::HandleDebugRoute("/nope").status, 404);
}

/// One raw HTTP exchange against 127.0.0.1:port; returns the full response.
std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(DebugHttpServerTest, ServesRoutesOnEphemeralPort) {
  auto server = obs::DebugHttpServer::Start({});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();
  ASSERT_NE(port, 0);

  for (const char* path :
       {"/healthz", "/metrics", "/debug/profiles", "/debug/traces", "/"}) {
    std::string resp = RawRequest(
        port, std::string("GET ") + path + " HTTP/1.0\r\nHost: x\r\n\r\n");
    EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << path;
    EXPECT_NE(resp.find("Content-Length: "), std::string::npos) << path;
  }

  EXPECT_NE(RawRequest(port, "GET /nope HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(RawRequest(port, "POST / HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  // No parseable request line at all.
  EXPECT_NE(RawRequest(port, "garbage\r\n\r\n").find("400"),
            std::string::npos);

  obs::Counter* requests =
      obs::MetricsRegistry::Default().GetCounter("cr_http_requests_total");
  EXPECT_GE(requests->value(), 8u);

  (*server)->Stop();
  // Idempotent, and the destructor will run it again.
  (*server)->Stop();
}

// ---------------------------------------------- fan-out decision counters

TEST(FanoutCounterTest, DecisionsAreCategorized) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* par = reg.GetCounter("cr_exec_fanout_parallel_total");
  obs::Counter* small = reg.GetCounter("cr_exec_fanout_skipped_small_total");
  obs::Counter* off = reg.GetCounter("cr_exec_fanout_serial_config_total");

  Database db;
  auto table = db.CreateTable(
      "t", storage::Schema({{"v", storage::ValueType::kInt, true}}), {});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE((*table)->Insert({Value(i)}).ok());
  }

  SqlEngine engine(&db);
  uint64_t par_before = par->value();
  uint64_t small_before = small->value();
  uint64_t off_before = off->value();

  engine.set_exec_options(Aggressive(4));
  ASSERT_TRUE(engine.Execute("SELECT v FROM t WHERE v % 2 = 0").ok());
  EXPECT_GT(par->value(), par_before);

  ExecOptions serial;
  serial.parallel = false;
  engine.set_exec_options(serial);
  ASSERT_TRUE(engine.Execute("SELECT v FROM t WHERE v % 2 = 0").ok());
  EXPECT_GT(off->value(), off_before);

  ExecOptions high_floor = Aggressive(4);
  high_floor.min_parallel_rows = 1'000'000;
  engine.set_exec_options(high_floor);
  ASSERT_TRUE(engine.Execute("SELECT v FROM t WHERE v % 2 = 0").ok());
  EXPECT_GT(small->value(), small_before);
}

}  // namespace
}  // namespace courserank
