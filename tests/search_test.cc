#include <gtest/gtest.h>

#include "search/entity.h"
#include "search/inverted_index.h"
#include "search/naive_search.h"
#include "search/searcher.h"
#include "storage/database.h"

namespace courserank::search {
namespace {

using storage::Column;
using storage::Schema;
using storage::Table;
using storage::ValueType;

/// A small deterministic catalog: 6 courses, comments attached to some.
class SearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto courses = db_.CreateTable(
        "Courses",
        Schema({{"CourseID", ValueType::kInt, false},
                {"Title", ValueType::kString, false},
                {"Description", ValueType::kString, true}}),
        {"CourseID"});
    ASSERT_TRUE(courses.ok());
    auto comments = db_.CreateTable(
        "Comments", Schema({{"CommentID", ValueType::kInt, false},
                            {"CourseID", ValueType::kInt, false},
                            {"Text", ValueType::kString, false}}),
        {"CommentID"});
    ASSERT_TRUE(comments.ok());
    ASSERT_TRUE(
        (*comments)->CreateHashIndex("by_course", {"CourseID"}, false).ok());

    AddCourse(1, "American History",
              "Surveys american politics and culture since 1900.");
    AddCourse(2, "Latin American Literature",
              "Novels and poetry from latin american writers.");
    AddCourse(3, "Databases", "Relational model, SQL, and transactions.");
    AddCourse(4, "Greek Science",
              "History of science covering the famous greek scientists.");
    AddCourse(5, "African American Studies",
              "African american politics, music, and migration.");
    AddCourse(6, "Compilers", "Parsing, optimization, code generation.");

    AddComment(1, 1, "loved the american politics units");
    AddComment(2, 3, "the sql homework was heavy but fair");
    AddComment(3, 6, "best programming course ever; compilers demystified");

    def_.name = "course";
    def_.primary_table = "Courses";
    def_.key_column = "CourseID";
    def_.display_column = "Title";
    def_.fields = {
        {"title", 3.0, "Courses", "Title", "CourseID"},
        {"description", 1.5, "Courses", "Description", "CourseID"},
        {"comments", 1.0, "Comments", "Text", "CourseID"},
    };

    index_ = std::make_unique<InvertedIndex>(def_);
    ASSERT_TRUE(index_->Build(db_).ok());
  }

  void AddCourse(int id, const std::string& title, const std::string& desc) {
    ASSERT_TRUE(db_.FindTable("Courses")
                    ->Insert({storage::Value(id), storage::Value(title),
                              storage::Value(desc)})
                    .ok());
  }

  void AddComment(int id, int course, const std::string& text) {
    ASSERT_TRUE(db_.FindTable("Comments")
                    ->Insert({storage::Value(id), storage::Value(course),
                              storage::Value(text)})
                    .ok());
  }

  std::vector<int64_t> Keys(const ResultSet& results) {
    std::vector<int64_t> out;
    for (const SearchHit& hit : results.hits) {
      out.push_back(index_->doc(hit.doc).key.AsInt());
    }
    return out;
  }

  storage::Database db_;
  EntityDefinition def_;
  std::unique_ptr<InvertedIndex> index_;
};

// ---------------------------------------------------------------- extractor

TEST_F(SearchTest, ExtractorSpansRelations) {
  EntityExtractor extractor(&db_, def_);
  auto doc = extractor.ExtractOne(storage::Value(3));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->display, "Databases");
  ASSERT_EQ(doc->field_texts.size(), 3u);
  EXPECT_NE(doc->field_texts[2].find("sql homework"), std::string::npos);
}

TEST_F(SearchTest, ExtractorMissingKey) {
  EntityExtractor extractor(&db_, def_);
  EXPECT_EQ(extractor.ExtractOne(storage::Value(99)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SearchTest, ExtractAllCoversCatalog) {
  EntityExtractor extractor(&db_, def_);
  auto docs = extractor.ExtractAll();
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 6u);
}

// ---------------------------------------------------------------- index

TEST_F(SearchTest, IndexStatistics) {
  EXPECT_EQ(index_->num_docs(), 6u);
  TermId t = index_->LookupTerm("american");
  ASSERT_NE(t, kNoTerm);
  EXPECT_EQ(index_->DocFrequency(t), 3u);
  EXPECT_EQ(index_->LookupTerm("nonexistent"), kNoTerm);
}

TEST_F(SearchTest, IdfDecreasesWithFrequency) {
  TermId rare = index_->LookupTerm("compil");  // 1 doc
  TermId common = index_->LookupTerm("american");  // 3 docs
  ASSERT_NE(rare, kNoTerm);
  ASSERT_NE(common, kNoTerm);
  EXPECT_GT(index_->Idf(rare), index_->Idf(common));
}

TEST_F(SearchTest, BigramTracking) {
  TermId bg = index_->LookupTerm("african american");
  ASSERT_NE(bg, kNoTerm);
  EXPECT_EQ(index_->BigramDocFrequency(bg), 1u);
  TermId latin = index_->LookupTerm("latin american");
  ASSERT_NE(latin, kNoTerm);
  EXPECT_EQ(index_->BigramDocFrequency(latin), 1u);
}

TEST_F(SearchTest, DisplayFormTracksSurfaces) {
  EXPECT_EQ(index_->DisplayForm("american"), "american");
  EXPECT_EQ(index_->DisplayForm("databas"), "databases");
}

TEST_F(SearchTest, RemoveByKeyTombstones) {
  ASSERT_TRUE(index_->RemoveByKey(storage::Value(1)).ok());
  EXPECT_EQ(index_->num_docs(), 5u);
  TermId t = index_->LookupTerm("american");
  EXPECT_EQ(index_->DocFrequency(t), 2u);
  EXPECT_FALSE(index_->FindByKey(storage::Value(1)).ok());
  EXPECT_EQ(index_->RemoveByKey(storage::Value(1)).code(),
            StatusCode::kNotFound);
}

TEST_F(SearchTest, RefreshPicksUpNewComment) {
  Searcher searcher(index_.get());
  EXPECT_EQ(searcher.Search("transactions")->size(), 1u);
  EXPECT_EQ(searcher.Search("normalization")->size(), 0u);

  AddComment(10, 3, "the normalization lectures were the highlight");
  ASSERT_TRUE(index_->Refresh(db_, storage::Value(3)).ok());
  EXPECT_EQ(index_->num_docs(), 6u);
  EXPECT_EQ(searcher.Search("normalization")->size(), 1u);
  EXPECT_EQ(searcher.Search("transactions")->size(), 1u);
}

TEST_F(SearchTest, DuplicateAddRejected) {
  EntityExtractor extractor(&db_, def_);
  auto doc = extractor.ExtractOne(storage::Value(1));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(index_->AddDocument(*doc).status().code(),
            StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------- searcher

TEST_F(SearchTest, SingleTermSearch) {
  Searcher searcher(index_.get());
  auto results = searcher.Search("american");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);
}

TEST_F(SearchTest, SearchMatchesCommentsToo) {
  Searcher searcher(index_.get());
  // "programming" only appears in a comment on Compilers.
  auto results = searcher.Search("programming");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(Keys(*results), (std::vector<int64_t>{6}));
}

TEST_F(SearchTest, MultiTermIsConjunctive) {
  Searcher searcher(index_.get());
  // The serendipity example: "greek science" finds the history course.
  auto results = searcher.Search("greek science");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(Keys(*results), (std::vector<int64_t>{4}));
}

TEST_F(SearchTest, UnknownTermEmptiesConjunction) {
  Searcher searcher(index_.get());
  EXPECT_EQ(searcher.Search("american xenomorph")->size(), 0u);
}

TEST_F(SearchTest, StemmingUnifiesQueryForms) {
  Searcher searcher(index_.get());
  EXPECT_EQ(searcher.Search("database")->size(),
            searcher.Search("databases")->size());
}

TEST_F(SearchTest, TitleHitOutranksCommentHit) {
  Searcher searcher(index_.get());
  auto results = searcher.Search("american");
  ASSERT_TRUE(results.ok());
  // Course 1 has "american" in title, description, and a comment; courses
  // 2 and 5 in title+description. Course 1 should rank first.
  EXPECT_EQ(Keys(*results)[0], 1);
}

TEST_F(SearchTest, TfIdfModeStillFindsSameDocs) {
  SearchOptions opts;
  opts.ranking = RankingMode::kTfIdf;
  Searcher flat(index_.get(), opts);
  EXPECT_EQ(flat.Search("american")->size(), 3u);
}

TEST_F(SearchTest, MaxResultsTruncates) {
  SearchOptions opts;
  opts.max_results = 2;
  Searcher searcher(index_.get(), opts);
  EXPECT_EQ(searcher.Search("american")->size(), 2u);
}

TEST_F(SearchTest, DuplicateQueryTermsScoreOnce) {
  Searcher searcher(index_.get());
  auto once = searcher.Search("database");
  auto twice = searcher.Search("database database");
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->terms, once->terms);  // deduplicated before evaluation
  ASSERT_EQ(twice->size(), once->size());
  for (size_t i = 0; i < once->hits.size(); ++i) {
    EXPECT_EQ(twice->hits[i].doc, once->hits[i].doc);
    EXPECT_EQ(twice->hits[i].score, once->hits[i].score);
  }
}

TEST_F(SearchTest, IntersectionMatchesPerDocFilterExactly) {
  SearchOptions filter_opts;
  filter_opts.strategy = MatchStrategy::kPerDocFilter;
  Searcher intersect(index_.get());
  Searcher filter(index_.get(), filter_opts);
  for (const char* q : {"american", "greek science", "american politics",
                        "sql", "database", "the of and"}) {
    auto a = intersect.Search(q);
    auto b = filter.Search(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->hits.size(); ++i) {
      EXPECT_EQ(a->hits[i].doc, b->hits[i].doc) << q;
      EXPECT_EQ(a->hits[i].score, b->hits[i].score) << q;
    }
  }
}

TEST_F(SearchTest, IntersectionHandlesPhraseTerms) {
  Searcher searcher(index_.get());
  // Phrase term via SearchTerms, as a cloud-click re-query would issue it.
  auto results = searcher.SearchTerms({"american", "latin american"});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(Keys(*results), (std::vector<int64_t>{2}));
}

TEST_F(SearchTest, EmptyQueryYieldsNothing) {
  Searcher searcher(index_.get());
  EXPECT_EQ(searcher.Search("")->size(), 0u);
  EXPECT_EQ(searcher.Search("the of and")->size(), 0u);
}

// ---------------------------------------------------------------- refine

TEST_F(SearchTest, RefineNarrowsByPhrase) {
  Searcher searcher(index_.get());
  auto base = searcher.Search("american");
  ASSERT_TRUE(base.ok());
  auto refined = searcher.Refine(*base, "african american");
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->size(), 1u);
  EXPECT_EQ(Keys(*refined), (std::vector<int64_t>{5}));
  EXPECT_EQ(refined->terms.size(), 2u);
}

TEST_F(SearchTest, RefineByUnigram) {
  Searcher searcher(index_.get());
  auto base = searcher.Search("american");
  auto refined = searcher.Refine(*base, "politics");
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined->size(), 2u);  // courses 1 and 5
}

TEST_F(SearchTest, RefineMatchesFromScratchQuery) {
  Searcher searcher(index_.get());
  auto base = searcher.Search("american");
  auto refined = searcher.Refine(*base, "politics");
  ASSERT_TRUE(refined.ok());
  auto direct = searcher.SearchTerms(refined->terms);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Keys(*refined), Keys(*direct));
}

TEST_F(SearchTest, RefineWithStopwordsOnlyFails) {
  Searcher searcher(index_.get());
  auto base = searcher.Search("american");
  EXPECT_FALSE(searcher.Refine(*base, "the of").ok());
}

// ---------------------------------------------------------------- baseline

// ------------------------------------------------- textbook entity (§3.1)

TEST(TextbookEntityTest, JoinsThroughForeignKey) {
  // "We could easily expand searching with clouds to other entities, such
  // as books": the textbook entity pulls in the course's text through
  // Textbooks.CourseID via EntityField::key_from_column.
  storage::Database db;
  ASSERT_TRUE(db.CreateTable("Courses",
                             Schema({{"CourseID", ValueType::kInt, false},
                                     {"Title", ValueType::kString, false},
                                     {"Description", ValueType::kString,
                                      true}}),
                             {"CourseID"})
                  .ok());
  ASSERT_TRUE(db.CreateTable("Textbooks",
                             Schema({{"BookID", ValueType::kInt, false},
                                     {"CourseID", ValueType::kInt, false},
                                     {"Title", ValueType::kString, false}}),
                             {"BookID"})
                  .ok());
  ASSERT_TRUE(db.FindTable("Courses")
                  ->Insert({storage::Value(1),
                            storage::Value("Compilers"),
                            storage::Value("parsing and code generation")})
                  .ok());
  ASSERT_TRUE(db.FindTable("Textbooks")
                  ->Insert({storage::Value(10), storage::Value(1),
                            storage::Value("The Dragon Book")})
                  .ok());

  InvertedIndex index(MakeTextbookEntity());
  ASSERT_TRUE(index.Build(db).ok());
  ASSERT_EQ(index.num_docs(), 1u);

  Searcher searcher(&index);
  // Matches on the book's own title...
  EXPECT_EQ(searcher.Search("dragon")->size(), 1u);
  // ...and on the course text reached through the foreign key.
  EXPECT_EQ(searcher.Search("parsing")->size(), 1u);
  EXPECT_EQ(searcher.Search("compilers")->size(), 1u);
  EXPECT_EQ(searcher.Search("unrelated")->size(), 0u);
}

TEST_F(SearchTest, NaiveBaselineAgreesOnMatchSets) {
  NaiveSearcher naive(&db_, def_);
  Searcher indexed(index_.get());
  for (const char* query : {"american", "greek science", "sql",
                            "programming", "compilers"}) {
    auto slow = naive.Search(query);
    auto fast = indexed.Search(query);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast.ok());
    std::set<int64_t> slow_keys;
    for (const auto& hit : *slow) slow_keys.insert(hit.key.AsInt());
    std::set<int64_t> fast_keys;
    for (int64_t k : Keys(*fast)) fast_keys.insert(k);
    EXPECT_EQ(slow_keys, fast_keys) << query;
  }
}

}  // namespace
}  // namespace courserank::search
