// Property tests for the storage round trip: random schemas and rows —
// quotes, embedded newlines, CRLF, empty vs NULL strings, int64 boundary
// values, full-precision doubles — must survive Save/Load exactly, and a
// second Save must be byte-identical to the first.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/rng.h"
#include "storage/csv.h"
#include "storage/fault.h"
#include "storage/snapshot.h"

namespace courserank::storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / "courserank_roundtrip" / name;
  fs::remove_all(dir);
  return dir.string();
}

// ------------------------------------------------------------ CSV unit bugs

TEST(CsvBugfixTest, EmptyStringSurvivesRoundTrip) {
  Schema schema({{"s", ValueType::kString, true}});
  std::vector<Row> rows = {{Value("")}, {Value()}, {Value("x")}};
  std::string text = ToCsv(schema, rows);
  EXPECT_EQ(text, "s\n\"\"\n\nx\n");
  auto parsed = ParseCsv(schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_FALSE((*parsed)[0][0].is_null());
  EXPECT_EQ((*parsed)[0][0].AsString(), "");
  EXPECT_TRUE((*parsed)[1][0].is_null());
  EXPECT_EQ((*parsed)[2][0].AsString(), "x");
}

TEST(CsvBugfixTest, OutOfRangeIntIsAnErrorNotClamped) {
  Schema schema({{"i", ValueType::kInt, true}});
  // One past INT64_MAX / below INT64_MIN.
  EXPECT_EQ(ParseCsv(schema, "i\n9223372036854775808\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCsv(schema, "i\n-9223372036854775809\n").status().code(),
            StatusCode::kInvalidArgument);
  // The exact boundaries parse fine.
  auto ok = ParseCsv(schema, "i\n9223372036854775807\n-9223372036854775808\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0][0].AsInt(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ((*ok)[1][0].AsInt(), std::numeric_limits<int64_t>::min());
}

TEST(CsvBugfixTest, OutOfRangeDoubleIsAnErrorNotHugeVal) {
  Schema schema({{"d", ValueType::kDouble, true}});
  EXPECT_EQ(ParseCsv(schema, "d\n1e999\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCsv(schema, "d\n-1e999\n").status().code(),
            StatusCode::kInvalidArgument);
  // Denormal underflow is accepted, not an error.
  auto ok = ParseCsv(schema, "d\n5e-324\n1.7976931348623157e308\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT((*ok)[0][0].AsDouble(), 0.0);
}

TEST(CsvBugfixTest, EmptySingleColumnRecordsSurviveCrlf) {
  Schema schema({{"s", ValueType::kString, true}});
  // Three records in a CRLF file: "a", NULL (empty line), "b". The old
  // parser gulped both newlines and lost the NULL record.
  auto parsed = ParseCsv(schema, "s\r\na\r\n\r\nb\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0][0].AsString(), "a");
  EXPECT_TRUE((*parsed)[1][0].is_null());
  EXPECT_EQ((*parsed)[2][0].AsString(), "b");
}

TEST(CsvBugfixTest, GarbageAfterClosingQuoteIsCorruption) {
  Schema schema({{"s", ValueType::kString, true}});
  EXPECT_EQ(ParseCsv(schema, "s\n\"a\"b\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsv(schema, "s\n\"a\n").status().code(),
            StatusCode::kCorruption);  // unterminated quote
}

TEST(CsvBugfixTest, BlankLinesStillSkippedForMultiColumnSchemas) {
  Schema schema({{"a", ValueType::kInt, true}, {"b", ValueType::kInt, true}});
  auto parsed = ParseCsv(schema, "a,b\n1,2\n\n3,4\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(CsvBugfixTest, QuotesNewlinesAndCrlfInsideCellsRoundTrip) {
  Schema schema({{"s", ValueType::kString, true}});
  std::vector<Row> rows = {{Value("a\"b")}, {Value("line1\nline2")},
                           {Value("crlf\r\nhere")}, {Value("comma,cell")}};
  auto parsed = ParseCsv(schema, ToCsv(schema, rows));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*parsed)[i][0].AsString(), rows[i][0].AsString()) << i;
  }
}

TEST(CsvBugfixTest, DoublesRoundTripToTheExactBits) {
  Schema schema({{"d", ValueType::kDouble, true}});
  std::vector<Row> rows = {{Value(0.1)},
                           {Value(1.0 / 3.0)},
                           {Value(std::numeric_limits<double>::max())},
                           {Value(std::numeric_limits<double>::denorm_min())},
                           {Value(-0.0)},
                           {Value(123456789.123456789)}};
  auto parsed = ParseCsv(schema, ToCsv(schema, rows));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double want = rows[i][0].AsDouble();
    double got = (*parsed)[i][0].AsDouble();
    EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0) << i;
  }
}

// ------------------------------------------------------- property round trip

/// Random printable-ish string exercising every CSV special character.
std::string RandomString(Rng& rng) {
  static const char* kAlphabet = "ab,\"\n\r xyz0;\t'|\\";
  size_t len = rng.NextBounded(12);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += kAlphabet[rng.NextBounded(16)];
  }
  return s;
}

Value RandomValue(Rng& rng, ValueType type, bool nullable) {
  if (nullable && rng.NextBool(0.2)) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      return Value(rng.NextBool(0.5));
    case ValueType::kInt:
      switch (rng.NextBounded(4)) {
        case 0:
          return Value(std::numeric_limits<int64_t>::max());
        case 1:
          return Value(std::numeric_limits<int64_t>::min());
        default:
          return Value(rng.NextInt(-1000000, 1000000));
      }
    case ValueType::kDouble:
      switch (rng.NextBounded(4)) {
        case 0:
          return Value(std::numeric_limits<double>::max());
        case 1:
          return Value(std::numeric_limits<double>::denorm_min());
        default:
          return Value(rng.NextGaussian(0.0, 1e6));
      }
    default:
      return Value(RandomString(rng));
  }
}

std::string ReadAll(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

/// Byte-level comparison of two snapshot directories.
void ExpectSameSnapshotBytes(const std::string& a, const std::string& b) {
  std::vector<std::string> names_a, names_b;
  for (const auto& e : fs::directory_iterator(a)) {
    names_a.push_back(e.path().filename().string());
  }
  for (const auto& e : fs::directory_iterator(b)) {
    names_b.push_back(e.path().filename().string());
  }
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b);
  for (const std::string& name : names_a) {
    EXPECT_EQ(ReadAll(fs::path(a) / name), ReadAll(fs::path(b) / name))
        << name;
  }
}

TEST(SnapshotRoundTripPropertyTest, RandomDatabasesRoundTripByteIdentically) {
  constexpr int kIterations = 25;
  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(0xF00D + static_cast<uint64_t>(iter));

    Database db;
    size_t num_tables = 1 + rng.NextBounded(3);
    for (size_t t = 0; t < num_tables; ++t) {
      std::string table_name = "t" + std::to_string(t);
      bool with_pk = rng.NextBool(0.7);
      std::vector<Column> cols;
      cols.emplace_back("id", ValueType::kInt, false);
      size_t extra = 1 + rng.NextBounded(5);
      for (size_t c = 0; c < extra; ++c) {
        ValueType type = std::vector<ValueType>{
            ValueType::kBool, ValueType::kInt, ValueType::kDouble,
            ValueType::kString}[rng.NextBounded(4)];
        cols.emplace_back("c" + std::to_string(c), type, rng.NextBool(0.7));
      }
      auto table = db.CreateTable(
          table_name, Schema(cols),
          with_pk ? std::vector<std::string>{"id"}
                  : std::vector<std::string>{});
      ASSERT_TRUE(table.ok());

      size_t rows = rng.NextBounded(30);
      for (size_t r = 0; r < rows; ++r) {
        Row row;
        row.push_back(Value(static_cast<int64_t>(r)));
        for (size_t c = 1; c < cols.size(); ++c) {
          row.push_back(RandomValue(rng, cols[c].type, cols[c].nullable));
        }
        ASSERT_TRUE((*table)->Insert(std::move(row)).ok());
      }
      // Tombstone a few rows so slot layout (not just content) must survive.
      for (RowId id : (*table)->LiveRowIds()) {
        if (rng.NextBool(0.15)) {
          ASSERT_TRUE((*table)->Delete(id).ok());
        }
      }
    }

    std::string dir1 = TempDir("prop1_" + std::to_string(iter));
    std::string dir2 = TempDir("prop2_" + std::to_string(iter));
    ASSERT_TRUE(SaveDatabase(db, dir1).ok());
    auto loaded = LoadDatabase(dir1);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // Loaded contents equal the original, slot for slot.
    for (const std::string& name : db.TableNames()) {
      Table* orig = *db.GetTable(name);
      Table* copy = *(*loaded)->GetTable(name);
      ASSERT_EQ(orig->size(), copy->size()) << name;
      ASSERT_EQ(orig->LiveRowIds(), copy->LiveRowIds()) << name;
      orig->Scan([&](RowId id, const Row& row) {
        const Row* got = copy->Get(id);
        ASSERT_NE(got, nullptr);
        ASSERT_EQ(got->size(), row.size());
        for (size_t i = 0; i < row.size(); ++i) {
          EXPECT_EQ((*got)[i], row[i]) << name << " row " << id << " col "
                                       << i;
          EXPECT_EQ((*got)[i].type(), row[i].type())
              << name << " row " << id << " col " << i;
        }
      });
    }

    // Saving the loaded copy is byte-identical to the first snapshot.
    ASSERT_TRUE(SaveDatabase(**loaded, dir2).ok());
    ExpectSameSnapshotBytes(dir1, dir2);
  }
}

// --------------------------------------------- mid-save failure regression

TEST(SnapshotFaultTest, FailedSaveLeavesExistingSnapshotIntact) {
  std::string dir = TempDir("failed_save");
  Database db;
  auto t = db.CreateTable("t", Schema({{"id", ValueType::kInt, false},
                                       {"s", ValueType::kString, true}}),
                          {"id"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db.Insert("t", {Value(1), Value("original")}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir).ok());

  // Mutate, then fail each possible write of the next save. Whatever the
  // kill point, the on-disk snapshot must still load as the original.
  ASSERT_TRUE(db.Insert("t", {Value(2), Value("newer")}).ok());
  for (uint64_t nth = 1; nth <= 3; ++nth) {
    FaultInjector::Default().Arm(FaultInjector::Kind::kFail, nth);
    EXPECT_FALSE(SaveDatabase(db, dir).ok()) << nth;
    FaultInjector::Default().Disarm();

    auto loaded = LoadDatabase(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    Table* lt = *(*loaded)->GetTable("t");
    EXPECT_EQ(lt->size(), 1u) << nth;
    EXPECT_TRUE(lt->FindByPrimaryKey({Value(1)}).ok());
  }

  // A truncating fault (torn file) must not publish either.
  FaultInjector::Default().Arm(FaultInjector::Kind::kTruncate, 1, 4);
  EXPECT_FALSE(SaveDatabase(db, dir).ok());
  FaultInjector::Default().Disarm();
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*(*loaded)->GetTable("t"))->size(), 1u);

  // With no fault armed the save goes through and picks up the new row.
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  auto final_loaded = LoadDatabase(dir);
  ASSERT_TRUE(final_loaded.ok());
  EXPECT_EQ((*(*final_loaded)->GetTable("t"))->size(), 2u);
}

TEST(SnapshotFaultTest, FirstSaveFailureLeavesNoSnapshot) {
  std::string dir = TempDir("failed_first_save");
  Database db;
  auto t = db.CreateTable("t", Schema({{"id", ValueType::kInt, false}}),
                          {"id"});
  ASSERT_TRUE(t.ok());
  FaultInjector::Default().Arm(FaultInjector::Kind::kFail, 1);
  EXPECT_FALSE(SaveDatabase(db, dir).ok());
  FaultInjector::Default().Disarm();
  EXPECT_FALSE(fs::exists(dir));
  EXPECT_EQ(LoadDatabase(dir).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace courserank::storage
