// Morsel-parallel execution equivalence tests (DESIGN.md §11). The
// contract under test: for every plan, parallel execution produces a
// relation byte-identical to serial execution — same schema, same rows,
// same order, same value types — and the same error when evaluation fails.
// Also covers planner rewrites (scan pushdown, bounded top-k) and the
// workflow optimizer, which must never change results.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/strategies.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "query/plan.h"
#include "query/sql_engine.h"
#include "query/sql_parser.h"
#include "social/site.h"
#include "storage/database.h"

namespace courserank {
namespace {

using flexrecs::FlexRecsEngine;
using gen::GenConfig;
using gen::Generator;
using query::ExecOptions;
using query::ParamMap;
using query::PlannerOptions;
using query::Relation;
using query::SqlEngine;
using storage::Database;
using storage::Schema;
using storage::Value;
using storage::ValueType;

/// Aggressive fan-out: tiny morsels, no serial cutoff, and an explicit
/// multi-worker pool — every operator takes its parallel path even on toy
/// inputs and single-CPU machines (operators skip fan-out when the pool has
/// at most one worker, and SharedThreadPool() may have none here).
ExecOptions Aggressive(size_t morsel_rows = 3) {
  static ThreadPool pool(3);
  ExecOptions o;
  o.parallel = true;
  o.morsel_rows = morsel_rows;
  o.min_parallel_rows = 0;
  o.pool = &pool;
  return o;
}

/// The row-at-a-time serial oracle: no fan-out, no columnar fast paths,
/// and the historical unordered_map hash operators instead of the
/// RowKeyTable. Comparing it against Aggressive() (columnar and flat_hash
/// stay on by default) makes every equivalence test in this file a
/// row-vs-columnar AND map-vs-flat-hash differential too.
ExecOptions Serial() {
  ExecOptions o;
  o.parallel = false;
  o.columnar = false;
  o.flat_hash = false;
  return o;
}

/// Columnar fast paths without parallelism — isolates the vectorized
/// kernels and the memoized recommend scorer from morsel fan-out.
ExecOptions ColumnarSerial() {
  ExecOptions o;
  o.parallel = false;
  o.columnar = true;
  return o;
}

/// The fusion-tier interpreter oracle (DESIGN.md §16): fusion groups still
/// form, but every FusedPipelineNode executes its stages as the chain of
/// ordinary interpreted operators instead of the fused chunk pass.
ExecOptions UnfusedSerial() {
  ExecOptions o = Serial();
  o.fuse = false;
  return o;
}

/// Byte-identity check: schemas equal, rows in the same order, every cell
/// the same type and value. (Value::operator== treats INT 1 and DOUBLE 1.0
/// as equal, so the type is compared explicitly.)
void ExpectSameRelation(const Relation& a, const Relation& b,
                        const std::string& what) {
  ASSERT_EQ(a.schema.num_columns(), b.schema.num_columns()) << what;
  for (size_t c = 0; c < a.schema.num_columns(); ++c) {
    EXPECT_EQ(a.schema.column(c).name, b.schema.column(c).name) << what;
    EXPECT_EQ(a.schema.column(c).type, b.schema.column(c).type) << what;
  }
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << what << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_EQ(a.rows[r][c].type(), b.rows[r][c].type())
          << what << " row " << r << " col " << c;
      EXPECT_TRUE(a.rows[r][c] == b.rows[r][c])
          << what << " row " << r << " col " << c << ": "
          << a.rows[r][c].ToString() << " vs " << b.rows[r][c].ToString();
    }
  }
}

// ----------------------------------------------------- morsel boundaries

class MorselBoundaryTest : public ::testing::Test {
 protected:
  /// A one-column table with `n` sequential ints.
  void Fill(size_t n) {
    db_ = std::make_unique<Database>();
    auto table = db_->CreateTable(
        "t", Schema({{"v", ValueType::kInt, true}}), {});
    ASSERT_TRUE(table.ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          (*table)->Insert({Value(static_cast<int64_t>(i))}).ok());
    }
  }

  Relation RunSql(const std::string& sql, const ExecOptions& exec) {
    SqlEngine engine(db_.get());
    engine.set_exec_options(exec);
    auto rel = engine.Execute(sql);
    EXPECT_TRUE(rel.ok()) << sql << " -> " << rel.status().ToString();
    return rel.ok() ? std::move(*rel) : Relation{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(MorselBoundaryTest, EdgeRowCountsMatchSerial) {
  const size_t kMorsel = 4;
  // 0, 1, and ±1 around every morsel boundary up to a few morsels, plus a
  // count above ThreadPool::kMaxMorsels * morsel_rows (morsels grow).
  const size_t counts[] = {0,  1,  kMorsel - 1, kMorsel, kMorsel + 1,
                           2 * kMorsel - 1, 2 * kMorsel, 2 * kMorsel + 1,
                           ThreadPool::kMaxMorsels * kMorsel + 5};
  for (size_t n : counts) {
    Fill(n);
    const std::string sql =
        "SELECT v, v * 2 AS dbl FROM t WHERE v % 3 <> 1";
    Relation serial = RunSql(sql, Serial());
    Relation parallel = RunSql(sql, Aggressive(kMorsel));
    ExpectSameRelation(serial, parallel, "n=" + std::to_string(n));
    Relation columnar = RunSql(sql, ColumnarSerial());
    ExpectSameRelation(serial, columnar,
                       "columnar n=" + std::to_string(n));
  }
}

TEST_F(MorselBoundaryTest, ExplicitPoolMatchesShared) {
  Fill(101);
  ThreadPool pool(3);
  ExecOptions with_pool = Aggressive(5);
  with_pool.pool = &pool;
  const std::string sql = "SELECT v FROM t WHERE v % 2 = 0 ORDER BY v DESC";
  ExpectSameRelation(RunSql(sql, Serial()), RunSql(sql, with_pool),
                     "explicit pool");
}

TEST_F(MorselBoundaryTest, MidMorselErrorMatchesSerialError) {
  // Row 9 (second morsel of 4) divides by zero; serial stops at the first
  // failing row, and the parallel merge must surface the same morsel-order
  // first error.
  Fill(20);
  const std::string sql = "SELECT 100 / (v - 9) FROM t";
  SqlEngine serial_engine(db_.get());
  serial_engine.set_exec_options(Serial());
  SqlEngine parallel_engine(db_.get());
  parallel_engine.set_exec_options(Aggressive(4));
  auto serial = serial_engine.Execute(sql);
  auto parallel = parallel_engine.Execute(sql);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().code(), parallel.status().code());
  EXPECT_EQ(serial.status().message(), parallel.status().message());
}

TEST_F(MorselBoundaryTest, JoinAndDistinctAndUnionMatchSerial) {
  Fill(37);
  const std::string queries[] = {
      "SELECT a.v, b.v FROM t a JOIN t b ON a.v = b.v WHERE a.v < 30",
      "SELECT DISTINCT v % 5 AS m FROM t ORDER BY m",
      "SELECT a.v, b.v FROM t a LEFT JOIN t b ON a.v = b.v * 2",
  };
  for (const std::string& sql : queries) {
    ExpectSameRelation(RunSql(sql, Serial()), RunSql(sql, Aggressive(4)),
                       sql);
  }
}

// ------------------------------------------------ TopN vs Sort + Limit

TEST(TopNTest, MatchesSortLimitIncludingTies) {
  Rng rng(271828);
  Database db;
  auto table = db.CreateTable("t", Schema({{"k", ValueType::kInt, true},
                                           {"v", ValueType::kInt, true}}),
                              {});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 500; ++i) {
    // Heavy ties on k: stability (original order within equal keys) must
    // survive the heap.
    ASSERT_TRUE(
        (*table)
            ->Insert({Value(static_cast<int64_t>(rng.NextBounded(7))),
                      Value(i)})
            .ok());
  }
  for (bool descending : {false, true}) {
    for (size_t limit : {0u, 1u, 3u, 17u, 499u, 500u, 900u}) {
      for (size_t offset : {0u, 2u, 120u}) {
        auto make = [&](bool top_n) {
          std::vector<query::SortKey> keys;
          auto expr = query::ParseExpression("k");
          EXPECT_TRUE(expr.ok());
          keys.push_back({std::move(*expr), !descending});
          auto scan = query::MakeTableScan("t");
          return top_n ? query::MakeTopN(std::move(scan), std::move(keys),
                                         limit, offset)
                       : query::MakeLimit(
                             query::MakeSort(std::move(scan),
                                             std::move(keys)),
                             limit, offset);
        };
        auto sorted = query::Run(*make(false), db);
        auto topped = query::Run(*make(true), db);
        ASSERT_TRUE(sorted.ok());
        ASSERT_TRUE(topped.ok());
        ExpectSameRelation(*sorted, *topped,
                           "limit=" + std::to_string(limit) +
                               " offset=" + std::to_string(offset) +
                               " desc=" + std::to_string(descending));
      }
    }
  }
}

// ------------------------------------------- pushdown planner rewrites

class PushdownEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

/// Every query must return the same relation with and without scan
/// pushdown + bounded top-k, serial and parallel.
TEST_P(PushdownEquivalenceTest, RewrittenPlansMatchPlainPlans) {
  auto site = Generator(GenConfig::Tiny(GetParam())).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  Database& db = (*site)->db();

  SqlEngine plain(&db);
  plain.set_planner_options(PlannerOptions{false, false});
  plain.set_exec_options(Serial());
  SqlEngine pushed(&db);
  pushed.set_planner_options(PlannerOptions{true, true});
  pushed.set_exec_options(Aggressive(5));
  // Pushdown + vectorized chunk scan, serially: isolates the compiled
  // predicate kernels from morsel fan-out.
  SqlEngine pushed_columnar(&db);
  pushed_columnar.set_planner_options(PlannerOptions{true, true});
  pushed_columnar.set_exec_options(ColumnarSerial());
  // Full planner (pushdown, Distinct elision, build-side choice) with the
  // runtime claim checker on: the planner's static claims must hold on
  // every rewritten plan's actual output.
  SqlEngine audited(&db);
  ExecOptions audited_opts = Serial();
  audited_opts.check_static_claims = true;
  audited.set_exec_options(audited_opts);
  // Fusion tier off at both layers: no join-side conjunct pushdown or
  // Filter+Project collapsing in the planner, and any FusedPipelineNode
  // that still forms runs interpreted. The oracle for the fused plans the
  // default engines produce.
  SqlEngine unfused(&db);
  PlannerOptions no_fuse;
  no_fuse.fuse_pipelines = false;
  unfused.set_planner_options(no_fuse);
  unfused.set_exec_options(UnfusedSerial());

  const std::string queries[] = {
      "SELECT * FROM Courses",
      "SELECT Title FROM Courses WHERE Units >= 3 ORDER BY Title LIMIT 7",
      "SELECT Title, Number FROM Courses WHERE Number < 200 "
      "ORDER BY Number DESC, Title LIMIT 5 OFFSET 2",
      "SELECT DISTINCT Units FROM Courses ORDER BY Units",
      "SELECT * FROM Ratings WHERE Score >= 3 LIMIT 9",
      "SELECT Day, COUNT(*) AS n, AVG(Score) AS mean FROM Ratings "
      "GROUP BY Day ORDER BY n DESC LIMIT 3",
      "SELECT c.Title, r.Score FROM Courses c "
      "JOIN Ratings r ON c.CourseID = r.CourseID "
      "WHERE r.Score > 2 ORDER BY r.Score DESC, c.Title LIMIT 10",
      "SELECT UPPER(Title) AS t FROM Courses WHERE Title LIKE '%a%' "
      "ORDER BY t LIMIT 4",
      "SELECT Title FROM Courses ORDER BY Units LIMIT 0",
      // Join-side conjunct pushdown: per-side conjuncts split into the
      // scans, cross-side and non-compilable conjuncts stay residual.
      "SELECT c.Title, r.Score FROM Courses c "
      "JOIN Ratings r ON c.CourseID = r.CourseID "
      "WHERE r.Score > 2 AND c.Units >= 3 ORDER BY r.Score DESC, c.Title "
      "LIMIT 10",
      "SELECT c.Title FROM Courses c "
      "JOIN Ratings r ON c.CourseID = r.CourseID "
      "WHERE r.Score >= 4 AND c.Units < r.Score + 2 ORDER BY c.Title "
      "LIMIT 6",
      "SELECT c.Title, o.Year FROM Courses c "
      "JOIN Offerings o ON c.CourseID = o.CourseID "
      "WHERE o.Year = 2007 AND c.Number < 300 ORDER BY o.Year, c.Title "
      "LIMIT 8",
  };
  for (const std::string& sql : queries) {
    auto a = plain.Execute(sql);
    auto b = pushed.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql << " -> " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << " -> " << b.status().ToString();
    ExpectSameRelation(*a, *b, sql);
    auto c = pushed_columnar.Execute(sql);
    ASSERT_TRUE(c.ok()) << sql << " -> " << c.status().ToString();
    ExpectSameRelation(*a, *c, "columnar: " + sql);
    auto d = audited.Execute(sql);
    ASSERT_TRUE(d.ok()) << sql << " -> " << d.status().ToString();
    ExpectSameRelation(*a, *d, "claims-checked: " + sql);
    auto e = unfused.Execute(sql);
    ASSERT_TRUE(e.ok()) << sql << " -> " << e.status().ToString();
    ExpectSameRelation(*a, *e, "unfused: " + sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushdownEquivalenceTest,
                         ::testing::Values(21, 22, 23));

// ------------------------------------------- strategies & the optimizer

struct StrategyCase {
  const char* name;
  std::string dsl;
  ParamMap params;
};

/// Every shipped strategy with working parameters against the given site.
std::vector<StrategyCase> ShippedStrategies(Generator& generator,
                                            social::CourseRankSite& site) {
  // A student with enough ratings for the CF strategies.
  const auto* ratings = site.db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  int64_t student = counts.empty() ? 0 : counts.begin()->first;
  for (const auto& [s, count] : counts) {
    if (count >= 3) {
      student = s;
      break;
    }
  }
  ParamMap by_student{{"student", Value(student)}};
  return {
      {"related_courses", flexrecs::strategies::RelatedCoursesDsl(),
       {{"title", Value("Introduction to Programming")},
        {"year", Value(int64_t{2005})}}},
      {"user_cf", flexrecs::strategies::UserCfDsl(), by_student},
      {"weighted_user_cf", flexrecs::strategies::WeightedUserCfDsl(),
       by_student},
      {"grade_cf", flexrecs::strategies::GradeCfDsl(), by_student},
      {"major_popular", flexrecs::strategies::MajorPopularDsl(),
       {{"major", Value(generator.artifacts().departments[0])}}},
      {"recommend_major", flexrecs::strategies::RecommendMajorDsl(),
       by_student},
      {"best_quarter", flexrecs::strategies::BestQuarterDsl(),
       {{"course", Value(generator.artifacts().calculus)}}},
  };
}

class StrategyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

/// Serial vs morsel-parallel execution of every shipped strategy.
TEST_P(StrategyEquivalenceTest, ParallelMatchesSerial) {
  Generator generator(GenConfig::Tiny(GetParam()));
  auto site = generator.Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  for (const StrategyCase& sc : ShippedStrategies(generator, **site)) {
    engine.set_exec_options(Serial());
    auto serial = engine.RunStrategy(sc.name, sc.params);
    ASSERT_TRUE(serial.ok())
        << sc.name << " -> " << serial.status().ToString();
    engine.set_exec_options(Aggressive(4));
    auto parallel = engine.RunStrategy(sc.name, sc.params);
    ASSERT_TRUE(parallel.ok())
        << sc.name << " -> " << parallel.status().ToString();
    ExpectSameRelation(*serial, *parallel, sc.name);
    // Columnar serial: the memoized recommend scorer against the per-pair
    // row oracle, with fan-out out of the picture.
    engine.set_exec_options(ColumnarSerial());
    auto columnar = engine.RunStrategy(sc.name, sc.params);
    ASSERT_TRUE(columnar.ok())
        << sc.name << " -> " << columnar.status().ToString();
    ExpectSameRelation(*serial, *columnar,
                       std::string("columnar: ") + sc.name);
    // Fusion differential: the fused chunk pass against the interpreted
    // stage chain must be byte-identical.
    engine.set_exec_options(UnfusedSerial());
    auto unfused = engine.RunStrategy(sc.name, sc.params);
    ASSERT_TRUE(unfused.ok())
        << sc.name << " -> " << unfused.status().ToString();
    ExpectSameRelation(*serial, *unfused,
                       std::string("unfused: ") + sc.name);
    // Shipped strategies must also satisfy their own inferred claims.
    ExecOptions audited_opts = Serial();
    audited_opts.check_static_claims = true;
    engine.set_exec_options(audited_opts);
    auto audited = engine.RunStrategy(sc.name, sc.params);
    ASSERT_TRUE(audited.ok())
        << sc.name << " -> " << audited.status().ToString();
    ExpectSameRelation(*serial, *audited,
                       std::string("claims-checked: ") + sc.name);
  }
}

/// Optimizer-rewritten workflows (TopK fusion, Select pushdowns) must
/// produce identical relations to the raw trees for every shipped
/// strategy — the end-to-end guarantee behind scan pushdown.
TEST_P(StrategyEquivalenceTest, OptimizedWorkflowsMatchRaw) {
  Generator generator(GenConfig::Tiny(GetParam()));
  auto site = generator.Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  engine.set_exec_options(Aggressive(4));
  for (const StrategyCase& sc : ShippedStrategies(generator, **site)) {
    auto raw = flexrecs::ParseWorkflow(sc.dsl);
    ASSERT_TRUE(raw.ok()) << sc.name;
    auto raw_rel = engine.Run(**raw, sc.params);
    ASSERT_TRUE(raw_rel.ok())
        << sc.name << " -> " << raw_rel.status().ToString();

    auto to_optimize = flexrecs::ParseWorkflow(sc.dsl);
    ASSERT_TRUE(to_optimize.ok()) << sc.name;
    flexrecs::NodePtr optimized =
        flexrecs::OptimizeWorkflow(std::move(*to_optimize));
    auto opt_rel = engine.Run(*optimized, sc.params);
    ASSERT_TRUE(opt_rel.ok())
        << sc.name << " -> " << opt_rel.status().ToString();
    ExpectSameRelation(*raw_rel, *opt_rel, sc.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Values(11, 31));

// ------------------------------------ randomized workflows (soundness gen)

/// Random workflow DSL over the canonical schema — same grammar as
/// property_test.cc's analyzer corpus, but sabotage-free: every emitted
/// workflow is meant to execute.
class RandomWorkflowGen {
 public:
  explicit RandomWorkflowGen(Rng* rng) : rng_(*rng) {}

  std::string Next() {
    std::string dsl;
    dsl += "base = TABLE " + TableName() + "\n";
    std::string cur = "base";
    size_t ops = 1 + rng_.NextBounded(3);
    for (size_t i = 0; i < ops; ++i) {
      switch (rng_.NextBounded(4)) {
        case 0:
          dsl += "s" + std::to_string(i) + " = SELECT " + cur + " WHERE " +
                 Predicate() + "\n";
          cur = "s" + std::to_string(i);
          break;
        case 1:
          dsl += "e" + std::to_string(i) + " = EXTEND " + cur +
                 " WITH base ON " + ColumnName() + " = " + ColumnName() +
                 " COLLECT " + ColumnName() + " AS bag" +
                 std::to_string(i) + "\n";
          cur = "e" + std::to_string(i);
          break;
        case 2:
          dsl += "r" + std::to_string(i) + " = RECOMMEND " + cur +
                 " AGAINST base USING " + Similarity() + "(" +
                 ColumnName() + ", " + ColumnName() +
                 ") AGG max SCORE sc" + std::to_string(i) + " TOP 5\n";
          cur = "r" + std::to_string(i);
          break;
        default:
          dsl += "t" + std::to_string(i) + " = TOPK " + cur + " BY " +
                 ColumnName() + " DESC LIMIT 5\n";
          cur = "t" + std::to_string(i);
          break;
      }
    }
    dsl += "RETURN " + cur + "\n";
    return dsl;
  }

 private:
  std::string TableName() {
    static const char* kTables[] = {"Students", "Courses", "Ratings",
                                    "Offerings"};
    table_ = rng_.NextBounded(4);
    return kTables[table_];
  }
  std::string ColumnName() {
    static const std::vector<const char*> kColumns[] = {
        {"SuID", "Name", "Class", "GPA"},
        {"CourseID", "Title", "Number", "Units"},
        {"SuID", "CourseID", "Score", "Day"},
        {"OfferingID", "CourseID", "Year", "Term"}};
    const auto& cols = kColumns[table_];
    return cols[rng_.NextBounded(cols.size())];
  }
  std::string Similarity() {
    static const char* kSims[] = {"exact", "numeric_proximity",
                                  "token_jaccard"};
    return kSims[rng_.NextBounded(3)];
  }
  std::string Predicate() {
    static const char* kOps[] = {"=", "<>", "<", ">="};
    std::string lhs = ColumnName();
    std::string rhs;
    switch (rng_.NextBounded(3)) {
      case 0:
        rhs = std::to_string(rng_.NextBounded(100));
        break;
      case 1:
        rhs = "'x" + std::to_string(rng_.NextBounded(10)) + "'";
        break;
      default:
        rhs = ColumnName();
        break;
    }
    return lhs + " " + kOps[rng_.NextBounded(4)] + " " + rhs;
  }
  Rng& rng_;
  size_t table_ = 0;
};

class RandomWorkflowEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

/// Any analyzer-accepted random workflow must produce byte-identical
/// results serially and with aggressive morsel fan-out, raw and optimized.
TEST_P(RandomWorkflowEquivalenceTest, SerialParallelOptimizedAgree) {
  auto site = Generator(GenConfig::Tiny(GetParam())).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  analysis::Analyzer analyzer(&(*site)->db(), &engine.library());

  Rng rng(GetParam() * 6151 + 3);
  RandomWorkflowGen gen(&rng);
  int executed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string dsl = gen.Next();
    if (analyzer.LintDsl(dsl).has_errors()) continue;
    auto parsed = flexrecs::ParseWorkflow(dsl);
    ASSERT_TRUE(parsed.ok()) << dsl;

    engine.set_exec_options(Serial());
    auto serial = engine.Run(**parsed, {});
    ASSERT_TRUE(serial.ok()) << dsl << "\n" << serial.status().ToString();

    engine.set_exec_options(Aggressive(3));
    auto parallel = engine.Run(**parsed, {});
    ASSERT_TRUE(parallel.ok()) << dsl << "\n"
                               << parallel.status().ToString();
    ExpectSameRelation(*serial, *parallel, dsl);

    engine.set_exec_options(ColumnarSerial());
    auto columnar = engine.Run(**parsed, {});
    ASSERT_TRUE(columnar.ok()) << dsl << "\n"
                               << columnar.status().ToString();
    ExpectSameRelation(*serial, *columnar, "columnar: " + dsl);

    // Fusion differential, serial and parallel: random workflows are where
    // σ/π/ε fusion groups actually form, so the fused chunk pass runs
    // against the interpreted stage chain on every accepted corpus member.
    engine.set_exec_options(UnfusedSerial());
    auto unfused = engine.Run(**parsed, {});
    ASSERT_TRUE(unfused.ok()) << dsl << "\n" << unfused.status().ToString();
    ExpectSameRelation(*serial, *unfused, "unfused: " + dsl);

    ExecOptions unfused_parallel = Aggressive(3);
    unfused_parallel.fuse = false;
    engine.set_exec_options(unfused_parallel);
    auto unfused_par = engine.Run(**parsed, {});
    ASSERT_TRUE(unfused_par.ok())
        << dsl << "\n" << unfused_par.status().ToString();
    ExpectSameRelation(*serial, *unfused_par, "unfused parallel: " + dsl);

    // Static-claims soundness: every property the analyzer inferred for
    // this workflow must hold on its actual output (CR510 otherwise).
    ExecOptions audited_opts = Serial();
    audited_opts.check_static_claims = true;
    engine.set_exec_options(audited_opts);
    auto audited = engine.Run(**parsed, {});
    ASSERT_TRUE(audited.ok()) << dsl << "\n" << audited.status().ToString();
    ExpectSameRelation(*serial, *audited, "claims-checked: " + dsl);

    auto reparsed = flexrecs::ParseWorkflow(dsl);
    ASSERT_TRUE(reparsed.ok()) << dsl;
    auto opt_rel =
        engine.Run(*flexrecs::OptimizeWorkflow(std::move(*reparsed)), {});
    ASSERT_TRUE(opt_rel.ok()) << dsl << "\n" << opt_rel.status().ToString();
    ExpectSameRelation(*serial, *opt_rel, "optimized: " + dsl);
    ++executed;
  }
  EXPECT_GT(executed, 15) << "corpus skewed toward rejection";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkflowEquivalenceTest,
                         ::testing::Values(41, 42, 43));

// ----------------------------- hash-key semantics regressions (§14)
//
// SQLite-checked semantics for the three bugs the RowKeyTable rebuild
// fixed: int-tagged doubles group with their integer twins, NULL keys form
// one GROUP BY / DISTINCT group but never match as join keys, and a global
// aggregate over zero rows still emits its row. Every case runs on both
// the flat RowKeyTable path and the unordered_map oracle and must agree.

query::PlanPtr ValuesPlan(const Relation& rel) {
  Relation copy;
  copy.schema = rel.schema;
  copy.rows = rel.rows;
  return query::MakeValuesOnce(std::move(copy));
}

Relation ExecutePlan(query::PlanPtr plan, const ExecOptions& exec) {
  query::ExecContext ctx;
  ctx.exec = exec;
  auto rel = plan->Execute(ctx);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return rel.ok() ? std::move(*rel) : Relation{};
}

ExecOptions MapOracle() {
  ExecOptions o = Serial();
  return o;  // flat_hash already false
}

ExecOptions FlatSerial() {
  ExecOptions o;
  o.parallel = false;
  return o;  // flat_hash/columnar default true
}

TEST(HashKeySemanticsTest, IntTaggedDoubleKeysFormOneGroup) {
  Relation in;
  in.schema = Schema({{"k", ValueType::kInt, true}});
  in.rows = {{Value(int64_t{1})},
             {Value(1.0)},
             {Value(2.0)},
             {Value(int64_t{2})},
             {Value(int64_t{1})}};

  for (const ExecOptions& exec :
       {FlatSerial(), MapOracle(), Aggressive(2)}) {
    Relation distinct =
        ExecutePlan(query::MakeDistinct(ValuesPlan(in)), exec);
    ASSERT_EQ(distinct.rows.size(), 2u);
    // First occurrence is the representative: INT 1, then DOUBLE 2.0.
    EXPECT_EQ(distinct.rows[0][0].type(), ValueType::kInt);
    EXPECT_TRUE(distinct.rows[0][0] == Value(int64_t{1}));
    EXPECT_EQ(distinct.rows[1][0].type(), ValueType::kDouble);
    EXPECT_TRUE(distinct.rows[1][0] == Value(int64_t{2}));

    auto make_agg = [&] {
      std::vector<query::ProjectItem> by;
      auto expr = query::ParseExpression("k");
      EXPECT_TRUE(expr.ok());
      by.push_back({std::move(*expr), "k"});
      std::vector<query::AggregateItem> aggs;
      aggs.push_back({query::AggFn::kCountStar, nullptr, "n"});
      return query::MakeAggregate(ValuesPlan(in), std::move(by),
                                  std::move(aggs));
    };
    Relation grouped = ExecutePlan(make_agg(), exec);
    ASSERT_EQ(grouped.rows.size(), 2u);
    EXPECT_TRUE(grouped.rows[0][1] == Value(int64_t{3}));  // 1, 1.0, 1
    EXPECT_TRUE(grouped.rows[1][1] == Value(int64_t{2}));  // 2.0, 2
  }
}

TEST(HashKeySemanticsTest, NullKeysGroupTogetherButNeverJoin) {
  Relation in;
  in.schema = Schema({{"k", ValueType::kInt, true}});
  in.rows = {{Value::Null()}, {Value(int64_t{1})}, {Value::Null()}};

  for (const ExecOptions& exec :
       {FlatSerial(), MapOracle(), Aggressive(1)}) {
    // One NULL group in DISTINCT...
    Relation distinct =
        ExecutePlan(query::MakeDistinct(ValuesPlan(in)), exec);
    ASSERT_EQ(distinct.rows.size(), 2u);
    EXPECT_TRUE(distinct.rows[0][0].is_null());

    // ...and in GROUP BY: (NULL, 2), (1, 1).
    auto make_agg = [&] {
      std::vector<query::ProjectItem> by;
      auto expr = query::ParseExpression("k");
      EXPECT_TRUE(expr.ok());
      by.push_back({std::move(*expr), "k"});
      std::vector<query::AggregateItem> aggs;
      aggs.push_back({query::AggFn::kCountStar, nullptr, "n"});
      return query::MakeAggregate(ValuesPlan(in), std::move(by),
                                  std::move(aggs));
    };
    Relation grouped = ExecutePlan(make_agg(), exec);
    ASSERT_EQ(grouped.rows.size(), 2u);
    EXPECT_TRUE(grouped.rows[0][0].is_null());
    EXPECT_TRUE(grouped.rows[0][1] == Value(int64_t{2}));
    EXPECT_TRUE(grouped.rows[1][1] == Value(int64_t{1}));

    // ...but a NULL join key matches nothing (inner drops, left pads).
    Relation left;
    left.schema = Schema({{"lk", ValueType::kInt, true}});
    left.rows = {{Value::Null()}, {Value(int64_t{1})}};
    Relation right;
    right.schema = Schema({{"rk", ValueType::kInt, true}});
    right.rows = {{Value::Null()}, {Value(int64_t{1})}};
    auto make_join = [&](query::JoinType type) {
      auto cond = query::ParseExpression("lk = rk");
      EXPECT_TRUE(cond.ok());
      return query::MakeJoin(ValuesPlan(left), ValuesPlan(right),
                             std::move(*cond), type);
    };
    Relation inner = ExecutePlan(make_join(query::JoinType::kInner), exec);
    ASSERT_EQ(inner.rows.size(), 1u);
    EXPECT_TRUE(inner.rows[0][0] == Value(int64_t{1}));
    Relation outer = ExecutePlan(make_join(query::JoinType::kLeft), exec);
    ASSERT_EQ(outer.rows.size(), 2u);
    EXPECT_TRUE(outer.rows[0][0].is_null());  // NULL key row, padded
    EXPECT_TRUE(outer.rows[0][1].is_null());
    EXPECT_TRUE(outer.rows[1][1] == Value(int64_t{1}));
  }
}

TEST(HashKeySemanticsTest, ZeroRowGlobalAggregateEmitsOneRow) {
  Database db;
  auto table =
      db.CreateTable("t", Schema({{"v", ValueType::kInt, true}}), {});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*table)->Insert({Value(i)}).ok());
  }
  const std::string sql =
      "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS mn "
      "FROM t WHERE v > 1000";
  for (const ExecOptions& exec :
       {FlatSerial(), MapOracle(), Aggressive(2)}) {
    SqlEngine engine(&db);
    engine.set_exec_options(exec);
    auto rel = engine.Execute(sql);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    ASSERT_EQ(rel->rows.size(), 1u);
    EXPECT_TRUE(rel->rows[0][0] == Value(int64_t{0}));
    EXPECT_TRUE(rel->rows[0][1].is_null());
    EXPECT_TRUE(rel->rows[0][2].is_null());
    EXPECT_TRUE(rel->rows[0][3].is_null());
  }
}

/// Mixed-key relations through Distinct / Aggregate / Join / Union on the
/// flat path vs the map oracle, serial vs aggressive fan-out: all four
/// executions must be byte-identical.
TEST(HashKeySemanticsTest, FlatAndMapPathsAgreeOnMixedKeys) {
  Rng rng(88);
  Relation in;
  in.schema = Schema({{"k", ValueType::kInt, true},
                      {"v", ValueType::kInt, true}});
  for (int64_t i = 0; i < 300; ++i) {
    Value key;
    switch (rng.NextBounded(5)) {
      case 0: key = Value::Null(); break;
      case 1: key = Value(rng.NextInt(-3, 3)); break;
      case 2: key = Value(static_cast<double>(rng.NextInt(-3, 3))); break;
      case 3: key = Value(rng.NextInt(-3, 3) + 0.5); break;
      default: key = Value("s" + std::to_string(rng.NextBounded(4))); break;
    }
    in.rows.push_back({std::move(key), Value(i)});
  }
  auto make_plans = [&]() -> std::vector<query::PlanPtr> {
    std::vector<query::PlanPtr> plans;
    plans.push_back(query::MakeDistinct(query::MakeProject(
        ValuesPlan(in), [] {
          std::vector<query::ProjectItem> items;
          auto expr = query::ParseExpression("k");
          EXPECT_TRUE(expr.ok());
          items.push_back({std::move(*expr), "k"});
          return items;
        }())));
    {
      std::vector<query::ProjectItem> by;
      auto expr = query::ParseExpression("k");
      EXPECT_TRUE(expr.ok());
      by.push_back({std::move(*expr), "k"});
      std::vector<query::AggregateItem> aggs;
      aggs.push_back({query::AggFn::kCountStar, nullptr, "n"});
      auto arg = query::ParseExpression("v");
      EXPECT_TRUE(arg.ok());
      aggs.push_back({query::AggFn::kSum, std::move(*arg), "s"});
      plans.push_back(query::MakeAggregate(ValuesPlan(in), std::move(by),
                                           std::move(aggs)));
    }
    return plans;
  };
  const ExecOptions options[] = {MapOracle(), FlatSerial(), Aggressive(3)};
  std::vector<Relation> base;
  for (auto& plan : make_plans()) {
    base.push_back(ExecutePlan(std::move(plan), options[0]));
  }
  for (size_t o = 1; o < 3; ++o) {
    auto plans = make_plans();
    for (size_t p = 0; p < plans.size(); ++p) {
      Relation got = ExecutePlan(std::move(plans[p]), options[o]);
      ExpectSameRelation(base[p], got,
                         "plan " + std::to_string(p) + " options " +
                             std::to_string(o));
    }
  }
}

// ------------------------------------------------------------- metrics

TEST(ExecMetricsTest, ParallelRunPopulatesCountersAndHistograms) {
  Database db;
  auto table =
      db.CreateTable("t", Schema({{"v", ValueType::kInt, true}}), {});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE((*table)->Insert({Value(i)}).ok());
  }
  SqlEngine engine(&db);
  engine.set_exec_options(Aggressive(4));
  auto rel = engine.Execute(
      "SELECT v FROM t WHERE v % 2 = 0 ORDER BY v DESC LIMIT 5");
  ASSERT_TRUE(rel.ok());

  std::string prom = obs::MetricsRegistry::Default().RenderPrometheus();
  for (const char* metric :
       {"cr_exec_morsels_total", "cr_exec_parallel_ops_total",
        "cr_exec_pushdown_rewrites_total", "cr_exec_scan_ns",
        "cr_exec_filter_ns", "cr_exec_topk_ns", "cr_exec_morsel_ns"}) {
    EXPECT_NE(prom.find(metric), std::string::npos) << metric;
  }
}

}  // namespace
}  // namespace courserank
