#include <gtest/gtest.h>

#include "query/expr.h"
#include "query/sql_parser.h"
#include "storage/schema.h"

namespace courserank::query {
namespace {

using storage::Column;
using storage::Value;
using storage::ValueType;

Schema TestSchema() {
  return Schema({{"i", ValueType::kInt, true},
                 {"d", ValueType::kDouble, true},
                 {"s", ValueType::kString, true},
                 {"b", ValueType::kBool, true}});
}

Row TestRow() {
  return {Value(10), Value(2.5), Value("Hello"), Value(true)};
}

/// Parses, binds against the test schema, and evaluates on the test row.
Result<Value> Eval(const std::string& text, const ParamMap* params = nullptr) {
  auto expr = ParseExpression(text);
  if (!expr.ok()) return expr.status();
  Schema schema = TestSchema();
  Status bound = (*expr)->Bind(schema, params);
  if (!bound.ok()) return bound;
  return (*expr)->Eval(TestRow());
}

TEST(ExprTest, Literals) {
  EXPECT_EQ(Eval("42")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Eval("4.5")->AsDouble(), 4.5);
  EXPECT_EQ(Eval("'abc'")->AsString(), "abc");
  EXPECT_EQ(Eval("TRUE")->AsBool(), true);
  EXPECT_EQ(Eval("false")->AsBool(), false);
  EXPECT_TRUE(Eval("NULL")->is_null());
}

TEST(ExprTest, StringEscapes) {
  EXPECT_EQ(Eval("'it''s'")->AsString(), "it's");
}

TEST(ExprTest, ColumnReferences) {
  EXPECT_EQ(Eval("i")->AsInt(), 10);
  EXPECT_DOUBLE_EQ(Eval("d")->AsDouble(), 2.5);
  EXPECT_EQ(Eval("S")->AsString(), "Hello");  // case-insensitive
}

TEST(ExprTest, UnknownColumnFailsAtBind) {
  auto r = Eval("nope");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(Eval("i + 5")->AsInt(), 15);
  EXPECT_EQ(Eval("i - 3")->AsInt(), 7);
  EXPECT_EQ(Eval("i * 2")->AsInt(), 20);
  EXPECT_EQ(Eval("i / 3")->AsInt(), 3);  // integer division
  EXPECT_EQ(Eval("i % 3")->AsInt(), 1);
}

TEST(ExprTest, MixedArithmeticWidensToDouble) {
  EXPECT_DOUBLE_EQ(Eval("i + d")->AsDouble(), 12.5);
  EXPECT_DOUBLE_EQ(Eval("i / 4.0")->AsDouble(), 2.5);
}

TEST(ExprTest, DivisionByZero) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 % 0").ok());
}

TEST(ExprTest, StringConcatViaPlus) {
  EXPECT_EQ(Eval("s + '!'")->AsString(), "Hello!");
}

TEST(ExprTest, UnaryMinusAndPrecedence) {
  EXPECT_EQ(Eval("-i")->AsInt(), -10);
  EXPECT_EQ(Eval("2 + 3 * 4")->AsInt(), 14);
  EXPECT_EQ(Eval("(2 + 3) * 4")->AsInt(), 20);
  EXPECT_EQ(Eval("-2 * 3")->AsInt(), -6);
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(Eval("i = 10")->AsBool());
  EXPECT_TRUE(Eval("i <> 11")->AsBool());
  EXPECT_TRUE(Eval("i != 11")->AsBool());
  EXPECT_TRUE(Eval("i < 11")->AsBool());
  EXPECT_TRUE(Eval("i <= 10")->AsBool());
  EXPECT_TRUE(Eval("i > 9")->AsBool());
  EXPECT_TRUE(Eval("i >= 10")->AsBool());
  EXPECT_FALSE(Eval("i = 11")->AsBool());
}

TEST(ExprTest, CrossTypeNumericComparison) {
  EXPECT_TRUE(Eval("i = 10.0")->AsBool());
  EXPECT_TRUE(Eval("d < 3")->AsBool());
}

TEST(ExprTest, BooleanLogic) {
  EXPECT_TRUE(Eval("TRUE AND b")->AsBool());
  EXPECT_FALSE(Eval("FALSE AND b")->AsBool());
  EXPECT_TRUE(Eval("FALSE OR b")->AsBool());
  EXPECT_FALSE(Eval("NOT b")->AsBool());
  // Precedence: AND binds tighter than OR.
  EXPECT_TRUE(Eval("TRUE OR FALSE AND FALSE")->AsBool());
}

TEST(ExprTest, ThreeValuedLogic) {
  EXPECT_TRUE(Eval("NULL AND TRUE")->is_null());
  EXPECT_FALSE(Eval("NULL AND FALSE")->AsBool());  // FALSE dominates
  EXPECT_TRUE(Eval("NULL OR TRUE")->AsBool());     // TRUE dominates
  EXPECT_TRUE(Eval("NULL OR FALSE")->is_null());
  EXPECT_TRUE(Eval("NOT NULL")->is_null());
  EXPECT_TRUE(Eval("NULL = NULL")->is_null());  // SQL semantics
  EXPECT_TRUE(Eval("i + NULL")->is_null());
  EXPECT_TRUE(Eval("NULL < 1")->is_null());
}

TEST(ExprTest, IsNull) {
  EXPECT_FALSE(Eval("i IS NULL")->AsBool());
  EXPECT_TRUE(Eval("i IS NOT NULL")->AsBool());
  EXPECT_TRUE(Eval("NULL IS NULL")->AsBool());
}

TEST(ExprTest, InList) {
  EXPECT_TRUE(Eval("i IN (5, 10, 15)")->AsBool());
  EXPECT_FALSE(Eval("i IN (5, 15)")->AsBool());
  EXPECT_TRUE(Eval("i NOT IN (5, 15)")->AsBool());
  EXPECT_TRUE(Eval("s IN ('Hello', 'World')")->AsBool());
  EXPECT_TRUE(Eval("NULL IN (1, 2)")->is_null());
}

TEST(ExprTest, Like) {
  EXPECT_TRUE(Eval("s LIKE 'He%'")->AsBool());
  EXPECT_TRUE(Eval("s LIKE '%LLO'")->AsBool());  // case-insensitive dialect
  EXPECT_FALSE(Eval("s LIKE 'x%'")->AsBool());
  EXPECT_TRUE(Eval("s NOT LIKE 'x%'")->AsBool());
}

TEST(ExprTest, ScalarFunctions) {
  EXPECT_EQ(Eval("LOWER(s)")->AsString(), "hello");
  EXPECT_EQ(Eval("UPPER(s)")->AsString(), "HELLO");
  EXPECT_EQ(Eval("LENGTH(s)")->AsInt(), 5);
  EXPECT_EQ(Eval("ABS(-4)")->AsInt(), 4);
  EXPECT_DOUBLE_EQ(Eval("ABS(-4.5)")->AsDouble(), 4.5);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.567, 1)")->AsDouble(), 2.6);
  EXPECT_TRUE(Eval("CONTAINS(s, 'ell')")->AsBool());
  EXPECT_FALSE(Eval("CONTAINS(s, 'xyz')")->AsBool());
  EXPECT_EQ(Eval("SUBSTR(s, 2, 3)")->AsString(), "ell");
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 7)")->AsInt(), 7);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)")->is_null());
}

TEST(ExprTest, FunctionsAreNullStrict) {
  EXPECT_TRUE(Eval("LOWER(NULL)")->is_null());
  EXPECT_TRUE(Eval("ROUND(NULL, 1)")->is_null());
}

TEST(ExprTest, UnknownFunctionFailsAtBind) {
  EXPECT_EQ(Eval("FROBNICATE(1)").status().code(), StatusCode::kNotFound);
}

TEST(ExprTest, WrongArityFailsAtBind) {
  EXPECT_FALSE(Eval("LOWER(s, s)").ok());
  EXPECT_FALSE(Eval("ROUND(1.5)").ok());
}

TEST(ExprTest, ParamsBindByName) {
  ParamMap params;
  params["x"] = Value(4);
  EXPECT_EQ(Eval("i + $x", &params)->AsInt(), 14);
}

TEST(ExprTest, MissingParamFailsAtBind) {
  ParamMap params;
  EXPECT_FALSE(Eval("$nope", &params).ok());
  EXPECT_FALSE(Eval("$nope", nullptr).ok());
}

TEST(ExprTest, ToStringIsParseable) {
  // Round-trip: render and re-parse yields the same evaluation.
  const char* exprs[] = {
      "(i + 5) * 2", "s LIKE 'He%'", "i IN (1, 10)", "NOT (b AND i > 5)",
      "LOWER(s)",    "i IS NOT NULL"};
  for (const char* text : exprs) {
    auto e1 = ParseExpression(text);
    ASSERT_TRUE(e1.ok()) << text;
    std::string rendered = (*e1)->ToString();
    auto e2 = ParseExpression(rendered);
    ASSERT_TRUE(e2.ok()) << rendered;
    Schema schema = TestSchema();
    ASSERT_TRUE((*e1)->Bind(schema, nullptr).ok());
    ASSERT_TRUE((*e2)->Bind(schema, nullptr).ok());
    EXPECT_EQ(*(*e1)->Eval(TestRow()), *(*e2)->Eval(TestRow())) << text;
  }
}

TEST(ExprTest, CloneIsIndependent) {
  auto expr = ParseExpression("i + 1");
  ASSERT_TRUE(expr.ok());
  ExprPtr clone = (*expr)->Clone();
  Schema schema = TestSchema();
  ASSERT_TRUE(clone->Bind(schema, nullptr).ok());
  EXPECT_EQ(clone->Eval(TestRow())->AsInt(), 11);
}

TEST(ExprTest, ParseErrors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
  EXPECT_FALSE(ParseExpression("'unterminated").ok());
  EXPECT_FALSE(ParseExpression("1 2").ok());
  EXPECT_FALSE(ParseExpression("$").ok());
}

}  // namespace
}  // namespace courserank::query
