#include <gtest/gtest.h>

#include "storage/value.h"

namespace courserank::storage {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, IntLiteralFromInt) {
  Value v(7);
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 7);
}

TEST(ValueTest, ListConstruction) {
  Value v(Value::List{Value(1), Value("a")});
  EXPECT_EQ(v.type(), ValueType::kList);
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsInt(), 1);
  EXPECT_EQ(v.AsList()[1].AsString(), "a");
  EXPECT_EQ(v.ToString(), "[1, a]");
}

TEST(ValueTest, ListCopiesShareStorageCheaply) {
  Value a(Value::List{Value(1), Value(2), Value(3)});
  Value b = a;  // shared immutable payload
  EXPECT_EQ(a, b);
}

TEST(ValueTest, ToDoubleCoercions) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{3}).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).ToDouble(), 2.5);
  EXPECT_DOUBLE_EQ(*Value(true).ToDouble(), 1.0);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value().ToDouble().ok());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_LT(Value(2.5), Value(int64_t{3}));
}

TEST(ValueTest, CrossTypeOrdering) {
  // NULL < BOOL < numeric < STRING < LIST.
  Value null;
  Value b(true);
  Value i(int64_t{1});
  Value s("a");
  Value l(Value::List{});
  EXPECT_LT(null, b);
  EXPECT_LT(b, i);
  EXPECT_LT(i, s);
  EXPECT_LT(s, l);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, ListOrderingLexicographic) {
  Value a(Value::List{Value(1), Value(2)});
  Value b(Value::List{Value(1), Value(3)});
  Value c(Value::List{Value(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value(Value::List{Value(1), Value(2)}));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(Value::List{Value(1)}).Hash(),
            Value(Value::List{Value(1)}).Hash());
}

TEST(ValueTest, NullComparesEqualToNull) {
  // Storage-level total ordering (not SQL semantics, which live in Expr).
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, DoubleToStringTrimsZeros) {
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2");
}

TEST(RowHashTest, CompositeKeys) {
  RowHash hash;
  Row a{Value(1), Value("x")};
  Row b{Value(1), Value("x")};
  Row c{Value(1), Value("y")};
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // overwhelmingly likely
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
  EXPECT_STREQ(ValueTypeName(ValueType::kBool), "BOOL");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "INT");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeName(ValueType::kList), "LIST");
}

}  // namespace
}  // namespace courserank::storage
