// Randomized kill-point crash-recovery fixture (labelled `verify-crash`):
// a writer applies a scripted mutation history against a WAL-attached
// database, an injected fault kills it at a random write — possibly tearing
// the record mid-frame or aborting a snapshot mid-save — and recovery must
// then reproduce exactly the committed prefix of the history: never a torn
// record, never a reordered or partially-applied state.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/csv.h"
#include "storage/fault.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace courserank::storage {
namespace {

namespace fs = std::filesystem;

struct Mutation {
  enum Kind { kInsert, kUpdate, kDelete } kind;
  int64_t key;           // PK value
  std::string payload;   // inserted/updated string column
  double score;          // inserted/updated double column
};

Schema EventsSchema() {
  return Schema({{"id", ValueType::kInt, false},
                 {"payload", ValueType::kString, true},
                 {"score", ValueType::kDouble, true}});
}

/// Scripted random history: inserts dominate, updates and deletes target
/// previously-inserted keys.
std::vector<Mutation> MakeScript(Rng& rng, size_t n) {
  std::vector<Mutation> script;
  std::vector<int64_t> live;
  int64_t next_key = 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t dice = rng.NextBounded(10);
    if (live.empty() || dice < 6) {
      int64_t key = next_key++;
      live.push_back(key);
      script.push_back({Mutation::kInsert, key,
                        "payload-" + std::to_string(key), rng.NextDouble()});
    } else if (dice < 8) {
      int64_t key = live[rng.NextBounded(live.size())];
      script.push_back({Mutation::kUpdate, key,
                        "updated-" + std::to_string(i), rng.NextDouble()});
    } else {
      size_t idx = rng.NextBounded(live.size());
      int64_t key = live[idx];
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      script.push_back({Mutation::kDelete, key, "", 0.0});
    }
  }
  return script;
}

Status ApplyMutation(Database& db, const Mutation& m) {
  Table* events = db.FindTable("events");
  switch (m.kind) {
    case Mutation::kInsert:
      return db.Insert("events",
                       {Value(m.key), Value(m.payload), Value(m.score)})
          .status();
    case Mutation::kUpdate: {
      CR_ASSIGN_OR_RETURN(RowId id,
                          events->FindByPrimaryKey({Value(m.key)}));
      return events->Update(
          id, {Value(m.key), Value(m.payload), Value(m.score)});
    }
    case Mutation::kDelete: {
      CR_ASSIGN_OR_RETURN(RowId id,
                          events->FindByPrimaryKey({Value(m.key)}));
      return events->Delete(id);
    }
  }
  return Status::Internal("unreachable");
}

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  auto t = db->CreateTable("events", EventsSchema(), {"id"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE((*t)->CreateHashIndex("by_payload", {"payload"}, false).ok());
  return db;
}

/// Canonical content dump: slot ids plus CSV of live rows, per table. Two
/// databases with equal dumps have identical slot layout and row contents.
std::string Dump(Database& db) {
  std::string out;
  for (const std::string& name : db.TableNames()) {
    Table* t = *db.GetTable(name);
    out += "== " + name + "\n";
    std::vector<Row> rows;
    t->Scan([&](RowId id, const Row& row) {
      out += std::to_string(id) + " ";
      rows.push_back(row);
    });
    out += "\n" + ToCsv(t->schema(), rows);
  }
  return out;
}

/// The expected database after the first `committed` mutations, built
/// in-memory with no WAL or faults involved.
std::unique_ptr<Database> ExpectedPrefix(const std::vector<Mutation>& script,
                                         size_t committed) {
  auto db = MakeDb();
  for (size_t i = 0; i < committed; ++i) {
    EXPECT_TRUE(ApplyMutation(*db, script[i]).ok()) << i;
  }
  return db;
}

TEST(CrashRecoveryTest, RandomKillPointsRecoverACommittedPrefix) {
  fs::path root = fs::temp_directory_path() / "courserank_crash_tests";
  fs::remove_all(root);
  fs::create_directories(root);

  constexpr int kIterations = 100;
  constexpr size_t kScriptLen = 40;
  int faults_fired = 0;
  int checkpoints_hit = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(0xC0FFEE + static_cast<uint64_t>(iter));
    fs::path dir = root / ("snap" + std::to_string(iter));
    std::string snap = dir.string();
    std::string wal_path = (root / ("wal" + std::to_string(iter))).string();
    std::vector<Mutation> script = MakeScript(rng, kScriptLen);

    // Some iterations checkpoint mid-history so recovery exercises
    // snapshot LSN + WAL-tail replay, not just full-log replay.
    size_t checkpoint_at =
        rng.NextBool(0.5) ? 5 + rng.NextBounded(kScriptLen - 5) : kScriptLen;

    // --- Phase A: the writer, killed at a random instrumented write. ---
    size_t committed = 0;
    {
      auto db = MakeDb();
      ASSERT_TRUE(SaveDatabase(*db, snap).ok());  // schema baseline
      auto wal = WalWriter::Open(wal_path);
      ASSERT_TRUE(wal.ok());
      db->AttachWal(wal->get());

      // Arm after the baseline save so the kill lands between the first
      // mutation and a write somewhat past the end (i.e. sometimes the
      // writer survives the whole script).
      FaultInjector::Kind kind = rng.NextBool(0.5)
                                     ? FaultInjector::Kind::kFail
                                     : FaultInjector::Kind::kTruncate;
      uint64_t nth = 1 + rng.NextBounded(kScriptLen + 10);
      FaultInjector::Default().Arm(kind, nth, rng.NextBounded(16));

      bool crashed = false;
      for (size_t i = 0; i < script.size() && !crashed; ++i) {
        if (i == checkpoint_at) {
          if (!CheckpointDatabase(*db, snap).ok()) {
            crashed = true;  // killed mid-save; on-disk snapshot intact
            break;
          }
          ++checkpoints_hit;
        }
        if (ApplyMutation(*db, script[i]).ok()) {
          ++committed;
        } else {
          crashed = true;  // killed mid-append; nothing applied
        }
      }
      if (crashed) ++faults_fired;
      FaultInjector::Default().Disarm();  // "the process is gone"
    }

    // --- Phase B: recovery must see exactly the committed prefix. ---
    auto recovered = RecoverDatabase(snap, wal_path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    auto expected = ExpectedPrefix(script, committed);
    EXPECT_EQ(Dump(*recovered->db), Dump(*expected));
    EXPECT_TRUE(recovered->db->CheckIntegrity().ok());

    // And the recovered database must accept new writes through a reopened
    // WAL without clashing with replayed state.
    WalOptions reopen_options;
    reopen_options.min_next_lsn = recovered->wal_min_next_lsn();
    auto wal2 = WalWriter::Open(wal_path, reopen_options);
    ASSERT_TRUE(wal2.ok());
    recovered->db->AttachWal(wal2->get());
    EXPECT_TRUE(recovered->db
                    ->Insert("events", {Value(int64_t{1000000}),
                                        Value("post-recovery"), Value(1.0)})
                    .ok());

    // --- Phase C: a second crash right here must not lose that insert —
    // its LSN has to land above the snapshot's wal_lsn even when the kill
    // tore the checkpoint's log truncation. ---
    auto recovered2 = RecoverDatabase(snap, wal_path);
    ASSERT_TRUE(recovered2.ok()) << recovered2.status().ToString();
    ASSERT_TRUE(expected->Insert("events", {Value(int64_t{1000000}),
                                            Value("post-recovery"),
                                            Value(1.0)})
                    .ok());
    EXPECT_EQ(Dump(*recovered2->db), Dump(*expected));
  }

  // The kill-point distribution must actually exercise both phases.
  EXPECT_GT(faults_fired, kIterations / 2);
  EXPECT_GT(checkpoints_hit, 0);
}

TEST(CrashRecoveryTest, MutationsAfterCheckpointRestartSurviveNextRecovery) {
  // Regression for LSN continuity across a checkpoint + process restart:
  // the truncated log must not restart numbering at 1, or every write of
  // the second session replays as "already in the snapshot" and is lost.
  fs::path root = fs::temp_directory_path() / "courserank_crash_restart";
  fs::remove_all(root);
  fs::create_directories(root);
  std::string snap = (root / "snap").string();
  std::string wal_path = (root / "wal").string();

  Rng rng(11);
  std::vector<Mutation> script = MakeScript(rng, 24);
  const size_t half = script.size() / 2;

  // Session 1: first half of the history, then checkpoint and exit.
  {
    auto db = MakeDb();
    ASSERT_TRUE(SaveDatabase(*db, snap).ok());
    auto wal = WalWriter::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    db->AttachWal(wal->get());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ApplyMutation(*db, script[i]).ok()) << i;
    }
    ASSERT_TRUE(CheckpointDatabase(*db, snap).ok());
  }

  // Session 2: restart, recover, apply the second half.
  {
    auto rec = RecoverDatabase(snap, wal_path);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->replay.applied, 0u);  // everything was checkpointed
    WalOptions options;
    options.min_next_lsn = rec->wal_min_next_lsn();
    auto wal = WalWriter::Open(wal_path, options);
    ASSERT_TRUE(wal.ok());
    EXPECT_GT((*wal)->next_lsn(), rec->snapshot_lsn);
    rec->db->AttachWal(wal->get());
    for (size_t i = half; i < script.size(); ++i) {
      ASSERT_TRUE(ApplyMutation(*rec->db, script[i]).ok()) << i;
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }

  // Session 3: crash-recover again — the second session's fsynced writes
  // must all be there.
  auto rec = RecoverDatabase(snap, wal_path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto expected = ExpectedPrefix(script, script.size());
  EXPECT_EQ(Dump(*rec->db), Dump(*expected));
  EXPECT_TRUE(rec->db->CheckIntegrity().ok());
}

TEST(CrashRecoveryTest, LostWalAfterCheckpointStillResumesLsnsAboveSnapshot) {
  // Harsher variant: the checkpoint-truncated log vanishes entirely (e.g.
  // an unsynced directory on a strictly-POSIX filesystem), taking its
  // LSN-floor record with it. RecoveredDatabase::wal_min_next_lsn() is then
  // the only thing keeping new LSNs above the snapshot's wal_lsn.
  fs::path root = fs::temp_directory_path() / "courserank_crash_lostwal";
  fs::remove_all(root);
  fs::create_directories(root);
  std::string snap = (root / "snap").string();
  std::string wal_path = (root / "wal").string();

  Rng rng(13);
  std::vector<Mutation> script = MakeScript(rng, 16);
  const size_t half = script.size() / 2;
  {
    auto db = MakeDb();
    ASSERT_TRUE(SaveDatabase(*db, snap).ok());
    auto wal = WalWriter::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    db->AttachWal(wal->get());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ApplyMutation(*db, script[i]).ok()) << i;
    }
    ASSERT_TRUE(CheckpointDatabase(*db, snap).ok());
  }
  fs::remove(wal_path);  // the log is gone; the snapshot still has wal_lsn

  {
    auto rec = RecoverDatabase(snap, wal_path);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ASSERT_GT(rec->snapshot_lsn, 0u);
    WalOptions options;
    options.min_next_lsn = rec->wal_min_next_lsn();
    auto wal = WalWriter::Open(wal_path, options);
    ASSERT_TRUE(wal.ok());
    rec->db->AttachWal(wal->get());
    for (size_t i = half; i < script.size(); ++i) {
      ASSERT_TRUE(ApplyMutation(*rec->db, script[i]).ok()) << i;
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }

  auto rec = RecoverDatabase(snap, wal_path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->replay.applied, script.size() - half);
  auto expected = ExpectedPrefix(script, script.size());
  EXPECT_EQ(Dump(*rec->db), Dump(*expected));
}

TEST(CrashRecoveryTest, RecoveryAfterCleanShutdownIsExact) {
  fs::path root = fs::temp_directory_path() / "courserank_crash_clean";
  fs::remove_all(root);
  fs::create_directories(root);
  std::string snap = (root / "snap").string();
  std::string wal_path = (root / "wal").string();

  Rng rng(7);
  std::vector<Mutation> script = MakeScript(rng, 30);
  {
    auto db = MakeDb();
    ASSERT_TRUE(SaveDatabase(*db, snap).ok());
    auto wal = WalWriter::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    db->AttachWal(wal->get());
    for (const Mutation& m : script) {
      ASSERT_TRUE(ApplyMutation(*db, m).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto recovered = RecoverDatabase(snap, wal_path);
  ASSERT_TRUE(recovered.ok());
  auto expected = ExpectedPrefix(script, script.size());
  EXPECT_EQ(Dump(*recovered->db), Dump(*expected));
  EXPECT_FALSE(recovered->replay.torn_tail);
}

}  // namespace
}  // namespace courserank::storage
