// Columnar storage layer tests (DESIGN.md §12): the string dictionary,
// per-chunk column encodings, the ChunkedTable mirror lifecycle on Table,
// dictionary growth across chunk seals / snapshot restore / WAL replay,
// and the comparison semantics of dictionary-encoded columns (ids are
// insertion-ordered, NOT lexicographic — only equality may compare ids).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "query/sql_engine.h"
#include "storage/chunked_table.h"
#include "storage/column.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace courserank {
namespace {

using query::ExecOptions;
using query::PlannerOptions;
using query::Relation;
using query::SqlEngine;
using storage::ChunkedTable;
using storage::ColumnEncoding;
using storage::ColumnVector;
using storage::Database;
using storage::Row;
using storage::RowId;
using storage::Schema;
using storage::StringDictionary;
using storage::Value;
using storage::ValueType;

namespace fs = std::filesystem;

int Sign(int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

// ------------------------------------------------------------- dictionary

TEST(StringDictionaryTest, IdsFollowInsertionOrderNotLexicographic) {
  StringDictionary dict;
  EXPECT_EQ(dict.Intern("zebra"), 0u);
  EXPECT_EQ(dict.Intern("apple"), 1u);
  EXPECT_EQ(dict.Intern("mango"), 2u);
  // Re-interning is idempotent.
  EXPECT_EQ(dict.Intern("zebra"), 0u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.At(0), "zebra");
  EXPECT_EQ(dict.At(1), "apple");
  EXPECT_EQ(dict.At(2), "mango");
  // "zebra" > "apple" lexicographically but its id is smaller: encoded ids
  // must never be compared with < / >.
  EXPECT_LT(dict.Intern("zebra"), dict.Intern("apple"));
}

TEST(StringDictionaryTest, FindProbesWithoutInterning) {
  StringDictionary dict;
  dict.Intern("present");
  EXPECT_EQ(dict.Find("present"), std::optional<StringDictionary::Id>(0));
  EXPECT_EQ(dict.Find("absent"), std::nullopt);
  EXPECT_EQ(dict.size(), 1u);  // Find must not intern
}

TEST(StringDictionaryTest, EmptyStringIsAnOrdinaryEntry) {
  StringDictionary dict;
  StringDictionary::Id id = dict.Intern("");
  EXPECT_EQ(dict.At(id), "");
  EXPECT_EQ(dict.Find(""), std::optional<StringDictionary::Id>(id));
}

// ------------------------------------------------------ column encodings

TEST(ColumnVectorTest, IntColumnRoundTrips) {
  std::vector<Row> rows = {{Value(int64_t{7})},
                           {Value()},
                           {Value(int64_t{-3})}};
  StringDictionary dict;
  ColumnVector col = ColumnVector::Encode(rows, 0, rows.size(), 0, &dict);
  EXPECT_EQ(col.encoding(), ColumnEncoding::kInt64);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  for (size_t i = 0; i < rows.size(); ++i) {
    Value v = col.Get(i, dict);
    EXPECT_EQ(v.type(), rows[i][0].type()) << i;
    EXPECT_TRUE(v == rows[i][0] || (v.is_null() && rows[i][0].is_null()))
        << i;
  }
}

TEST(ColumnVectorTest, IntDoubleMixKeepsTypeTags) {
  std::vector<Row> rows = {{Value(int64_t{4})},
                           {Value(2.5)},
                           {Value()},
                           {Value(int64_t{-9})}};
  StringDictionary dict;
  ColumnVector col = ColumnVector::Encode(rows, 0, rows.size(), 0, &dict);
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDouble);
  // Byte-identity hinges on the original INT-vs-DOUBLE tag surviving.
  EXPECT_EQ(col.Get(0, dict).type(), ValueType::kInt);
  EXPECT_EQ(col.Get(0, dict).AsInt(), 4);
  EXPECT_EQ(col.Get(1, dict).type(), ValueType::kDouble);
  EXPECT_TRUE(col.Get(2, dict).is_null());
  EXPECT_EQ(col.Get(3, dict).AsInt(), -9);
}

TEST(ColumnVectorTest, NonRoundTrippingIntFallsBackToValues) {
  // INT64_MAX does not survive a double round trip; mixed with a DOUBLE the
  // chunk cannot use the kDouble encoding without corrupting it.
  std::vector<Row> rows = {{Value(int64_t{9223372036854775807LL})},
                           {Value(0.5)}};
  StringDictionary dict;
  ColumnVector col = ColumnVector::Encode(rows, 0, rows.size(), 0, &dict);
  EXPECT_EQ(col.encoding(), ColumnEncoding::kValue);
  EXPECT_EQ(col.Get(0, dict).AsInt(), 9223372036854775807LL);
  EXPECT_FALSE(storage::Int64RoundTripsDouble(9223372036854775807LL));
  EXPECT_TRUE(storage::Int64RoundTripsDouble(1LL << 53));
  EXPECT_FALSE(storage::Int64RoundTripsDouble((1LL << 53) + 1));
}

TEST(ColumnVectorTest, StringColumnDictEncodesNullVsEmptyDistinct) {
  std::vector<Row> rows = {
      {Value("alpha")}, {Value(std::string())}, {Value()}, {Value("alpha")}};
  StringDictionary dict;
  ColumnVector col = ColumnVector::Encode(rows, 0, rows.size(), 0, &dict);
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDict);
  // NULL lives in the null mask; the empty string is a dictionary entry.
  Value empty = col.Get(1, dict);
  EXPECT_EQ(empty.type(), ValueType::kString);
  EXPECT_EQ(empty.AsString(), "");
  EXPECT_TRUE(col.Get(2, dict).is_null());
  // Duplicate strings share an id.
  EXPECT_EQ(col.ids()[0], col.ids()[3]);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ColumnVectorTest, CompareCellMatchesValueCompare) {
  std::vector<Row> rows = {{Value(int64_t{5})}, {Value(2.5)},
                           {Value("mango")},    {Value(true)},
                           {Value(int64_t{-1})}};
  std::vector<Value> literals = {Value(int64_t{3}), Value(2.5),
                                 Value("zebra"),    Value("apple"),
                                 Value(false),      Value(int64_t{5})};
  StringDictionary dict;
  for (size_t r = 0; r < rows.size(); ++r) {
    // One-row chunks give each value its natural encoding.
    ColumnVector col = ColumnVector::Encode(rows, r, r + 1, 0, &dict);
    for (const Value& lit : literals) {
      EXPECT_EQ(Sign(col.CompareCell(0, lit, dict)),
                Sign(rows[r][0].Compare(lit)))
          << "row " << r << " vs " << lit.ToString();
    }
  }
}

// ---------------------------------------------------------- chunked table

TEST(ChunkedTableTest, SealsAtChunkRowsInSlotOrder) {
  const size_t kRows = ChunkedTable::kChunkRows + 10;
  ChunkedTable ct(2);
  for (size_t i = 0; i < kRows; ++i) {
    ct.Append({Value(static_cast<int64_t>(i)),
               Value("s" + std::to_string(i % 97))},
              /*id=*/i * 2);
  }
  ASSERT_EQ(ct.chunks().size(), 1u);
  EXPECT_EQ(ct.chunks()[0].size(), ChunkedTable::kChunkRows);
  EXPECT_EQ(ct.pending().size(), 10u);
  EXPECT_EQ(ct.size(), kRows);
  // Chunk then pending covers the rows in append (slot) order.
  EXPECT_EQ(ct.chunks()[0].row_ids.front(), 0u);
  EXPECT_EQ(ct.chunks()[0].row_ids.back(),
            (ChunkedTable::kChunkRows - 1) * 2);
  EXPECT_EQ(ct.pending_ids().front(), ChunkedTable::kChunkRows * 2);
  const ColumnVector& ints = ct.chunks()[0].columns[0];
  EXPECT_EQ(ints.encoding(), ColumnEncoding::kInt64);
  EXPECT_EQ(ints.Get(17, ct.dict()).AsInt(), 17);
  const ColumnVector& strs = ct.chunks()[0].columns[1];
  EXPECT_EQ(strs.encoding(), ColumnEncoding::kDict);
  EXPECT_EQ(strs.Get(17, ct.dict()).AsString(), "s17");
  // 97 distinct strings, interned once each across 4k+ rows.
  EXPECT_EQ(ct.dict().size(), 97u);
}

// ----------------------------------------------- table mirror lifecycle

/// Decodes the mirror (chunks then pending) and checks it equals the
/// table's Scan output, row for row, cell for cell.
void ExpectMirrorMatchesScan(const storage::Table& table) {
  const ChunkedTable* ct = table.columnar();
  ASSERT_NE(ct, nullptr);
  std::vector<Row> scanned;
  std::vector<RowId> scanned_ids;
  table.Scan([&](RowId id, const Row& row) {
    scanned.push_back(row);
    scanned_ids.push_back(id);
  });
  ASSERT_EQ(ct->size(), scanned.size());
  size_t r = 0;
  for (const auto& chunk : ct->chunks()) {
    for (size_t i = 0; i < chunk.size(); ++i, ++r) {
      ASSERT_EQ(chunk.row_ids[i], scanned_ids[r]) << "row " << r;
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        Value v = chunk.columns[c].Get(i, ct->dict());
        const Value& expect = scanned[r][c];
        EXPECT_EQ(v.type(), expect.type()) << "row " << r << " col " << c;
        EXPECT_TRUE(v == expect || (v.is_null() && expect.is_null()))
            << "row " << r << " col " << c;
      }
    }
  }
  for (size_t i = 0; i < ct->pending().size(); ++i, ++r) {
    ASSERT_EQ(ct->pending_ids()[i], scanned_ids[r]) << "row " << r;
    for (size_t c = 0; c < ct->pending()[i].size(); ++c) {
      EXPECT_TRUE(ct->pending()[i][c] == scanned[r][c] ||
                  (ct->pending()[i][c].is_null() && scanned[r][c].is_null()))
          << "row " << r << " col " << c;
    }
  }
}

TEST(TableMirrorTest, BuildsLazilyAppendsThroughAndInvalidates) {
  Database db;
  auto table = db.CreateTable(
      "t",
      Schema({{"id", ValueType::kInt, false}, {"s", ValueType::kString, true}}),
      {"id"});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*table)->Insert({Value(i), Value("v" + std::to_string(i % 7))}).ok());
  }
  ExpectMirrorMatchesScan(**table);

  // Insert after the mirror exists: append-through, no rebuild needed.
  ASSERT_TRUE((*table)->Insert({Value(int64_t{100}), Value("fresh")}).ok());
  ExpectMirrorMatchesScan(**table);

  // Update invalidates; the rebuilt mirror sees the new value.
  ASSERT_TRUE(
      (*table)->Update(0, {Value(int64_t{0}), Value("updated")}).ok());
  ExpectMirrorMatchesScan(**table);

  // Delete invalidates; the rebuilt mirror drops the row.
  ASSERT_TRUE((*table)->Delete(3).ok());
  ExpectMirrorMatchesScan(**table);
  EXPECT_EQ((*table)->columnar()->size(), 100u);
}

TEST(TableMirrorTest, DictGrowsAcrossChunkSealsWithStableIds) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"s", ValueType::kString, true}}), {});
  ASSERT_TRUE(table.ok());
  // Fill past one chunk so early ids live in a sealed chunk...
  const size_t kRows = ChunkedTable::kChunkRows + 50;
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        (*table)->Insert({Value("w" + std::to_string(i % 201))}).ok());
  }
  const ChunkedTable* ct = (*table)->columnar();
  size_t dict_before = ct->dict().size();
  EXPECT_EQ(dict_before, 201u);
  // Pending-tail rows intern lazily at seal time: a new string appended
  // through sits row-major in the tail without touching the dictionary.
  ASSERT_TRUE((*table)->Insert({Value("brand-new")}).ok());
  ct = (*table)->columnar();
  EXPECT_EQ(ct->dict().size(), dict_before);
  ExpectMirrorMatchesScan(**table);
  // Fill to the next seal boundary: the dictionary grows by exactly the
  // one new string, and ids already encoded into the first sealed chunk
  // stay stable (ExpectMirrorMatchesScan decodes them).
  while ((*table)->columnar()->chunks().size() < 2) {
    ASSERT_TRUE((*table)->Insert({Value("w0")}).ok());
  }
  ct = (*table)->columnar();
  EXPECT_EQ(ct->dict().size(), dict_before + 1);
  ExpectMirrorMatchesScan(**table);
}

// ----------------------------------- persistence: snapshot + WAL replay

TEST(ColumnarPersistenceTest, MirrorRebuildsAfterSnapshotAndWalRecovery) {
  fs::path dir = fs::temp_directory_path() / "courserank_columnar_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string snap_dir = (dir / "snap").string();
  std::string wal_path = (dir / "wal.log").string();

  Database db;
  auto table = db.CreateTable(
      "t",
      Schema({{"id", ValueType::kInt, false}, {"s", ValueType::kString, true}}),
      {"id"});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        (*table)->Insert({Value(i), Value("base" + std::to_string(i % 31))})
            .ok());
  }
  ASSERT_TRUE(storage::SaveDatabase(db, snap_dir).ok());

  auto wal = storage::WalWriter::Open(wal_path, {});
  ASSERT_TRUE(wal.ok());
  db.AttachWal(wal->get());
  // Post-snapshot inserts reach the recovered database only via WAL
  // replay (Table::RestoreRow), which must keep the mirror append-through
  // path consistent.
  for (int64_t i = 500; i < 600; ++i) {
    ASSERT_TRUE(
        (*table)->Insert({Value(i), Value("tail" + std::to_string(i % 13))})
            .ok());
  }
  ExpectMirrorMatchesScan(**table);

  auto recovered = storage::RecoverDatabase(snap_dir, wal_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->replay.applied, 100u);
  const storage::Table* rt = recovered->db->FindTable("t");
  ASSERT_NE(rt, nullptr);
  // The mirror is derived state: the recovered table rebuilds it from
  // scratch (fresh dictionary, re-interned in slot order) and it must
  // decode to exactly the recovered rows — which equal the original's.
  ExpectMirrorMatchesScan(*rt);
  std::vector<Row> original;
  (*table)->Scan([&](RowId, const Row& row) { original.push_back(row); });
  std::vector<Row> restored;
  rt->Scan([&](RowId, const Row& row) { restored.push_back(row); });
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t c = 0; c < original[i].size(); ++c) {
      EXPECT_TRUE(original[i][c] == restored[i][c]) << i << "," << c;
    }
  }
  // Dictionary growth continues cleanly after recovery.
  auto* mutable_rt = recovered->db->FindTable("t");
  ASSERT_TRUE(
      mutable_rt->Insert({Value(int64_t{600}), Value("post-recovery")}).ok());
  ExpectMirrorMatchesScan(*mutable_rt);

  db.AttachWal(nullptr);
  fs::remove_all(dir);
}

// -------------------------- encoded-id comparison semantics (SQL level)

/// Dictionary ids follow insertion order, so a table loaded in reverse
/// lexicographic order is the adversarial case: id order and string order
/// disagree on every pair. Ordered predicates must decode; only equality
/// may compare ids. The row oracle (columnar=false) is the ground truth.
TEST(EncodedIdComparisonTest, OrderedPredicatesMatchRowOracle) {
  Database db;
  auto table = db.CreateTable(
      "t",
      Schema({{"id", ValueType::kInt, false}, {"s", ValueType::kString, true}}),
      {"id"});
  ASSERT_TRUE(table.ok());
  // > kChunkRows rows so the sealed-chunk kernels run, strings interned in
  // descending order, plus NULLs and an empty string.
  const size_t kRows = ChunkedTable::kChunkRows + 64;
  for (size_t i = 0; i < kRows; ++i) {
    Value s;
    if (i % 53 == 0) {
      s = Value();  // NULL
    } else if (i % 53 == 1) {
      s = Value(std::string());  // empty string, distinct from NULL
    } else {
      char c = static_cast<char>('z' - (i % 26));
      s = Value(std::string(1, c) + std::to_string(i % 100));
    }
    ASSERT_TRUE(
        (*table)->Insert({Value(static_cast<int64_t>(i)), s}).ok());
  }

  SqlEngine oracle(&db);
  oracle.set_planner_options(PlannerOptions{true, true});
  ExecOptions row_exec;
  row_exec.parallel = false;
  row_exec.columnar = false;
  oracle.set_exec_options(row_exec);

  SqlEngine columnar(&db);
  columnar.set_planner_options(PlannerOptions{true, true});
  ExecOptions col_exec;
  col_exec.parallel = false;
  col_exec.columnar = true;
  columnar.set_exec_options(col_exec);

  const std::string queries[] = {
      "SELECT id FROM t WHERE s = 'm42'",
      "SELECT id FROM t WHERE s = 'no-such-string'",  // absent from dict
      "SELECT id FROM t WHERE s = ''",                // empty, not NULL
      "SELECT id FROM t WHERE s <> 'q7'",
      "SELECT id FROM t WHERE s < 'm'",    // ordered: must decode, not
      "SELECT id FROM t WHERE s >= 'w'",   // compare insertion-order ids
      "SELECT id FROM t WHERE s > '' AND s <= 'd99'",
      "SELECT id FROM t WHERE s IS NULL",
      "SELECT id FROM t WHERE s IS NOT NULL AND s < 'b'",
      "SELECT id, s FROM t WHERE s IN ('m42', 'z1', 'absent') ORDER BY id",
  };
  for (const std::string& sql : queries) {
    auto a = oracle.Execute(sql);
    auto b = columnar.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql << " -> " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << " -> " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t r = 0; r < a->rows.size(); ++r) {
      for (size_t c = 0; c < a->rows[r].size(); ++c) {
        EXPECT_TRUE(a->rows[r][c] == b->rows[r][c] ||
                    (a->rows[r][c].is_null() && b->rows[r][c].is_null()))
            << sql << " row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace courserank
