#include <gtest/gtest.h>

#include "query/sql_engine.h"
#include "storage/database.h"

namespace courserank::query {
namespace {

using storage::Database;
using storage::Value;
using storage::ValueType;

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : sql_(&db_) {}

  void SetUp() override {
    Must("CREATE TABLE courses (id INT NOT NULL, dept TEXT NOT NULL, "
         "title TEXT NOT NULL, units INT, PRIMARY KEY (id))");
    Must("CREATE TABLE ratings (student INT NOT NULL, course INT NOT NULL, "
         "score DOUBLE NOT NULL, PRIMARY KEY (student, course))");
    Must("INSERT INTO courses VALUES "
         "(1, 'CS', 'Intro to Programming', 5), "
         "(2, 'CS', 'Operating Systems', 4), "
         "(3, 'MATH', 'Calculus', 5), "
         "(4, 'HISTORY', 'American History', 3), "
         "(5, 'CS', 'Databases', 3)");
    Must("INSERT INTO ratings VALUES (100, 1, 5.0), (100, 2, 3.0), "
         "(101, 1, 4.0), (101, 3, 2.0), (102, 5, 4.5)");
  }

  Relation Must(const std::string& stmt, const ParamMap& params = {}) {
    auto rel = sql_.Execute(stmt, params);
    EXPECT_TRUE(rel.ok()) << stmt << " -> " << rel.status().ToString();
    return rel.ok() ? std::move(*rel) : Relation{};
  }

  Status Fails(const std::string& stmt) {
    auto rel = sql_.Execute(stmt);
    EXPECT_FALSE(rel.ok()) << stmt << " unexpectedly succeeded";
    return rel.ok() ? Status::OK() : rel.status();
  }

  Database db_;
  SqlEngine sql_;
};

TEST_F(SqlTest, SelectStar) {
  Relation rel = Must("SELECT * FROM courses");
  EXPECT_EQ(rel.rows.size(), 5u);
  EXPECT_EQ(rel.schema.num_columns(), 4u);
}

TEST_F(SqlTest, SelectColumnsAndAliases) {
  Relation rel = Must("SELECT title AS t, units * 2 AS double_units "
                      "FROM courses WHERE id = 1");
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.schema.column(0).name, "t");
  EXPECT_EQ(rel.rows[0][1].AsInt(), 10);
}

TEST_F(SqlTest, WhereFilters) {
  EXPECT_EQ(Must("SELECT * FROM courses WHERE dept = 'CS'").rows.size(), 3u);
  EXPECT_EQ(Must("SELECT * FROM courses WHERE units >= 4 AND dept = 'CS'")
                .rows.size(),
            2u);
  EXPECT_EQ(Must("SELECT * FROM courses WHERE title LIKE '%program%'")
                .rows.size(),
            1u);
  EXPECT_EQ(
      Must("SELECT * FROM courses WHERE dept IN ('MATH', 'HISTORY')")
          .rows.size(),
      2u);
}

TEST_F(SqlTest, OrderByAndLimit) {
  Relation rel =
      Must("SELECT title FROM courses ORDER BY units DESC, title ASC LIMIT 2");
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsString(), "Calculus");
  EXPECT_EQ(rel.rows[1][0].AsString(), "Intro to Programming");
}

TEST_F(SqlTest, OrderByNonSelectedColumn) {
  // "units" is not in the select list; carried as a hidden sort column.
  Relation rel = Must("SELECT title FROM courses ORDER BY units ASC LIMIT 1");
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.schema.num_columns(), 1u);  // hidden column dropped
  EXPECT_EQ(rel.rows[0][0].AsString(), "American History");
}

TEST_F(SqlTest, LimitOffset) {
  Relation rel =
      Must("SELECT id FROM courses ORDER BY id ASC LIMIT 2 OFFSET 2");
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 3);
}

TEST_F(SqlTest, Distinct) {
  EXPECT_EQ(Must("SELECT DISTINCT dept FROM courses").rows.size(), 3u);
}

TEST_F(SqlTest, InnerJoin) {
  Relation rel = Must(
      "SELECT c.title, r.score FROM ratings r JOIN courses c "
      "ON r.course = c.id WHERE r.score >= 4");
  EXPECT_EQ(rel.rows.size(), 3u);
}

TEST_F(SqlTest, LeftJoin) {
  Relation rel = Must(
      "SELECT c.id, r.score FROM courses c LEFT JOIN ratings r "
      "ON c.id = r.course");
  // Courses 1 (x2), 2, 3, 5 matched; course 4 padded -> 6 rows.
  EXPECT_EQ(rel.rows.size(), 6u);
  size_t nulls = 0;
  for (const Row& row : rel.rows) nulls += row[1].is_null();
  EXPECT_EQ(nulls, 1u);
}

TEST_F(SqlTest, AggregateGlobal) {
  Relation rel =
      Must("SELECT COUNT(*) AS n, AVG(score) AS mean FROM ratings");
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 5);
  EXPECT_DOUBLE_EQ(rel.rows[0][1].AsDouble(), 3.7);
}

TEST_F(SqlTest, GroupBy) {
  Relation rel = Must(
      "SELECT dept, COUNT(*) AS n, MAX(units) AS top FROM courses "
      "GROUP BY dept ORDER BY n DESC");
  ASSERT_EQ(rel.rows.size(), 3u);
  EXPECT_EQ(rel.rows[0][0].AsString(), "CS");
  EXPECT_EQ(rel.rows[0][1].AsInt(), 3);
  EXPECT_EQ(rel.rows[0][2].AsInt(), 5);
}

TEST_F(SqlTest, GroupByWithHaving) {
  // Dialect note: HAVING binds against the aggregate's output schema, so it
  // references select-list aliases ("n"), not re-spelled aggregate calls.
  Relation rel = Must(
      "SELECT course, COUNT(*) AS n, AVG(score) AS mean FROM ratings "
      "GROUP BY course HAVING n >= 2");
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(rel.rows[0][2].AsDouble(), 4.5);
}

TEST_F(SqlTest, GroupByJoin) {
  Relation rel = Must(
      "SELECT c.dept, AVG(r.score) AS mean FROM ratings r "
      "JOIN courses c ON r.course = c.id GROUP BY c.dept "
      "ORDER BY mean DESC");
  ASSERT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(rel.rows[0][0].AsString(), "CS");
}

TEST_F(SqlTest, SelectItemNotInGroupByRejected) {
  Fails("SELECT title, COUNT(*) AS n FROM courses GROUP BY dept");
}

TEST_F(SqlTest, Params) {
  ParamMap params;
  params["dept"] = Value("CS");
  params["min_units"] = Value(4);
  Relation rel = Must(
      "SELECT * FROM courses WHERE dept = $dept AND units >= $min_units",
      params);
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(SqlTest, InsertReturnsAffected) {
  Relation rel =
      Must("INSERT INTO courses VALUES (10, 'ART', 'Drawing', 2)");
  EXPECT_EQ(rel.rows[0][0].AsInt(), 1);
  EXPECT_EQ(Must("SELECT * FROM courses").rows.size(), 6u);
}

TEST_F(SqlTest, InsertWithColumnList) {
  Must("INSERT INTO courses (id, title, dept) VALUES (11, 'Yoga', 'ART')");
  Relation rel = Must("SELECT units FROM courses WHERE id = 11");
  EXPECT_TRUE(rel.rows[0][0].is_null());
}

TEST_F(SqlTest, InsertDuplicatePkFails) {
  Fails("INSERT INTO courses VALUES (1, 'CS', 'Dup', 1)");
}

TEST_F(SqlTest, InsertNullIntoNotNullFails) {
  Fails("INSERT INTO courses VALUES (12, NULL, 'X', 1)");
}

TEST_F(SqlTest, Update) {
  Relation rel =
      Must("UPDATE courses SET units = units + 1 WHERE dept = 'CS'");
  EXPECT_EQ(rel.rows[0][0].AsInt(), 3);
  Relation check = Must("SELECT units FROM courses WHERE id = 1");
  EXPECT_EQ(check.rows[0][0].AsInt(), 6);
}

TEST_F(SqlTest, UpdateWithoutWhereTouchesAll) {
  Relation rel = Must("UPDATE courses SET units = 1");
  EXPECT_EQ(rel.rows[0][0].AsInt(), 5);
}

TEST_F(SqlTest, Delete) {
  Relation rel = Must("DELETE FROM ratings WHERE score < 4");
  EXPECT_EQ(rel.rows[0][0].AsInt(), 2);
  EXPECT_EQ(Must("SELECT * FROM ratings").rows.size(), 3u);
}

TEST_F(SqlTest, DeleteAll) {
  Relation rel = Must("DELETE FROM ratings");
  EXPECT_EQ(rel.rows[0][0].AsInt(), 5);
  EXPECT_EQ(Must("SELECT * FROM ratings").rows.size(), 0u);
}

TEST_F(SqlTest, CreateTableRejectsDuplicate) {
  Fails("CREATE TABLE courses (x INT)");
}

TEST_F(SqlTest, CreateTableTypeNames) {
  Must("CREATE TABLE t (a INTEGER, b REAL, c VARCHAR, d BOOLEAN)");
  auto table = db_.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().column(0).type, ValueType::kInt);
  EXPECT_EQ((*table)->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ((*table)->schema().column(2).type, ValueType::kString);
  EXPECT_EQ((*table)->schema().column(3).type, ValueType::kBool);
}

TEST_F(SqlTest, ExplainShowsPushdownPlan) {
  // Single-table plans push the WHERE, the referenced columns, and fuse
  // ORDER BY + LIMIT into TopN.
  auto text = sql_.Explain(
      "SELECT title FROM courses WHERE dept = 'CS' ORDER BY title LIMIT 2");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("TableScan(courses"), std::string::npos);
  EXPECT_NE(text->find("pushed-filter="), std::string::npos);
  EXPECT_NE(text->find("pushed-cols="), std::string::npos);
  EXPECT_NE(text->find("TopN"), std::string::npos);
  EXPECT_EQ(text->find("Filter"), std::string::npos);
}

TEST_F(SqlTest, ExplainShowsPlanWithoutPushdown) {
  // The fusion tier pushes the single-side WHERE conjunct of an inner join
  // into the ratings scan, so no post-join Filter node remains.
  auto join = sql_.Explain(
      "SELECT c.title FROM courses c JOIN ratings r ON c.id = r.course "
      "WHERE r.score > 3 ORDER BY c.title LIMIT 2");
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->find("TableScan(courses"), std::string::npos);
  EXPECT_NE(join->find("pushed-filter=(r.score > 3)"), std::string::npos);
  EXPECT_EQ(join->find("Filter"), std::string::npos);
  EXPECT_NE(join->find("TopN"), std::string::npos);

  // With the fusion tier off, joins keep the classic post-join Filter.
  SqlEngine unfused(&db_);
  PlannerOptions no_fuse;
  no_fuse.fuse_pipelines = false;
  unfused.set_planner_options(no_fuse);
  auto classic = unfused.Explain(
      "SELECT c.title FROM courses c JOIN ratings r ON c.id = r.course "
      "WHERE r.score > 3 ORDER BY c.title LIMIT 2");
  ASSERT_TRUE(classic.ok());
  EXPECT_NE(classic->find("Filter"), std::string::npos);
  EXPECT_EQ(classic->find("pushed-filter"), std::string::npos);

  SqlEngine plain(&db_);
  plain.set_planner_options({/*scan_pushdown=*/false,
                             /*bounded_topk=*/false});
  auto text = plain.Explain(
      "SELECT title FROM courses WHERE dept = 'CS' ORDER BY title LIMIT 2");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("TableScan(courses)"), std::string::npos);
  EXPECT_NE(text->find("Filter"), std::string::npos);
  EXPECT_NE(text->find("Sort"), std::string::npos);
  EXPECT_NE(text->find("Limit"), std::string::npos);
}

TEST_F(SqlTest, ParseErrorsAreInvalidArgument) {
  EXPECT_EQ(Fails("SELEKT * FROM courses").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Fails("SELECT * FORM courses").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Fails("SELECT * FROM courses LIMIT banana").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Fails("SELECT * FROM courses; DROP TABLE courses").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, StarWithOtherItemsRejected) {
  Fails("SELECT *, title FROM courses");
}

TEST_F(SqlTest, SelfJoinWithAliases) {
  Relation rel = Must(
      "SELECT a.title, b.title FROM courses a JOIN courses b "
      "ON a.dept = b.dept WHERE a.id < b.id");
  // CS has 3 courses -> 3 pairs; others single -> 0.
  EXPECT_EQ(rel.rows.size(), 3u);
}

TEST_F(SqlTest, ScalarFunctionsInSelect) {
  Relation rel = Must(
      "SELECT UPPER(dept) AS d, LENGTH(title) AS len FROM courses "
      "WHERE id = 3");
  EXPECT_EQ(rel.rows[0][0].AsString(), "MATH");
  EXPECT_EQ(rel.rows[0][1].AsInt(), 8);
}

TEST_F(SqlTest, CountDistinctViaSubqueryFreeForm) {
  // Dialect has no subqueries; document the supported alternative.
  Relation rel = Must("SELECT DISTINCT dept FROM courses");
  EXPECT_EQ(rel.rows.size(), 3u);
}

TEST_F(SqlTest, ParamsInMutations) {
  ParamMap params;
  params["id"] = Value(20);
  params["title"] = Value("Networks");
  Must("INSERT INTO courses (id, dept, title) VALUES ($id, 'CS', $title)",
       params);
  Relation check = Must("SELECT title FROM courses WHERE id = $id", params);
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0][0].AsString(), "Networks");

  params["bump"] = Value(2);
  Must("UPDATE courses SET units = $bump WHERE id = $id", params);
  EXPECT_EQ(Must("SELECT units FROM courses WHERE id = $id", params)
                .rows[0][0]
                .AsInt(),
            2);
  Relation deleted = Must("DELETE FROM courses WHERE id = $id", params);
  EXPECT_EQ(deleted.rows[0][0].AsInt(), 1);
}

TEST_F(SqlTest, WhereWithArithmeticAndFunctions) {
  EXPECT_EQ(Must("SELECT * FROM courses WHERE units * 2 >= 8").rows.size(),
            3u);
  EXPECT_EQ(
      Must("SELECT * FROM courses WHERE LOWER(dept) = 'cs'").rows.size(),
      3u);
  EXPECT_EQ(Must("SELECT * FROM ratings WHERE score - 1 > 3").rows.size(),
            2u);
}

TEST_F(SqlTest, IsNullPredicates) {
  Must("INSERT INTO courses (id, dept, title) VALUES (30, 'ART', 'Clay')");
  EXPECT_EQ(Must("SELECT * FROM courses WHERE units IS NULL").rows.size(),
            1u);
  EXPECT_EQ(
      Must("SELECT * FROM courses WHERE units IS NOT NULL").rows.size(), 5u);
}

TEST_F(SqlTest, MultiColumnOrderByMixedDirections) {
  Relation rel = Must(
      "SELECT dept, title FROM courses ORDER BY dept ASC, units DESC");
  ASSERT_EQ(rel.rows.size(), 5u);
  EXPECT_EQ(rel.rows[0][0].AsString(), "CS");
  EXPECT_EQ(rel.rows[0][1].AsString(), "Intro to Programming");  // 5 units
  EXPECT_EQ(rel.rows[2][1].AsString(), "Databases");             // 3 units
}

TEST_F(SqlTest, MinMaxOnStrings) {
  Relation rel =
      Must("SELECT MIN(title) AS lo, MAX(title) AS hi FROM courses");
  EXPECT_EQ(rel.rows[0][0].AsString(), "American History");
  EXPECT_EQ(rel.rows[0][1].AsString(), "Operating Systems");
}

TEST_F(SqlTest, UpdateThatViolatesPkRolls) {
  // Moving every course to id 1 must fail on the second row; the first
  // row's update has applied (no multi-statement transactions — documented
  // storage-layer behavior).
  Fails("UPDATE courses SET id = 1");
  EXPECT_EQ(Must("SELECT * FROM courses").rows.size(), 5u);
}

TEST_F(SqlTest, RelationToStringRendersTable) {
  Relation rel = Must("SELECT id, title FROM courses ORDER BY id LIMIT 2");
  std::string text = rel.ToString();
  EXPECT_NE(text.find("Intro to Programming"), std::string::npos);
  EXPECT_NE(text.find("(2 rows)"), std::string::npos);
}

}  // namespace
}  // namespace courserank::query
