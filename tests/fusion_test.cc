// Fusion-tier tests (DESIGN.md §16): the FusedPipelineNode must be
// byte-identical to the interpreted stage chain it replaces (selection
// vector vs materialized intermediates, runtime bailout fallback), the
// FlexRecs compiler's fusion groups and bailout notes must render in
// Explain() exactly as the analysis::ExtractFusionChains goldens predict,
// the SQL planner's join-side conjunct pushdown and Filter+Project
// collapsing must survive the CR5xx rewrite verifier, and optimizer rule 5
// (TopK-below-Extend) must fire, compose with rule 1, and preserve output.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/fusion.h"
#include "core/flexrecs_engine.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "query/expr.h"
#include "query/plan.h"
#include "query/sql_engine.h"
#include "query/sql_parser.h"
#include "social/site.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace courserank {
namespace {

using flexrecs::CompiledWorkflow;
using flexrecs::FlexRecsEngine;
using flexrecs::OptimizerStats;
using gen::GenConfig;
using gen::Generator;
using query::ExecContext;
using query::ExecOptions;
using query::Expr;
using query::ExprPtr;
using query::FusedStage;
using query::ParamMap;
using query::PlannerOptions;
using query::PlanPtr;
using query::ProjectItem;
using query::Relation;
using query::Row;
using query::SqlEngine;
using storage::Database;
using storage::Schema;
using storage::Value;
using storage::ValueType;

ExecOptions Fused() {
  ExecOptions o;
  o.parallel = false;
  return o;
}

ExecOptions Interpreted() {
  ExecOptions o = Fused();
  o.fuse = false;
  return o;
}

/// Byte-identity check (exec_parallel_test contract): same schema, same
/// rows, same order, same value types.
void ExpectSameRelation(const Relation& a, const Relation& b,
                        const std::string& what) {
  ASSERT_EQ(a.schema.num_columns(), b.schema.num_columns()) << what;
  for (size_t c = 0; c < a.schema.num_columns(); ++c) {
    EXPECT_EQ(a.schema.column(c).name, b.schema.column(c).name) << what;
    EXPECT_EQ(a.schema.column(c).type, b.schema.column(c).type) << what;
  }
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << what << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_EQ(a.rows[r][c].type(), b.rows[r][c].type())
          << what << " row " << r << " col " << c;
      EXPECT_TRUE(a.rows[r][c] == b.rows[r][c])
          << what << " row " << r << " col " << c;
    }
  }
}

ExprPtr Parse(const std::string& text) {
  auto e = query::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << text;
  return std::move(*e);
}

uint64_t Counter(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->value();
}

// ------------------------------------------- FusedPipelineNode runtime

/// A small database whose "t" table exercises NULLs, negatives, and
/// repeated keys through the fused pass.
class FusedPipelineNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = db_.CreateTable("t", Schema({{"a", ValueType::kInt, false},
                                          {"b", ValueType::kInt, true},
                                          {"c", ValueType::kString, true}}),
                             {});
    ASSERT_TRUE(t.ok());
    for (int64_t i = 0; i < 40; ++i) {
      Row row;
      row.push_back(Value(i % 7));
      row.push_back(i % 5 == 0 ? Value() : Value(i - 20));
      row.push_back(Value("s" + std::to_string(i % 3)));
      ASSERT_TRUE((*t)->Insert(std::move(row)).ok());
    }
  }

  /// Executes `make()`'s plan twice — fused and interpreted — and asserts
  /// byte-identity. Returns the fused result for further checks.
  Relation RunBoth(const std::function<PlanPtr()>& make,
                   const std::string& what) {
    ExecContext fused_ctx{&db_, {}, Fused()};
    auto fused = make()->Execute(fused_ctx);
    EXPECT_TRUE(fused.ok()) << what << ": " << fused.status().ToString();
    ExecContext interp_ctx{&db_, {}, Interpreted()};
    auto interp = make()->Execute(interp_ctx);
    EXPECT_TRUE(interp.ok()) << what << ": " << interp.status().ToString();
    ExpectSameRelation(*fused, *interp, what);
    return std::move(*fused);
  }

  Database db_;
};

TEST_F(FusedPipelineNodeTest, FilterProjectChainMatchesInterpreter) {
  uint64_t pipelines_before = Counter("cr_exec_fused_pipelines_total");
  uint64_t nodes_before = Counter("cr_exec_fused_nodes_total");
  auto make = [] {
    std::vector<FusedStage> stages(3);
    stages[0].kind = FusedStage::Kind::kFilter;
    stages[0].predicate = Parse("a >= 2");
    stages[1].kind = FusedStage::Kind::kFilter;
    stages[1].predicate = Parse("b IS NOT NULL AND c <> 's2'");
    stages[2].kind = FusedStage::Kind::kProject;
    std::vector<ProjectItem> items;
    items.push_back({query::MakeColumn("b"), "x"});
    items.push_back({query::MakeColumn("a"), "y"});
    items.push_back({query::MakeColumn("b"), "z"});  // reused source column
    stages[2].items = std::move(items);
    return query::MakeFusedPipeline(query::MakeTableScan("t"),
                                    std::move(stages));
  };
  Relation out = RunBoth(make, "filter+filter+project");
  EXPECT_FALSE(out.rows.empty());
  ASSERT_EQ(out.schema.num_columns(), 3u);
  EXPECT_EQ(out.schema.column(0).name, "x");
  // Exactly one fused pass ran (the interpreted leg must not count).
  EXPECT_EQ(Counter("cr_exec_fused_pipelines_total"), pipelines_before + 1);
  EXPECT_EQ(Counter("cr_exec_fused_nodes_total"), nodes_before + 3);
}

TEST_F(FusedPipelineNodeTest, ExtendStageMatchesInterpreter) {
  // ε source with duplicate keys, a NULL key, and an unmatched key.
  auto make_source = [] {
    Relation src;
    src.schema = Schema({{"k", ValueType::kInt, true},
                         {"v", ValueType::kInt, true}});
    for (int64_t i = 0; i < 12; ++i) {
      Row row;
      row.push_back(i == 7 ? Value() : Value(i % 4));
      row.push_back(Value(i * 10));
      src.rows.push_back(std::move(row));
    }
    return src;
  };
  auto make = [&] {
    std::vector<FusedStage> stages(2);
    stages[0].kind = FusedStage::Kind::kFilter;
    stages[0].predicate = Parse("a < 6");
    stages[1].kind = FusedStage::Kind::kExtend;
    stages[1].source = query::MakeValues(make_source());
    stages[1].child_key = query::MakeColumn("a");
    stages[1].source_key = query::MakeColumn("k");
    stages[1].collect.push_back(query::MakeColumn("v"));
    stages[1].column_name = "bag";
    return query::MakeFusedPipeline(query::MakeTableScan("t"),
                                    std::move(stages));
  };
  Relation out = RunBoth(make, "filter+extend");
  ASSERT_EQ(out.schema.num_columns(), 4u);
  EXPECT_EQ(out.schema.column(3).name, "bag");
  EXPECT_EQ(out.schema.column(3).type, ValueType::kList);
}

TEST_F(FusedPipelineNodeTest, RuntimeBailoutFallsBackToInterpreter) {
  // `b + 1 > 2` is outside the compilable shape subset (arithmetic can
  // error mid-row), so the fused pass must bail out at compile time, count
  // the bailout, and produce the interpreted chain's exact rows.
  uint64_t bailouts_before = Counter("cr_exec_fusion_bailouts_total");
  uint64_t pipelines_before = Counter("cr_exec_fused_pipelines_total");
  auto make = [] {
    std::vector<FusedStage> stages(2);
    stages[0].kind = FusedStage::Kind::kFilter;
    stages[0].predicate = Parse("b + 1 > 2");
    stages[1].kind = FusedStage::Kind::kProject;
    std::vector<ProjectItem> items;
    items.push_back({query::MakeColumn("a"), "a"});
    stages[1].items = std::move(items);
    return query::MakeFusedPipeline(query::MakeTableScan("t"),
                                    std::move(stages));
  };
  Relation out = RunBoth(make, "bailout chain");
  EXPECT_FALSE(out.rows.empty());
  EXPECT_EQ(Counter("cr_exec_fusion_bailouts_total"), bailouts_before + 1);
  EXPECT_EQ(Counter("cr_exec_fused_pipelines_total"), pipelines_before);
}

TEST_F(FusedPipelineNodeTest, EmptyInputAndAllFilteredChains) {
  for (const char* pred : {"a > 1000", "a >= 0"}) {
    auto make = [&] {
      std::vector<FusedStage> stages(2);
      stages[0].kind = FusedStage::Kind::kFilter;
      stages[0].predicate = Parse(pred);
      stages[1].kind = FusedStage::Kind::kProject;
      std::vector<ProjectItem> items;
      items.push_back({query::MakeColumn("c"), "c"});
      stages[1].items = std::move(items);
      return query::MakeFusedPipeline(query::MakeTableScan("t"),
                                      std::move(stages));
    };
    RunBoth(make, std::string("edge: ") + pred);
  }
}

// ------------------------------------------ fusion chain analysis goldens

std::string ChainsFor(const std::string& dsl) {
  auto parsed = flexrecs::ParseWorkflow(dsl);
  EXPECT_TRUE(parsed.ok()) << dsl;
  return analysis::RenderFusionChains(
      analysis::ExtractFusionChains(**parsed));
}

TEST(FusionChainAnalysisTest, EligibleSigmaExtendChain) {
  std::string out = ChainsFor(
      "courses = TABLE Courses\n"
      "dept    = SELECT courses WHERE DepID = $dep\n"
      "ratings = TABLE Ratings\n"
      "ext     = EXTEND dept WITH ratings ON CourseID = CourseID "
      "COLLECT Score AS scores\n"
      "RETURN ext\n");
  EXPECT_NE(out.find("fuses: "), std::string::npos) << out;
  EXPECT_NE(out.find("σ((DepID = $dep))"), std::string::npos) << out;
  EXPECT_NE(out.find("ε(+scores)"), std::string::npos) << out;
  EXPECT_EQ(out.find("break at"), std::string::npos) << out;
}

TEST(FusionChainAnalysisTest, NonCompilablePredicateBreaksChain) {
  std::string out = ChainsFor(
      "courses = TABLE Courses\n"
      "liked   = SELECT courses WHERE Title LIKE '%intro%'\n"
      "cheap   = SELECT liked WHERE Units < 4\n"
      "RETURN cheap\n");
  EXPECT_NE(out.find("break at"), std::string::npos) << out;
  EXPECT_NE(out.find("predicate outside the compilable subset"),
            std::string::npos)
      << out;
}

TEST(FusionChainAnalysisTest, SigmaAfterPiIsIneligible) {
  std::string out = ChainsFor(
      "courses = TABLE Courses\n"
      "p       = PROJECT courses TO Title AS t, Units AS u\n"
      "f       = SELECT p WHERE u >= 3\n"
      "RETURN f\n");
  EXPECT_NE(out.find("filter over a computed projection schema"),
            std::string::npos)
      << out;
}

// --------------------------------------- compiled fusion groups (engine)

class CompiledFusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = Generator(GenConfig::Tiny(31)).Generate();
    ASSERT_TRUE(site.ok()) << site.status().ToString();
    site_ = std::move(*site);
  }

  /// Compiles, executes fused and interpreted, asserts byte-identity, and
  /// returns the compiled workflow for Explain/group inspection.
  CompiledWorkflow CompileAndCheck(const std::string& dsl,
                                   const ParamMap& params) {
    FlexRecsEngine& engine = site_->flexrecs();
    auto parsed = flexrecs::ParseWorkflow(dsl);
    EXPECT_TRUE(parsed.ok()) << dsl;
    auto compiled = engine.Compile(**parsed);
    EXPECT_TRUE(compiled.ok()) << dsl << "\n" << compiled.status().ToString();

    engine.set_exec_options(Fused());
    auto fused = engine.Execute(*compiled, params);
    EXPECT_TRUE(fused.ok()) << dsl << "\n" << fused.status().ToString();
    engine.set_exec_options(Interpreted());
    auto interp = engine.Execute(*compiled, params);
    EXPECT_TRUE(interp.ok()) << dsl << "\n" << interp.status().ToString();
    engine.set_exec_options(Fused());
    ExpectSameRelation(*fused, *interp, dsl);
    return std::move(*compiled);
  }

  std::unique_ptr<social::CourseRankSite> site_;
};

TEST_F(CompiledFusionTest, ExtendSelectGroupFormsAndExecutesFused) {
  // ε over a single-use input chains with the σ above it; the compiled
  // workflow must report the group, render it in Explain, and execute the
  // fused node (pipeline counter moves).
  const std::string dsl =
      "students = TABLE Students\n"
      "ratings  = TABLE Ratings\n"
      "ext      = EXTEND students WITH ratings ON SuID = SuID "
      "COLLECT Score AS scores\n"
      "good     = SELECT ext WHERE GPA >= 2\n"
      "RETURN good\n";
  uint64_t before = Counter("cr_exec_fused_pipelines_total");
  auto compiled = CompileAndCheck(dsl, {});
  ASSERT_EQ(compiled.fusion_groups().size(), 1u);
  EXPECT_EQ(compiled.fusion_groups()[0].members.size(), 2u);
  std::string explain = compiled.Explain();
  EXPECT_NE(explain.find("fusion groups:"), std::string::npos) << explain;
  EXPECT_NE(explain.find("group 1: steps("), std::string::npos) << explain;
  EXPECT_NE(explain.find("ε(+scores) -> σ((GPA >= 2))"), std::string::npos)
      << explain;
  // Two executions above, but only the fused leg counts pipelines.
  EXPECT_EQ(Counter("cr_exec_fused_pipelines_total"), before + 1);
}

TEST_F(CompiledFusionTest, SharedIntermediateBailsOutWithCseNote) {
  // user_cf's shape: the extended relation feeds two selects, so neither
  // select may consume it destructively inside a fused pass.
  const std::string dsl =
      "students = TABLE Students\n"
      "ratings  = TABLE Ratings\n"
      "ext      = EXTEND students WITH ratings ON SuID = SuID "
      "COLLECT Score AS scores\n"
      "a        = SELECT ext WHERE GPA >= 2\n"
      "b        = SELECT ext WHERE GPA < 2\n"
      "rest     = EXCEPT a ON SuID = SuID FROM b\n"
      "RETURN rest\n";
  auto compiled = CompileAndCheck(dsl, {});
  EXPECT_TRUE(compiled.fusion_groups().empty());
  std::string explain = compiled.Explain();
  EXPECT_NE(explain.find("not fused: shared intermediate (CSE)"),
            std::string::npos)
      << explain;
}

TEST_F(CompiledFusionTest, SigmaAfterPiBailsOutWithOrderNote) {
  const std::string dsl =
      "students = TABLE Students\n"
      "ratings  = TABLE Ratings\n"
      "ext      = EXTEND students WITH ratings ON SuID = SuID "
      "COLLECT Score AS scores\n"
      "p        = PROJECT ext TO Name AS n, GPA AS g\n"
      "f        = SELECT p WHERE g >= 2\n"
      "RETURN f\n";
  auto compiled = CompileAndCheck(dsl, {});
  // ε -> π still fuses; the σ above the π is refused with the order note.
  ASSERT_EQ(compiled.fusion_groups().size(), 1u);
  std::string explain = compiled.Explain();
  EXPECT_NE(explain.find("ε(+scores) -> π(n, g)"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("not fused: filter over a computed projection "
                         "schema"),
            std::string::npos)
      << explain;
}

TEST_F(CompiledFusionTest, StrategiesMatchInterpretedOracle) {
  // Every registered strategy, fused vs interpreted, same bytes. The *_cf
  // strategies mostly bail out (documented CSE shapes) — the contract is
  // identity either way.
  FlexRecsEngine& engine = site_->flexrecs();
  ParamMap params{{"student", Value(static_cast<int64_t>(1))},
                  {"major", Value(std::string("CS"))},
                  {"dep", Value(std::string("CS"))},
                  {"year", Value(static_cast<int64_t>(2007))},
                  {"term", Value(std::string("Fall"))},
                  {"units", Value(static_cast<int64_t>(4))},
                  {"class", Value(std::string("Senior"))}};
  int compared = 0;
  for (const std::string& name : engine.StrategyNames()) {
    engine.set_exec_options(Fused());
    auto fused = engine.RunStrategy(name, params);
    engine.set_exec_options(Interpreted());
    auto interp = engine.RunStrategy(name, params);
    engine.set_exec_options(Fused());
    ASSERT_EQ(fused.ok(), interp.ok()) << name;
    if (!fused.ok()) continue;  // strategies needing other params
    ExpectSameRelation(*fused, *interp, name);
    ++compared;
  }
  EXPECT_GE(compared, 5);
}

// ------------------------------------------------- SQL planner fusion

class SqlFusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto site = Generator(GenConfig::Tiny(37)).Generate();
    ASSERT_TRUE(site.ok()) << site.status().ToString();
    site_ = std::move(*site);
  }

  std::unique_ptr<social::CourseRankSite> site_;
};

TEST_F(SqlFusionTest, JoinConjunctsSplitIntoBothScans) {
  SqlEngine engine(&site_->db());
  auto explain = engine.Explain(
      "SELECT c.Title, r.Score FROM Courses c "
      "JOIN Ratings r ON c.CourseID = r.CourseID "
      "WHERE r.Score > 2 AND c.Units >= 3 "
      "ORDER BY r.Score DESC, c.Title LIMIT 10");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("pushed-filter=(c.Units >= 3)"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("pushed-filter=(r.Score > 2)"), std::string::npos)
      << *explain;
  EXPECT_EQ(explain->find("Filter("), std::string::npos) << *explain;

  // The cross-side conjunct cannot push and is not compilable
  // (column-vs-column), so it stays a classic residual Filter.
  auto residual = engine.Explain(
      "SELECT c.Title FROM Courses c "
      "JOIN Ratings r ON c.CourseID = r.CourseID "
      "WHERE r.Score >= 4 AND c.Units < r.Score ORDER BY c.Title LIMIT 5");
  ASSERT_TRUE(residual.ok());
  EXPECT_NE(residual->find("pushed-filter=(r.Score >= 4)"), std::string::npos)
      << *residual;
  EXPECT_NE(residual->find("Filter("), std::string::npos) << *residual;
}

TEST_F(SqlFusionTest, ResidualFilterProjectCollapsesToFusedPipeline) {
  // With scan pushdown off the WHERE stays residual; the fusion tier then
  // collapses Filter + bare-column Project into one FusedPipelineNode.
  SqlEngine engine(&site_->db());
  PlannerOptions no_push;
  no_push.scan_pushdown = false;
  no_push.bounded_topk = false;
  engine.set_planner_options(no_push);
  const std::string sql =
      "SELECT Title, Units FROM Courses WHERE Units >= 3 "
      "ORDER BY Title LIMIT 7";
  auto explain = engine.Explain(sql);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("FusedPipeline(Filter((Units >= 3)) -> "
                          "Project(Title AS Title, Units AS Units))"),
            std::string::npos)
      << *explain;

  SqlEngine unfused(&site_->db());
  PlannerOptions no_fuse = no_push;
  no_fuse.fuse_pipelines = false;
  unfused.set_planner_options(no_fuse);
  auto classic = unfused.Explain(sql);
  ASSERT_TRUE(classic.ok());
  EXPECT_EQ(classic->find("FusedPipeline"), std::string::npos) << *classic;
  EXPECT_NE(classic->find("Filter((Units >= 3))"), std::string::npos)
      << *classic;

  auto a = engine.Execute(sql);
  auto b = unfused.Execute(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameRelation(*a, *b, sql);
}

TEST_F(SqlFusionTest, RewriteVerifierAcceptsFusedPlans) {
  // CR5xx (verify_rewrites): every fused/pushed plan re-plans with all
  // rewrites off and must never weaken the baseline's static claims.
  SqlEngine engine(&site_->db());
  PlannerOptions verify;
  verify.verify_rewrites = true;
  engine.set_planner_options(verify);
  for (const char* sql : {
           "SELECT c.Title, r.Score FROM Courses c "
           "JOIN Ratings r ON c.CourseID = r.CourseID "
           "WHERE r.Score > 2 AND c.Units >= 3 ORDER BY r.Score DESC "
           "LIMIT 10",
           "SELECT Title FROM Courses WHERE Units >= 3 ORDER BY Title "
           "LIMIT 7",
           "SELECT c.Title, o.Year FROM Courses c "
           "JOIN Offerings o ON c.CourseID = o.CourseID "
           "WHERE o.Year = 2007 ORDER BY c.Title LIMIT 8",
       }) {
    auto rel = engine.Execute(sql);
    EXPECT_TRUE(rel.ok()) << sql << " -> " << rel.status().ToString();
  }
}

// ---------------------------------------- optimizer rule 5 (TopK under ε)

TEST(TopKBelowExtendTest, RuleFiresAndPreservesOutput) {
  auto site = Generator(GenConfig::Tiny(41)).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();

  const std::string dsl =
      "courses = TABLE Courses\n"
      "ratings = TABLE Ratings\n"
      "ext     = EXTEND courses WITH ratings ON CourseID = CourseID "
      "COLLECT Score AS scores\n"
      "top     = TOPK ext BY Units DESC LIMIT 5\n"
      "RETURN top\n";
  auto parsed = flexrecs::ParseWorkflow(dsl);
  ASSERT_TRUE(parsed.ok());

  OptimizerStats stats;
  flexrecs::NodePtr optimized =
      flexrecs::OptimizeWorkflow((*parsed)->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.topk_pushed_below_extend, 1);
  ASSERT_EQ(optimized->kind, flexrecs::NodeKind::kExtend);
  EXPECT_EQ(optimized->children[0]->kind, flexrecs::NodeKind::kTopK);

  // CR5xx: the rewrite must not weaken any inferred property.
  analysis::Analyzer analyzer(&(*site)->db(), &engine.library());
  analysis::DiagnosticBag diags;
  EXPECT_TRUE(analyzer.VerifyWorkflowRewrite(**parsed, *optimized, &diags))
      << diags.ToText();

  // Byte-identity: original vs optimized through the engine.
  auto plain_compiled = engine.Compile(**parsed);
  ASSERT_TRUE(plain_compiled.ok());
  auto opt_compiled = engine.Compile(*optimized);
  ASSERT_TRUE(opt_compiled.ok());
  auto plain = engine.Execute(*plain_compiled, {});
  auto opt = engine.Execute(*opt_compiled, {});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ExpectSameRelation(*plain, *opt, "rule 5");
}

TEST(TopKBelowExtendTest, ComposesWithTopKIntoRecommendFusion) {
  // Pushing TopK(sc) below the Extend lands it on the Recommend producing
  // sc, where rule 1 folds it into the operator's own top_k.
  const std::string dsl =
      "courses = TABLE Courses\n"
      "ratings = TABLE Ratings\n"
      "rec     = RECOMMEND courses AGAINST courses USING "
      "numeric_proximity(Units, Units) AGG max SCORE sc\n"
      "ext     = EXTEND rec WITH ratings ON CourseID = CourseID "
      "COLLECT Score AS scores\n"
      "top     = TOPK ext BY sc DESC LIMIT 5\n"
      "RETURN top\n";
  auto parsed = flexrecs::ParseWorkflow(dsl);
  ASSERT_TRUE(parsed.ok());
  OptimizerStats stats;
  flexrecs::NodePtr optimized =
      flexrecs::OptimizeWorkflow((*parsed)->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.topk_pushed_below_extend, 1);
  EXPECT_EQ(stats.topk_fused, 1);
  ASSERT_EQ(optimized->kind, flexrecs::NodeKind::kExtend);
  ASSERT_EQ(optimized->children[0]->kind, flexrecs::NodeKind::kRecommend);
  EXPECT_EQ(optimized->children[0]->recommend.top_k, 5u);

  auto site = Generator(GenConfig::Tiny(47)).Generate();
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  FlexRecsEngine& engine = (*site)->flexrecs();
  auto plain_compiled = engine.Compile(**parsed);
  ASSERT_TRUE(plain_compiled.ok());
  auto opt_compiled = engine.Compile(*optimized);
  ASSERT_TRUE(opt_compiled.ok());
  auto plain = engine.Execute(*plain_compiled, {});
  auto opt = engine.Execute(*opt_compiled, {});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ExpectSameRelation(*plain, *opt, "rule 5 + rule 1");
}

TEST(TopKBelowExtendTest, OrderOnCollectedColumnBlocksRule) {
  const std::string dsl =
      "courses = TABLE Courses\n"
      "ratings = TABLE Ratings\n"
      "ext     = EXTEND courses WITH ratings ON CourseID = CourseID "
      "COLLECT Score AS scores\n"
      "top     = TOPK ext BY scores DESC LIMIT 5\n"
      "RETURN top\n";
  auto parsed = flexrecs::ParseWorkflow(dsl);
  ASSERT_TRUE(parsed.ok());
  OptimizerStats stats;
  flexrecs::NodePtr optimized =
      flexrecs::OptimizeWorkflow((*parsed)->Clone(), &stats, nullptr);
  EXPECT_EQ(stats.topk_pushed_below_extend, 0);
  EXPECT_EQ(optimized->kind, flexrecs::NodeKind::kTopK);
}

}  // namespace
}  // namespace courserank
